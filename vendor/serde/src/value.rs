//! The self-describing interchange tree shared by the shim `serde`,
//! `serde_json` and `toml` crates.

/// A dynamically typed value: the meeting point of serializers and
/// deserializers. Maps preserve insertion order (deterministic output
/// matters more to the campaign engine than lookup speed; maps here are
/// tiny).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The boolean payload, if any.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, also accepting integral floats.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Self::Int(n) => Some(*n),
            Self::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// The numeric payload, coercing integers to floats.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Int(n) => Some(*n as f64),
            Self::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string payload, if any.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The sequence payload, if any.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Self::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The map payload, if any.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Self::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` in a map value (`None` for non-maps or absent keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| map_get(m, key))
    }
}

/// First-match lookup in an ordered map slice.
#[must_use]
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
