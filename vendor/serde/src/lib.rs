//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this shim uses a single
//! self-describing [`Value`] tree as the interchange format: serializers
//! produce a `Value`, deserializers consume one. The companion crates
//! `serde_json` and `toml` parse/emit text to and from `Value`, and
//! `serde_derive` generates `Value`-based impls for named-field structs and
//! unit enums (everything else falls back to the traits' default methods).
//!
//! The API deliberately keeps serde's import idiom —
//! `use serde::{Deserialize, Serialize};` pulls in both the traits and the
//! derive macros — so the fnpr crates compile unchanged against it.

#![warn(missing_docs)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::fmt;

/// A (de)serialization error: a plain message with optional context frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Wraps the error with an outer context frame.
    #[must_use]
    pub fn context(self, frame: &str) -> Self {
        Self {
            msg: format!("{frame}: {}", self.msg),
        }
    }

    /// The raw message, context frames included (used by the `toml` shim to
    /// map shape errors back to source lines).
    #[must_use]
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
///
/// The default method exists so that derive fallbacks on exotic shapes
/// still compile; it produces `Value::Null`.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value {
        Value::Null
    }
}

/// Deserialization from the [`Value`] data model.
///
/// The default method exists so that derive fallbacks on exotic shapes
/// still compile; it always errors.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(_v: &Value) -> Result<Self, Error> {
        Err(Error::new(format!(
            "deserialization is not supported for {}",
            std::any::type_name::<Self>()
        )))
    }
}

/// Deserializes one struct field; absent fields deserialize from
/// [`Value::Null`] so `Option<T>` fields default to `None`.
///
/// # Errors
///
/// Propagates the field's deserialization error, prefixed with `ctx`.
pub fn de_field<T: Deserialize>(v: Option<&Value>, ctx: &str) -> Result<T, Error> {
    match v {
        Some(v) => T::from_value(v).map_err(|e| e.context(ctx)),
        None => T::from_value(&Value::Null).map_err(|_| Error::new(format!("missing field {ctx}"))),
    }
}

/// Case-, `_`- and `-`-insensitive comparison for enum variant names, so
/// TOML specs can say `policy = "fixed_priority"` for `FixedPriority`.
#[must_use]
pub fn normalized_eq(a: &str, b: &str) -> bool {
    let norm = |s: &str| {
        s.chars()
            .filter(|c| *c != '_' && *c != '-')
            .flat_map(char::to_lowercase)
            .collect::<String>()
    };
    norm(a) == norm(b)
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::new(format!("expected an integer, got {v:?}"))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}",
                        stringify!($t))))
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::new(format!("expected a number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::new(format!("expected a bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new(format!("expected a string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        self.as_ref().map_or(Value::Null, Serialize::to_value)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::new(format!("expected a sequence, got {v:?}")))?;
        seq.iter()
            .enumerate()
            .map(|(i, item)| T::from_value(item).map_err(|e| e.context(&format!("[{i}]"))))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| {
                    Error::new(format!("expected a sequence, got {v:?}"))
                })?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::new(format!(
                        "expected a {expected}-tuple, got {} elements", seq.len())));
                }
                Ok(($($name::from_value(&seq[$idx])
                    .map_err(|e| e.context(&format!("[{}]", $idx)))?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Self::from_iter)
    }
}

// Maps serialize as sequences of `[key, value]` pairs so that non-string
// key types (e.g. `BlockId`) work without specialization; deserialization
// additionally accepts string-keyed `Value::Map`s for TOML/JSON ergonomics.
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(<(K, V)>::from_value).collect(),
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key = K::from_value(&Value::Str(k.clone()))
                        .map_err(|e| e.context(&format!("key {k:?}")))?;
                    let value = V::from_value(v).map_err(|e| e.context(k))?;
                    Ok((key, value))
                })
                .collect(),
            other => Err(Error::new(format!("expected a map, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn int_coerces_to_float() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
    }

    #[test]
    fn tuples_and_vecs_round_trip() {
        let pair = (10.0f64, 1000.0f64);
        assert_eq!(<(f64, f64)>::from_value(&pair.to_value()).unwrap(), pair);
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn option_defaults_to_none_on_null() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Float(2.0)).unwrap(),
            Some(2.0)
        );
    }

    #[test]
    fn missing_field_error_names_the_field() {
        let err = de_field::<f64>(None, "Spec.seed").unwrap_err();
        assert!(err.to_string().contains("Spec.seed"));
    }

    #[test]
    fn normalized_eq_matches_spec_spellings() {
        assert!(normalized_eq("fixed_priority", "FixedPriority"));
        assert!(normalized_eq("EDF", "Edf"));
        assert!(!normalized_eq("edf", "FixedPriority"));
    }
}
