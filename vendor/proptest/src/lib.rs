//! Offline stand-in for `proptest`.
//!
//! Implements the subset the fnpr test suites use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map` / `prop_recursive` / `boxed`, range and
//! tuple strategies, [`prop::collection::vec`], [`prop_oneof!`],
//! `prop_assert*` / `prop_assume!`, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, chosen deliberately for this workspace:
//!
//! * **Deterministic**: each test's RNG is seeded from the hash of its
//!   function name, so failures reproduce without a persistence file.
//! * **No shrinking**: a failing case panics with the generated inputs'
//!   case number; re-running reproduces it exactly.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::ops::Range;
use std::rc::Rc;

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The generation-time RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic RNG derived from the test's name.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name: stable across runs, platforms and rustc.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator. Unlike upstream there is no value tree or shrinking:
/// `generate` directly produces a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `branch` receives the strategy for the
    /// previous depth level and returns the strategy for the next one.
    /// `_desired_size` and `_expected_branch` are accepted for API
    /// compatibility and ignored (depth alone bounds the recursion).
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = branch(strat.clone()).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng.rng())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng.rng())
            }
        }
    )*};
}
impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Uniform choice between type-erased alternatives (built by
/// [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.rng().gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// The `prop::` namespace mirror.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::SampleRange;

        /// A strategy producing `Vec`s whose length is drawn from `size`
        /// and whose elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = if self.size.lo >= self.size.hi {
                    self.size.lo
                } else {
                    (self.size.lo..self.size.hi).sample_single(rng.rng())
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// A length range for collection strategies (half-open; `lo == hi` means
/// exactly `lo`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub lo: usize,
    /// Maximum length (exclusive; equal to `lo` for an exact size).
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Expands to an early `return` from the per-case closure.)
#[macro_export]
macro_rules! prop_assume {
    // `if cond {} else { return }` instead of `if !cond { return }`: the
    // condition is caller-written and `!(a > b)` would trip
    // `clippy::neg_cmp_op_on_partial_ord` at every use site.
    ($cond:expr) => {
        if $cond {
        } else {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Declares property tests. Each test body runs `config.cases` times with
/// fresh inputs generated from its strategies; panics propagate with the
/// case number attached via the RNG's determinism (same name ⇒ same
/// sequence).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    (@run ($cfg:expr)
        // `#[test]` is written by the caller and re-emitted as part of the
        // attribute repetition (matching it literally is ambiguous).
        $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let ($($pat,)+) =
                        ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                    // A zero-argument closure so `prop_assume!` can skip the
                    // case with `return` without leaving the test function.
                    let mut __body = move || $body;
                    __body();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let x = (1.0f64..60.0).generate(&mut rng);
            assert!((1.0..60.0).contains(&x));
            let n = (1u64..4).generate(&mut rng);
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = crate::TestRng::deterministic("vec");
        let exact = prop::collection::vec(0.0f64..1.0, 8).generate(&mut rng);
        assert_eq!(exact.len(), 8);
        for _ in 0..100 {
            let v = prop::collection::vec(0u64..24, 1..16).generate(&mut rng);
            assert!((1..16).contains(&v.len()));
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                prop_oneof![
                    prop::collection::vec(inner.clone(), 1..4).prop_map(Tree::Node),
                    inner,
                ]
            });
        let mut rng = crate::TestRng::deterministic("tree");
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires patterns, strategies and assume/assert together.
        #[test]
        fn macro_end_to_end((a, b) in (0.0f64..10.0, 0.0f64..10.0), k in 1usize..4) {
            prop_assume!(a + b > 0.5);
            prop_assert!((1..4).contains(&k));
            prop_assert_eq!(k, k);
            prop_assert!(a + b > 0.5, "assume should have filtered {} {}", a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("same-name");
        let mut b = crate::TestRng::deterministic("same-name");
        let s = prop::collection::vec(0.0f64..1.0, 1..9);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
