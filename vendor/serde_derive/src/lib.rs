//! Offline stand-in for `serde_derive`, written against the raw
//! [`proc_macro`] API (the container has no `syn`/`quote`).
//!
//! Two shapes get *real* (de)serialization impls against the shim `serde`
//! crate's [`Value`] data model:
//!
//! * braced structs with named fields (including unit structs), and
//! * enums whose variants are all unit variants.
//!
//! Every other shape (tuple structs, enums with payloads, generics) falls
//! back to an empty `impl` block, which picks up the trait's default
//! methods: serialization yields `Value::Null` and deserialization errors
//! out. The fnpr workspace only ever round-trips the supported shapes (the
//! campaign scenario specs); the fallback keeps the remaining ~50 seed
//! derives compiling without dragging in a full derive framework.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we managed to learn about the deriving type.
enum Shape {
    /// `struct Name { field, ... }` or `struct Name;`
    NamedStruct { name: String, fields: Vec<String> },
    /// `enum Name { A, B, C }` — all unit variants.
    UnitEnum { name: String, variants: Vec<String> },
    /// Anything else — fall back to default trait methods.
    Opaque { name: String },
}

fn parse_shape(input: TokenStream) -> Option<Shape> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`#[...]`, including doc comments) and visibility.
    let mut kind = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    i += 1;
                    break;
                }
                i += 1; // e.g. `r#` raw idents won't occur; skip unknowns
            }
            _ => i += 1,
        }
    }
    let kind = kind?;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    i += 1;
    // Generics are unsupported → opaque.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Some(Shape::Opaque { name });
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kind == "struct" => {
            Some(Shape::NamedStruct {
                name,
                fields: Vec::new(),
            })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                parse_named_fields(&body)
                    .map_or(Some(Shape::Opaque { name: name.clone() }), |fields| {
                        Some(Shape::NamedStruct { name, fields })
                    })
            } else {
                parse_unit_variants(&body)
                    .map_or(Some(Shape::Opaque { name: name.clone() }), |variants| {
                        Some(Shape::UnitEnum { name, variants })
                    })
            }
        }
        _ => Some(Shape::Opaque { name }),
    }
}

/// Extracts field names from the body of a braced struct. Returns `None`
/// when the body doesn't look like plain named fields.
fn parse_named_fields(body: &[TokenTree]) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Skip attributes on the field.
        while let Some(TokenTree::Punct(p)) = body.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        // Skip visibility.
        if let Some(TokenTree::Ident(id)) = body.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = body.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma
            _ => return None,
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return None,
        }
        fields.push(name);
        // Consume the type: everything until a comma at angle-depth 0.
        let mut angle: i32 = 0;
        let mut prev_dash = false;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle == 0 {
                        i += 1;
                        break;
                    }
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' && !prev_dash {
                        angle -= 1;
                    }
                    prev_dash = c == '-';
                }
                _ => prev_dash = false,
            }
            i += 1;
        }
    }
    Some(fields)
}

/// Extracts variant names from the body of an enum, requiring every variant
/// to be a unit variant (no payload, no discriminant surprises).
fn parse_unit_variants(body: &[TokenTree]) -> Option<Vec<String>> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        while let Some(TokenTree::Punct(p)) = body.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            _ => return None,
        };
        i += 1;
        match body.get(i) {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(name);
                i += 1;
            }
            _ => return None, // payload group or discriminant
        }
    }
    Some(variants)
}

/// `FirstFit` → `first_fit` (the spelling TOML specs conventionally use).
fn snake_case(ident: &str) -> String {
    let mut out = String::with_capacity(ident.len() + 4);
    for (i, c) in ident.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn serialize_impl(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Map(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Opaque { name } => format!("impl ::serde::Serialize for {name} {{}}"),
    }
}

fn deserialize_impl(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::de_field(::serde::value::map_get(__map, \"{f}\"), \
                         concat!(stringify!({name}), \".\", \"{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __map = __v.as_map().ok_or_else(|| ::serde::Error::new(\
                             concat!(\"expected a map for \", stringify!({name}))))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => return ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let fuzzy: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "if ::serde::normalized_eq(__s, \"{v}\") \
                         {{ return ::std::result::Result::Ok({name}::{v}); }}"
                    )
                })
                .collect();
            // The snake_case spellings spec files use, for the error message.
            let expected: String = variants
                .iter()
                .map(|v| snake_case(v))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __s = __v.as_str().ok_or_else(|| ::serde::Error::new(\
                             concat!(\"expected a string for \", stringify!({name}))))?;\n\
                         match __s {{ {arms} _ => {{}} }}\n\
                         {fuzzy}\n\
                         ::std::result::Result::Err(::serde::Error::new(format!(\
                             \"unknown {name} variant: {{__s:?}} (expected one of: {expected})\")))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Opaque { name } => format!("impl ::serde::Deserialize for {name} {{}}"),
    }
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Some(shape) = parse_shape(input) else {
        return TokenStream::new();
    };
    serialize_impl(&shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Some(shape) = parse_shape(input) else {
        return TokenStream::new();
    };
    deserialize_impl(&shape)
        .parse()
        .expect("generated Deserialize impl parses")
}
