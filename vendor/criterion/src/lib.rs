//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the fnpr benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, `sample_size`, [`Throughput`], [`BenchmarkId`],
//! [`black_box`] — with a simple wall-clock harness: per sample, the
//! closure runs in an adaptively sized batch; samples outside the Tukey
//! fences (1.5 × IQR beyond the quartiles) are rejected as outliers, and
//! the reported figure is the median of the surviving samples (plus an
//! elements/sec rate when the group declares a throughput). No plots. Use
//! `harness = false` benches exactly as with upstream criterion.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("## {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.default_sample_size, None, &mut f);
        self
    }
}

/// Work performed per iteration, for rate reporting (upstream's
/// `Throughput`): declared on the group, turned into an `elem/s` (or
/// `B/s`) figure next to the per-iteration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements (scenarios, trials…).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix, sample size and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares how much work one iteration performs; subsequent benchmarks
    /// in the group report a rate alongside the time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn effective_samples(&self) -> usize {
        // Cap shim sample counts: this harness is for relative numbers in
        // CI logs, not rigorous statistics.
        self.sample_size.unwrap_or(20).min(30)
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.effective_samples(), self.throughput, &mut f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.effective_samples();
        let throughput = self.throughput;
        run_benchmark(&label, samples, throughput, &mut |b: &mut Bencher| {
            f(b, input);
        });
        self
    }

    /// Ends the group (upstream writes reports here; the shim needs nothing).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, a parameter, or both.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Handed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it `batch` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Removes samples outside the Tukey fences (`[q1 − 1.5·IQR, q3 + 1.5·IQR]`)
/// from a **sorted** slice; returns the retained range and how many were
/// rejected. With fewer than 4 samples there is no meaningful IQR and
/// everything is kept.
fn reject_outliers(sorted: &[f64]) -> (&[f64], usize) {
    if sorted.len() < 4 {
        return (sorted, 0);
    }
    let quartile = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
    let (q1, q3) = (quartile(0.25), quartile(0.75));
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let start = sorted.partition_point(|&x| x < lo);
    let end = sorted.partition_point(|&x| x <= hi);
    (&sorted[start..end], sorted.len() - (end - start))
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate: run once to size batches so one sample takes ≳200µs.
    let mut bencher = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let batch = (Duration::from_micros(200).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut bencher = Bencher {
            batch,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() / batch as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let (kept, rejected) = reject_outliers(&per_iter);
    let median = kept[kept.len() / 2];
    let min = kept[0];
    let max = kept[kept.len() - 1];
    let rate = throughput.map_or(String::new(), |t| {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        format!(", {} {unit}", fmt_rate(count as f64 / median))
    });
    eprintln!(
        "bench {label:<50} median {}{rate} (min {}, max {}, {} samples x {batch} iters, \
         {rejected} outliers)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max),
        kept.len(),
    );
}

fn fmt_rate(per_second: f64) -> String {
    if per_second >= 1e9 {
        format!("{:.2}G", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.2}M", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.2}K", per_second / 1e3)
    } else {
        format!("{per_second:.1}")
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:8.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:8.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:8.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:8.3} s ")
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter(3), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>());
        });
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(21) * 2));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("algo", 5).to_string(), "algo/5");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn throughput_group_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("thrpt");
        group.sample_size(5).throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn outlier_rejection_drops_tukey_outliers() {
        // Tight cluster plus one wild sample: the wild one goes.
        let samples = [1.0, 1.01, 1.02, 1.03, 1.04, 9.0];
        let (kept, rejected) = reject_outliers(&samples);
        assert_eq!(rejected, 1);
        assert_eq!(kept.len(), 5);
        assert!(kept.iter().all(|&x| x < 2.0));
        // Clean data is untouched.
        let clean = [1.0, 1.1, 1.2, 1.3];
        let (kept, rejected) = reject_outliers(&clean);
        assert_eq!((kept.len(), rejected), (4, 0));
        // Tiny sample counts skip rejection entirely.
        let tiny = [1.0, 100.0];
        let (kept, rejected) = reject_outliers(&tiny);
        assert_eq!((kept.len(), rejected), (2, 0));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(12.3), "12.3");
        assert_eq!(fmt_rate(12_300.0), "12.30K");
        assert_eq!(fmt_rate(12_300_000.0), "12.30M");
        assert_eq!(fmt_rate(2.5e9), "2.50G");
    }
}
