//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the fnpr benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, `sample_size`, [`Throughput`], [`BenchmarkId`],
//! [`black_box`] — with a simple wall-clock harness: per sample, the
//! closure runs in an adaptively sized batch; samples outside the Tukey
//! fences (1.5 × IQR beyond the quartiles) are rejected as outliers, and
//! the reported figure is the median of the surviving samples (plus an
//! elements/sec rate when the group declares a throughput). No plots. Use
//! `harness = false` benches exactly as with upstream criterion.
//!
//! # On-disk baselines
//!
//! Each benchmark *group* persists its results to `BENCH_<group>.json` at
//! the workspace root (the nearest ancestor of the working directory whose
//! `Cargo.toml` declares a `[workspace]`, falling back to the topmost
//! manifest; override with `BENCH_BASELINE_DIR`). When a baseline file
//! already exists, the harness reports the per-benchmark median delta
//! before overwriting it — a cross-run trajectory, not just within-run
//! statistics. Environment knobs:
//!
//! * `BENCH_BASELINE_DIR` — directory for the `BENCH_*.json` files;
//! * `BENCH_SAMPLES` — overrides every group's sample count (smoke mode);
//! * `BENCH_FAIL_ON_REGRESSION` — a fraction (e.g. `0.30`); when any
//!   benchmark's median exceeds its baseline by more than that, the run
//!   reports the offenders and exits non-zero **without** overwriting the
//!   baseline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark inside a group.
#[derive(Debug, Clone, PartialEq)]
struct BenchStat {
    /// Label within the group (e.g. `cursor/1536`).
    name: String,
    /// Median seconds per iteration over the surviving samples.
    median_seconds: f64,
    /// Throughput rate, when the group declared one.
    rate_per_second: Option<f64>,
}

/// A finished group, queued for baseline flushing.
struct GroupResult {
    name: String,
    benchmarks: Vec<BenchStat>,
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    completed: Vec<GroupResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
            completed: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("## {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            throughput: None,
            results: Vec::new(),
        }
    }

    /// Runs a single stand-alone benchmark (not persisted to a baseline —
    /// only groups get `BENCH_<group>.json` files).
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.default_sample_size, None, &mut f);
        self
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        // The shim's own unit tests construct Criterion; they must not
        // splatter baseline files over the workspace. And a drop during
        // panic unwinding (a bench closure blew up) must never replace a
        // complete baseline with partial results.
        if cfg!(test) || std::thread::panicking() {
            return;
        }
        // Flush (and delta-report) every group before acting on the gate,
        // so one regressing group cannot leave later groups unreported
        // with stale baselines.
        let dir = baseline_dir();
        let mut regressed = false;
        for group in merge_groups(std::mem::take(&mut self.completed)) {
            regressed |= flush_group_to(&dir, &group);
        }
        if regressed {
            std::process::exit(1);
        }
    }
}

/// Directory the baseline files live in: `BENCH_BASELINE_DIR` when set,
/// otherwise the nearest ancestor of the working directory whose
/// `Cargo.toml` declares a `[workspace]` (cargo runs benches from the
/// package directory), falling back to the topmost ancestor with any
/// `Cargo.toml` — the workspace check keeps a checkout nested under an
/// unrelated scratch crate from writing baselines outside the repository.
fn baseline_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BENCH_BASELINE_DIR") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut topmost_manifest = None;
    let mut probe = Some(cwd.as_path());
    while let Some(dir) = probe {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if std::fs::read_to_string(&manifest).is_ok_and(|text| text.contains("[workspace]")) {
                return dir.to_path_buf();
            }
            topmost_manifest = Some(dir.to_path_buf());
        }
        probe = dir.parent();
    }
    topmost_manifest.unwrap_or(cwd)
}

/// The `BENCH_FAIL_ON_REGRESSION` threshold (a fraction, e.g. `0.30`), or
/// `None` when gating is off. See [`parse_regression_threshold`] for the
/// handling of malformed values.
fn regression_threshold() -> Option<f64> {
    let raw = std::env::var("BENCH_FAIL_ON_REGRESSION").ok()?;
    Some(parse_regression_threshold(&raw))
}

/// Default regression gate when `BENCH_FAIL_ON_REGRESSION` is set but
/// unusable: 30%.
const DEFAULT_REGRESSION_THRESHOLD: f64 = 0.30;

/// Parses a `BENCH_FAIL_ON_REGRESSION` value into a gating fraction in
/// `(0, 1)`. Anything else — unparsable text, non-positive or non-finite
/// numbers, **and values ≥ 1.0** — warns and falls back to the 0.30
/// default. A value like `30` almost certainly means "30%", and quietly
/// gating at 3000% would produce a threshold that can never fire: the
/// caller asked for a gate, so they get a working one.
fn parse_regression_threshold(raw: &str) -> f64 {
    match raw.trim().parse::<f64>() {
        Ok(value) if value > 0.0 && value < 1.0 => value,
        Ok(value) if value >= 1.0 => {
            eprintln!(
                "warning: BENCH_FAIL_ON_REGRESSION={raw} is not a fraction below 1 \
                 (did you mean {}?); gating at the default {:.0}%",
                value / 100.0,
                DEFAULT_REGRESSION_THRESHOLD * 100.0
            );
            DEFAULT_REGRESSION_THRESHOLD
        }
        _ => {
            eprintln!(
                "warning: BENCH_FAIL_ON_REGRESSION={raw:?} is not a positive \
                 fraction; gating at the default {:.0}%",
                DEFAULT_REGRESSION_THRESHOLD * 100.0
            );
            DEFAULT_REGRESSION_THRESHOLD
        }
    }
}

/// Folds slash-qualified groups into their stem before flushing:
/// `campaign_throughput/acceptance` and `campaign_throughput/soundness`
/// both land in one `BENCH_campaign_throughput.json`, with the qualifier
/// folded into each benchmark name (`acceptance/threads/1`) so entries
/// from different sub-groups cannot collide and the `Throughput` rate of
/// each rides along. Groups without a slash (`bound_kernel`) pass through
/// untouched. First-seen stem order is preserved so the flush and its
/// delta report stay deterministic.
fn merge_groups(groups: Vec<GroupResult>) -> Vec<GroupResult> {
    let mut merged: Vec<GroupResult> = Vec::new();
    for group in groups {
        let (stem, qualifier) = match group.name.split_once('/') {
            Some((stem, qualifier)) => (stem.to_string(), Some(qualifier.to_string())),
            None => (group.name.clone(), None),
        };
        let benchmarks: Vec<BenchStat> = group
            .benchmarks
            .into_iter()
            .map(|stat| match &qualifier {
                Some(q) => BenchStat {
                    name: format!("{q}/{}", stat.name),
                    ..stat
                },
                None => stat,
            })
            .collect();
        if let Some(existing) = merged.iter_mut().find(|g| g.name == stem) {
            existing.benchmarks.extend(benchmarks);
        } else {
            merged.push(GroupResult {
                name: stem,
                benchmarks,
            });
        }
    }
    merged
}

/// `bound_kernel curves` → `bound_kernel_curves` (safe file-name stem).
fn sanitize(group: &str) -> String {
    group
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Writes one group's baseline file, reporting deltas against (and only
/// then replacing) any existing baseline. With `BENCH_FAIL_ON_REGRESSION`
/// set, regressions beyond the threshold keep the old baseline and return
/// `true` (the caller exits non-zero once every group has flushed).
fn flush_group_to(dir: &std::path::Path, group: &GroupResult) -> bool {
    let path = dir.join(format!("BENCH_{}.json", sanitize(&group.name)));
    let old = std::fs::read_to_string(&path)
        .ok()
        .map(|text| parse_baseline(&text))
        .unwrap_or_default();
    let deltas = baseline_deltas(&old, &group.benchmarks);
    for (name, old_median, new_median, pct) in &deltas {
        eprintln!(
            "baseline {}: {name} median {} -> {} ({pct:+.1}%)",
            path.display(),
            fmt_time(*old_median),
            fmt_time(*new_median),
        );
    }
    if let Some(threshold) = regression_threshold() {
        let offenders: Vec<_> = deltas
            .iter()
            .filter(|(_, _, _, pct)| *pct > threshold * 100.0)
            .collect();
        if !offenders.is_empty() {
            for (name, old_median, new_median, pct) in &offenders {
                eprintln!(
                    "REGRESSION {}: {name} median {} -> {} ({pct:+.1}% > {:.0}%)",
                    path.display(),
                    fmt_time(*old_median),
                    fmt_time(*new_median),
                    threshold * 100.0,
                );
            }
            // Keep the old baseline so the regression stays visible.
            return true;
        }
    }
    if let Err(e) = std::fs::write(&path, format_baseline(&group.name, &group.benchmarks)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    false
}

/// `(name, old median, new median, delta %)` for every benchmark present
/// in both the old baseline and the new results.
fn baseline_deltas(old: &[(String, f64)], new: &[BenchStat]) -> Vec<(String, f64, f64, f64)> {
    new.iter()
        .filter_map(|stat| {
            let &(_, old_median) = old.iter().find(|(name, _)| *name == stat.name)?;
            if old_median <= 0.0 {
                return None;
            }
            let pct = (stat.median_seconds - old_median) / old_median * 100.0;
            Some((stat.name.clone(), old_median, stat.median_seconds, pct))
        })
        .collect()
}

/// Serializes a group baseline: one benchmark per line so the counterpart
/// parser can stay line-oriented.
fn format_baseline(group: &str, benchmarks: &[BenchStat]) -> String {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"group\": \"{}\",", escape(group));
    let _ = writeln!(out, "  \"benchmarks\": [");
    for (i, stat) in benchmarks.iter().enumerate() {
        let rate = stat
            .rate_per_second
            .map_or("null".to_string(), |r| format!("{r:e}"));
        let comma = if i + 1 < benchmarks.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"median_seconds\": {:e}, \"rate_per_second\": {rate}}}{comma}",
            escape(&stat.name),
            stat.median_seconds,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Line-oriented parser for the format above: returns `(name, median)`
/// pairs, ignoring anything it does not recognize (a hand-edited or
/// truncated baseline degrades to "no baseline", never to a crash).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        // Walk to the closing quote, honouring backslash escapes.
        let mut name = String::new();
        let mut chars = rest.chars();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => {
                    if let Some(escaped) = chars.next() {
                        name.push(escaped);
                    }
                }
                other => name.push(other),
            }
        }
        if !closed {
            continue;
        }
        let Some(median_at) = line.find("\"median_seconds\": ") else {
            continue;
        };
        let tail = &line[median_at + 18..];
        let number: String = tail
            .chars()
            .take_while(|c| !matches!(c, ',' | '}'))
            .collect();
        if let Ok(median) = number.trim().parse::<f64>() {
            out.push((name, median));
        }
    }
    out
}

/// Work performed per iteration, for rate reporting (upstream's
/// `Throughput`): declared on the group, turned into an `elem/s` (or
/// `B/s`) figure next to the per-iteration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements (scenarios, trials…).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix, sample size and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
    results: Vec<BenchStat>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares how much work one iteration performs; subsequent benchmarks
    /// in the group report a rate alongside the time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn effective_samples(&self) -> usize {
        // Cap shim sample counts: this harness is for relative numbers in
        // CI logs, not rigorous statistics. `BENCH_SAMPLES` (smoke mode)
        // overrides every group.
        let configured = self.sample_size.unwrap_or(20).min(30);
        std::env::var("BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .map_or(configured, |n: usize| n.clamp(1, 30))
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let label = format!("{}/{name}", self.name);
        let stat = run_benchmark(&label, self.effective_samples(), self.throughput, &mut f);
        self.results.push(BenchStat { name, ..stat });
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.to_string();
        let label = format!("{}/{name}", self.name);
        let samples = self.effective_samples();
        let throughput = self.throughput;
        let stat = run_benchmark(&label, samples, throughput, &mut |b: &mut Bencher| {
            f(b, input);
        });
        self.results.push(BenchStat { name, ..stat });
        self
    }

    /// Ends the group (the results are queued for the baseline flush that
    /// happens when the parent [`Criterion`] is dropped).
    pub fn finish(self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        // A group abandoned by a panicking benchmark holds partial
        // results; recording it would poison the baseline on flush.
        if std::thread::panicking() {
            return;
        }
        self.criterion.completed.push(GroupResult {
            name: std::mem::take(&mut self.name),
            benchmarks: std::mem::take(&mut self.results),
        });
    }
}

/// A benchmark identifier: a function name, a parameter, or both.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Handed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it `batch` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Removes samples outside the Tukey fences (`[q1 − 1.5·IQR, q3 + 1.5·IQR]`)
/// from a **sorted** slice; returns the retained range and how many were
/// rejected. With fewer than 4 samples there is no meaningful IQR and
/// everything is kept.
fn reject_outliers(sorted: &[f64]) -> (&[f64], usize) {
    if sorted.len() < 4 {
        return (sorted, 0);
    }
    let quartile = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
    let (q1, q3) = (quartile(0.25), quartile(0.75));
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let start = sorted.partition_point(|&x| x < lo);
    let end = sorted.partition_point(|&x| x <= hi);
    (&sorted[start..end], sorted.len() - (end - start))
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) -> BenchStat {
    // Calibrate: run once to size batches so one sample takes ≳200µs.
    let mut bencher = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let batch = (Duration::from_micros(200).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut bencher = Bencher {
            batch,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() / batch as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let (kept, rejected) = reject_outliers(&per_iter);
    let median = kept[kept.len() / 2];
    let min = kept[0];
    let max = kept[kept.len() - 1];
    let rate_per_second = throughput.map(|t| {
        let count = match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        count as f64 / median
    });
    let rate = throughput.map_or(String::new(), |t| {
        let unit = match t {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        format!(
            ", {} {unit}",
            fmt_rate(rate_per_second.expect("rate set with throughput"))
        )
    });
    eprintln!(
        "bench {label:<50} median {}{rate} (min {}, max {}, {} samples x {batch} iters, \
         {rejected} outliers)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max),
        kept.len(),
    );
    BenchStat {
        name: label.to_string(),
        median_seconds: median,
        rate_per_second,
    }
}

fn fmt_rate(per_second: f64) -> String {
    if per_second >= 1e9 {
        format!("{:.2}G", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.2}M", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.2}K", per_second / 1e3)
    } else {
        format!("{per_second:.1}")
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:8.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:8.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:8.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:8.3} s ")
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter(3), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>());
        });
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(21) * 2));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("algo", 5).to_string(), "algo/5");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn throughput_group_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("thrpt");
        group.sample_size(5).throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn outlier_rejection_drops_tukey_outliers() {
        // Tight cluster plus one wild sample: the wild one goes.
        let samples = [1.0, 1.01, 1.02, 1.03, 1.04, 9.0];
        let (kept, rejected) = reject_outliers(&samples);
        assert_eq!(rejected, 1);
        assert_eq!(kept.len(), 5);
        assert!(kept.iter().all(|&x| x < 2.0));
        // Clean data is untouched.
        let clean = [1.0, 1.1, 1.2, 1.3];
        let (kept, rejected) = reject_outliers(&clean);
        assert_eq!((kept.len(), rejected), (4, 0));
        // Tiny sample counts skip rejection entirely.
        let tiny = [1.0, 100.0];
        let (kept, rejected) = reject_outliers(&tiny);
        assert_eq!((kept.len(), rejected), (2, 0));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(12.3), "12.3");
        assert_eq!(fmt_rate(12_300.0), "12.30K");
        assert_eq!(fmt_rate(12_300_000.0), "12.30M");
        assert_eq!(fmt_rate(2.5e9), "2.50G");
    }

    fn stat(name: &str, median: f64, rate: Option<f64>) -> BenchStat {
        BenchStat {
            name: name.to_string(),
            median_seconds: median,
            rate_per_second: rate,
        }
    }

    #[test]
    fn baseline_round_trips_through_the_parser() {
        let stats = vec![
            stat("cursor/1536", 1.25e-6, Some(800_000.0)),
            stat("reference/1536", 4.5e-4, None),
            stat("odd \"name\"/with\\escape", 2.0e-3, None),
        ];
        let text = format_baseline("bound_kernel", &stats);
        let parsed = parse_baseline(&text);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0], ("cursor/1536".to_string(), 1.25e-6));
        assert_eq!(parsed[1].0, "reference/1536");
        assert_eq!(parsed[2].0, "odd \"name\"/with\\escape");
        // Garbage degrades to an empty baseline, never a crash.
        assert!(parse_baseline("not json at all").is_empty());
        assert!(parse_baseline("{\"benchmarks\": [").is_empty());
    }

    #[test]
    fn baseline_deltas_match_by_name() {
        let old = vec![
            ("a".to_string(), 1.0e-3),
            ("gone".to_string(), 5.0e-3),
            ("zero".to_string(), 0.0),
        ];
        let new = vec![
            stat("a", 1.5e-3, None),
            stat("fresh", 9.0e-3, None),
            stat("zero", 1.0e-3, None),
        ];
        let deltas = baseline_deltas(&old, &new);
        // Only "a" is in both with a usable old median.
        assert_eq!(deltas.len(), 1);
        let (name, old_m, new_m, pct) = &deltas[0];
        assert_eq!(name, "a");
        assert_eq!((*old_m, *new_m), (1.0e-3, 1.5e-3));
        assert!((pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn regression_threshold_parsing_gates_sanely() {
        // In-range fractions pass through.
        assert_eq!(parse_regression_threshold("0.30"), 0.30);
        assert_eq!(parse_regression_threshold("0.05"), 0.05);
        assert_eq!(parse_regression_threshold(" 0.5 "), 0.5);
        // `30` used to be accepted as a 3000% gate — a threshold that can
        // never fire. Values >= 1.0 are malformed and fall back to 0.30.
        assert_eq!(parse_regression_threshold("30"), 0.30);
        assert_eq!(parse_regression_threshold("1.0"), 0.30);
        assert_eq!(parse_regression_threshold("1"), 0.30);
        assert_eq!(parse_regression_threshold("inf"), 0.30);
        // Non-positive and unparsable values fall back too.
        assert_eq!(parse_regression_threshold("0"), 0.30);
        assert_eq!(parse_regression_threshold("-0.2"), 0.30);
        assert_eq!(parse_regression_threshold("NaN"), 0.30);
        assert_eq!(parse_regression_threshold("thirty"), 0.30);
        assert_eq!(parse_regression_threshold(""), 0.30);
    }

    #[test]
    fn slash_qualified_groups_merge_into_their_stem() {
        let groups = vec![
            GroupResult {
                name: "campaign_throughput/acceptance".into(),
                benchmarks: vec![stat("threads/1", 1.0e-3, Some(48_000.0))],
            },
            GroupResult {
                name: "bound_kernel".into(),
                benchmarks: vec![stat("cursor/1536", 1.0e-6, None)],
            },
            GroupResult {
                name: "campaign_throughput/soundness".into(),
                benchmarks: vec![stat("threads/1", 2.0e-3, Some(32_000.0))],
            },
        ];
        let merged = merge_groups(groups);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].name, "campaign_throughput");
        let names: Vec<_> = merged[0]
            .benchmarks
            .iter()
            .map(|b| b.name.as_str())
            .collect();
        assert_eq!(names, ["acceptance/threads/1", "soundness/threads/1"]);
        // The Throughput::Elements rate rides into the merged group.
        assert_eq!(merged[0].benchmarks[0].rate_per_second, Some(48_000.0));
        assert_eq!(merged[1].name, "bound_kernel");
        assert_eq!(merged[1].benchmarks[0].name, "cursor/1536");
        // The merged group formats to a single parsable baseline file
        // under the stem name.
        let text = format_baseline(&merged[0].name, &merged[0].benchmarks);
        assert!(text.contains("\"group\": \"campaign_throughput\""));
        assert!(text.contains("\"rate_per_second\": 4.8e4"));
        assert_eq!(parse_baseline(&text).len(), 2);
    }

    #[test]
    fn group_names_sanitize_to_file_stems() {
        assert_eq!(sanitize("bound_kernel"), "bound_kernel");
        assert_eq!(sanitize("camp aign/7"), "camp_aign_7");
    }

    #[test]
    fn flush_writes_and_rereads_a_baseline_file() {
        let dir =
            std::env::temp_dir().join(format!("fnpr_criterion_shim_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let group = GroupResult {
            name: "shimcheck".to_string(),
            benchmarks: vec![stat("a/1", 2.0e-5, Some(50_000.0))],
        };
        assert!(!flush_group_to(&dir, &group), "no baseline, no regression");
        let path = dir.join("BENCH_shimcheck.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"group\": \"shimcheck\""));
        assert_eq!(parse_baseline(&text), vec![("a/1".to_string(), 2.0e-5)]);
        // Second flush consumes the first as a baseline (delta path runs).
        assert!(!flush_group_to(&dir, &group), "identical medians pass");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
