//! Offline stand-in for `serde_json`: emit and parse JSON to and from the
//! shim [`serde::Value`] tree.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` as compact JSON.
#[must_use]
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serializes `value` as human-readable, two-space-indented JSON.
#[must_use]
pub fn to_string_pretty<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape problem.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Parses JSON text into a raw [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes: Vec<char> = s.chars().collect();
    let mut pos = 0;
    let v = parse_at(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {pos}")));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` prints the shortest representation that round-trips;
                // force a decimal point so the value re-parses as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no Inf/NaN
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => write_seq(
            out,
            items.iter().map(|i| (None, i)),
            ('[', ']'),
            indent,
            level,
        ),
        Value::Map(entries) => write_seq(
            out,
            entries.iter().map(|(k, v)| (Some(k.as_str()), v)),
            ('{', '}'),
            indent,
            level,
        ),
    }
}

fn write_seq<'a>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = (Option<&'a str>, &'a Value)>,
    (open, close): (char, char),
    indent: Option<usize>,
    level: usize,
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, (key, item)) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        if let Some(key) = key {
            write_json_string(out, key);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
        }
        write_value(out, item, indent, level + 1);
    }
    if let Some(width) = indent {
        if !empty {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(s: &[char], pos: &mut usize) {
    while *pos < s.len() && s[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_at(s: &[char], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(s, pos);
    let Some(&c) = s.get(*pos) else {
        return Err(Error::new("unexpected end of JSON"));
    };
    match c {
        'n' => parse_keyword(s, pos, "null", Value::Null),
        't' => parse_keyword(s, pos, "true", Value::Bool(true)),
        'f' => parse_keyword(s, pos, "false", Value::Bool(false)),
        '"' => parse_string(s, pos).map(Value::Str),
        '[' => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(s, pos);
                if s.get(*pos) == Some(&']') {
                    *pos += 1;
                    return Ok(Value::Seq(items));
                }
                if !items.is_empty() {
                    expect(s, pos, ',')?;
                }
                items.push(parse_at(s, pos)?);
            }
        }
        '{' => {
            *pos += 1;
            let mut entries = Vec::new();
            loop {
                skip_ws(s, pos);
                if s.get(*pos) == Some(&'}') {
                    *pos += 1;
                    return Ok(Value::Map(entries));
                }
                if !entries.is_empty() {
                    expect(s, pos, ',')?;
                    skip_ws(s, pos);
                }
                let key = parse_string(s, pos)?;
                skip_ws(s, pos);
                expect(s, pos, ':')?;
                let value = parse_at(s, pos)?;
                entries.push((key, value));
            }
        }
        c if c == '-' || c.is_ascii_digit() => parse_number(s, pos),
        other => Err(Error::new(format!(
            "unexpected character {other:?} at offset {pos}"
        ))),
    }
}

fn parse_keyword(s: &[char], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if s[*pos..].starts_with(&word.chars().collect::<Vec<_>>()[..]) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at offset {pos}")))
    }
}

fn expect(s: &[char], pos: &mut usize, c: char) -> Result<(), Error> {
    skip_ws(s, pos);
    if s.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!("expected {c:?} at offset {pos}")))
    }
}

fn parse_string(s: &[char], pos: &mut usize) -> Result<String, Error> {
    if s.get(*pos) != Some(&'"') {
        return Err(Error::new(format!("expected a string at offset {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = s.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let Some(&esc) = s.get(*pos) else {
                    return Err(Error::new("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    '"' | '\\' | '/' => out.push(esc),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hex: String = s
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?
                            .iter()
                            .collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| Error::new("bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(Error::new(format!("bad escape \\{other}"))),
                }
            }
            c => out.push(c),
        }
    }
    Err(Error::new("unterminated string"))
}

fn parse_number(s: &[char], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while let Some(&c) = s.get(*pos) {
        if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text: String = s[start..*pos].iter().collect();
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::new(format!("invalid number {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_tree() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("smoke \"test\"\n".into())),
            ("seed".into(), Value::Int(2012)),
            ("ratio".into(), Value::Float(0.5)),
            (
                "flags".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Map(vec![])),
        ]);
        for text in [
            to_string(&Wrapper(v.clone())),
            to_string_pretty(&Wrapper(v.clone())),
        ] {
            assert_eq!(parse_value(&text).unwrap(), v, "text: {text}");
        }
    }

    struct Wrapper(Value);
    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64), "2.0");
        assert_eq!(parse_value("2.0").unwrap(), Value::Float(2.0));
        assert_eq!(parse_value("7").unwrap(), Value::Int(7));
    }

    #[test]
    fn typed_from_str() {
        let pair: (f64, u64) = from_str("[1.5, 3]").unwrap();
        assert_eq!(pair, (1.5, 3));
        assert!(from_str::<bool>("[true]").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
    }
}
