//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry, so
//! this workspace ships a minimal, deterministic implementation of exactly
//! the `rand` 0.8 API surface the fnpr crates use:
//!
//! * [`Rng`] with `gen`, `gen_range` (half-open and inclusive, ints and
//!   floats) and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], here a xoshiro256++ generator seeded via SplitMix64.
//!
//! The stream differs from upstream `StdRng` (ChaCha12) — nothing in the
//! workspace depends on upstream's exact values, only on determinism per
//! seed, which this implementation guarantees on every platform.

#![warn(missing_docs)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Types that can seed themselves from a single `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling uniformly from a range type. Mirrors `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from `self`, panicking if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types drawable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// A random number generator. The only required method is [`Rng::next_u64`];
/// everything else is derived from it.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value from the standard distribution: `f64`/`f32` uniform in
    /// `[0, 1)`, integers uniform over their full range, `bool` fair.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (matching upstream `rand`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn uniform_f64<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64, inclusive: bool) -> f64 {
    if inclusive {
        assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
    } else {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
    }
    let u = f64::sample(rng);
    let v = lo + (hi - lo) * u;
    // Guard against rounding up to `hi` in the half-open case.
    if !inclusive && v >= hi {
        lo.max(hi - (hi - lo) * f64::EPSILON)
    } else {
        v
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        uniform_f64(rng, self.start, self.end, false)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        uniform_f64(rng, *self.start(), *self.end(), true)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        uniform_f64(rng, f64::from(self.start), f64::from(self.end), false) as f32
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&x));
            let n = rng.gen_range(2..12);
            assert!((2..12).contains(&n));
            let m = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&m));
        }
    }

    #[test]
    fn int_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw<R: Rng>(rng: &mut R) -> f64 {
            // Re-borrowing a `&mut R` as an `Rng` mirrors how the fnpr
            // generators thread RNGs through helper functions.
            fn inner<R: Rng>(mut rng: R) -> f64 {
                rng.gen()
            }
            inner(rng)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
