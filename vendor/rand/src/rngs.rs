//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna), seeded via
/// SplitMix64 so that every `u64` seed yields a well-mixed initial state.
///
/// Deterministic, portable, `Send + Sync`, and fast — the properties the
/// campaign engine's sharded executor relies on. Not cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}
