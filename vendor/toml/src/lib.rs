//! Offline stand-in for the `toml` crate: parses the subset of TOML the
//! fnpr campaign specs use into the shim [`serde::Value`] tree.
//!
//! Supported: comments, `[table]` / `[dotted.table]` headers,
//! `[[array-of-tables]]`, bare and dotted keys, basic (`"…"`) and literal
//! (`'…'`) strings, integers, floats, booleans, (multi-line) arrays, and
//! inline tables. Unsupported TOML (dates, multi-line strings) errors out
//! rather than mis-parsing.

#![warn(missing_docs)]

use serde::{Deserialize, Value};

pub use serde::Error;

/// Parses TOML text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] naming the offending line on syntax problems.
/// Shape problems (wrong type, unknown variant, missing field) are mapped
/// back to the offending line via the key/line index recorded while
/// parsing, so `seed = "two"` reports `line 3 (key \`seed\`): …`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let (value, index) = parse_document_spanned(s)?;
    T::from_value(&value).map_err(|e| index.annotate(e))
}

/// Parses TOML text into a raw [`Value::Map`].
///
/// # Errors
///
/// Returns an [`Error`] naming the offending line.
pub fn parse_document(s: &str) -> Result<Value, Error> {
    parse_document_spanned(s).map(|(value, _)| value)
}

/// Maps dotted key paths (`acceptance.taskset.n`) to the 1-based source
/// line where each was defined. Built as a side product of parsing; used to
/// point shape errors at their TOML line.
#[derive(Debug, Clone, Default)]
pub struct LineIndex {
    entries: Vec<(String, usize)>,
}

impl LineIndex {
    /// Line of an exact dotted path (first definition wins).
    #[must_use]
    pub fn line_of(&self, path: &str) -> Option<usize> {
        self.entries
            .iter()
            .find(|(k, _)| k == path)
            .map(|&(_, line)| line)
    }

    /// Line of any path whose *last* segment equals `key` (first match).
    /// Useful for semantic errors that only know the offending key name.
    #[must_use]
    pub fn find_key(&self, key: &str) -> Option<(&str, usize)> {
        self.entries
            .iter()
            .find(|(k, _)| k.rsplit('.').next() == Some(key))
            .map(|(k, line)| (k.as_str(), *line))
    }

    fn record(&mut self, path: &str, line: usize) {
        if self.line_of(path).is_none() {
            self.entries.push((path.to_string(), line));
        }
    }

    /// Rewrites a shape error to lead with the offending line, when the
    /// error's context frames (`Type.field: …`) resolve to a recorded key.
    /// Errors that do not resolve are returned unchanged.
    #[must_use]
    pub fn annotate(&self, err: Error) -> Error {
        let msg = err.message();
        let path = field_path_of(msg);
        // Deepest recorded prefix wins; a missing field naturally resolves
        // to its parent table's line.
        for depth in (1..=path.len()).rev() {
            let joined = path[..depth].join(".");
            if let Some(line) = self.line_of(&joined) {
                return Error::new(format!("line {line} (key `{joined}`): {msg}"));
            }
        }
        err
    }
}

/// Extracts the field path from a shape-error message: the derive's context
/// frames are `TypeName.field`, so every whitespace token of that shape
/// contributes one field segment, in nesting order.
fn field_path_of(msg: &str) -> Vec<String> {
    msg.split_whitespace()
        .filter_map(|tok| {
            let tok = tok.trim_end_matches([':', ',', ';']);
            let (ty, field) = tok.split_once('.')?;
            let is_type = ty.starts_with(|c: char| c.is_ascii_uppercase())
                && ty.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
            let is_field = !field.is_empty()
                && field
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
            (is_type && is_field).then(|| field.to_string())
        })
        .collect()
}

/// [`parse_document`] plus the key/line index it recorded.
///
/// # Errors
///
/// Returns an [`Error`] naming the offending line.
pub fn parse_document_spanned(s: &str) -> Result<(Value, LineIndex), Error> {
    let mut root: Vec<(String, Value)> = Vec::new();
    let mut index = LineIndex::default();
    // Path of the table currently being filled (empty = root).
    let mut current: Vec<String> = Vec::new();
    let mut lines = s.lines().enumerate().peekable();
    while let Some((line_no, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| Error::new(format!("line {}: {msg}", line_no + 1));
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let path =
                parse_key_path(header).map_err(|e| e.context(&format!("line {}", line_no + 1)))?;
            push_array_table(&mut root, &path)?;
            index.record(&path.join("."), line_no + 1);
            current = path;
            current.push(String::new()); // marker: inside the last array element
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let path =
                parse_key_path(header).map_err(|e| e.context(&format!("line {}", line_no + 1)))?;
            ensure_table(&mut root, &path)?;
            index.record(&path.join("."), line_no + 1);
            current = path;
        } else if let Some(eq) = find_top_level_eq(line) {
            let key_part = line[..eq].trim();
            let mut value_text = line[eq + 1..].trim().to_string();
            // Multi-line arrays / inline tables: keep consuming lines until
            // the value parses or the document ends.
            loop {
                match parse_scalar(&value_text) {
                    Ok(v) => {
                        let mut path = current.clone();
                        path.retain(|seg| !seg.is_empty());
                        let key_path = parse_key_path(key_part)
                            .map_err(|e| e.context(&format!("line {}", line_no + 1)))?;
                        let full: Vec<&str> = path
                            .iter()
                            .map(String::as_str)
                            .chain(key_path.iter().map(String::as_str))
                            .collect();
                        index.record(&full.join("."), line_no + 1);
                        let in_array_elem = current.last().is_some_and(String::is_empty);
                        insert(&mut root, &path, &key_path, v, in_array_elem)?;
                        break;
                    }
                    Err(e) => {
                        if needs_more_input(&value_text) {
                            let Some((_, next)) = lines.next() else {
                                return Err(err("unterminated value"));
                            };
                            value_text.push('\n');
                            value_text.push_str(strip_comment(next));
                        } else {
                            return Err(e.context(&format!("line {}", line_no + 1)));
                        }
                    }
                }
            }
        } else {
            return Err(err("expected `key = value` or a `[table]` header"));
        }
    }
    Ok((Value::Map(root), index))
}

/// True when `text` is an obviously incomplete array / inline table / string.
fn needs_more_input(text: &str) -> bool {
    let mut depth = 0i32;
    let mut chars = text.chars();
    let mut in_basic = false;
    let mut in_literal = false;
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_basic => {
                let _ = chars.next();
            }
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '[' | '{' if !in_basic && !in_literal => depth += 1,
            ']' | '}' if !in_basic && !in_literal => depth -= 1,
            _ => {}
        }
    }
    depth > 0 || in_basic || in_literal
}

fn strip_comment(line: &str) -> &str {
    let mut in_basic = false;
    let mut in_literal = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !in_literal && !prev_backslash => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '#' if !in_basic && !in_literal => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && in_basic && !prev_backslash;
    }
    line
}

fn parse_key_path(text: &str) -> Result<Vec<String>, Error> {
    text.split('.')
        .map(|seg| {
            let seg = seg.trim();
            let seg = seg
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .unwrap_or(seg);
            if seg.is_empty() {
                Err(Error::new("empty key segment"))
            } else {
                Ok(seg.to_string())
            }
        })
        .collect()
}

/// `=` position outside any string quotes (keys may be quoted).
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_basic = false;
    let mut in_literal = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '=' if !in_basic && !in_literal => return Some(i),
            _ => {}
        }
    }
    None
}

fn descend<'a>(
    map: &'a mut Vec<(String, Value)>,
    path: &[String],
) -> Result<&'a mut Vec<(String, Value)>, Error> {
    let mut cur = map;
    for seg in path {
        let idx = match cur.iter().position(|(k, _)| k == seg) {
            Some(i) => i,
            None => {
                cur.push((seg.clone(), Value::Map(Vec::new())));
                cur.len() - 1
            }
        };
        cur = match &mut cur[idx].1 {
            Value::Map(m) => m,
            // Descending into an array of tables targets its last element.
            Value::Seq(items) => match items.last_mut() {
                Some(Value::Map(m)) => m,
                _ => return Err(Error::new(format!("key {seg:?} is not a table"))),
            },
            _ => return Err(Error::new(format!("key {seg:?} is not a table"))),
        };
    }
    Ok(cur)
}

fn ensure_table(root: &mut Vec<(String, Value)>, path: &[String]) -> Result<(), Error> {
    descend(root, path).map(|_| ())
}

fn push_array_table(root: &mut Vec<(String, Value)>, path: &[String]) -> Result<(), Error> {
    let (last, parent_path) = path.split_last().expect("non-empty header path");
    let parent = descend(root, parent_path)?;
    match parent.iter_mut().find(|(k, _)| k == last) {
        Some((_, Value::Seq(items))) => items.push(Value::Map(Vec::new())),
        Some(_) => {
            return Err(Error::new(format!(
                "key {last:?} is not an array of tables"
            )))
        }
        None => parent.push((last.clone(), Value::Seq(vec![Value::Map(Vec::new())]))),
    }
    Ok(())
}

fn insert(
    root: &mut Vec<(String, Value)>,
    table_path: &[String],
    key_path: &[String],
    value: Value,
    in_array_elem: bool,
) -> Result<(), Error> {
    let table = if in_array_elem {
        // `table_path` names an array of tables; descend lands on its last
        // element because `descend` resolves Seq to last_mut.
        descend(root, table_path)?
    } else {
        descend(root, table_path)?
    };
    let (last, middle) = key_path.split_last().expect("non-empty key path");
    let table = descend(table, middle)?;
    if table.iter().any(|(k, _)| k == last) {
        return Err(Error::new(format!("duplicate key {last:?}")));
    }
    table.push((last.clone(), value));
    Ok(())
}

/// Parses a single TOML value (scalar, array, or inline table).
fn parse_scalar(text: &str) -> Result<Value, Error> {
    let text = text.trim();
    if text.is_empty() {
        return Err(Error::new("empty value"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let (s, used) = parse_basic_string(rest)?;
        if rest[used..].trim().is_empty() {
            return Ok(Value::Str(s));
        }
        return Err(Error::new("trailing characters after string"));
    }
    if let Some(rest) = text.strip_prefix('\'') {
        let end = rest
            .find('\'')
            .ok_or_else(|| Error::new("unterminated literal string"))?;
        if rest[end + 1..].trim().is_empty() {
            return Ok(Value::Str(rest[..end].to_string()));
        }
        return Err(Error::new("trailing characters after string"));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('[') {
        return parse_array(text);
    }
    if text.starts_with('{') {
        return parse_inline_table(text);
    }
    let clean = text.replace('_', "");
    if !clean.contains(['.', 'e', 'E']) || clean.starts_with("0x") {
        if let Ok(n) = clean.parse::<i64>() {
            return Ok(Value::Int(n));
        }
        if let Some(hex) = clean.strip_prefix("0x") {
            if let Ok(n) = i64::from_str_radix(hex, 16) {
                return Ok(Value::Int(n));
            }
        }
    }
    if let Ok(f) = clean.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(Error::new(format!("cannot parse value {text:?}")))
}

/// Parses the body of a basic string (after the opening quote); returns the
/// unescaped string and the index just past the closing quote.
fn parse_basic_string(rest: &str) -> Result<(String, usize), Error> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let Some((_, esc)) = chars.next() else {
                    return Err(Error::new("unterminated escape"));
                };
                match esc {
                    '"' | '\\' => out.push(esc),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    other => return Err(Error::new(format!("unsupported escape \\{other}"))),
                }
            }
            c => out.push(c),
        }
    }
    Err(Error::new("unterminated string"))
}

/// Splits the interior of a bracketed list on top-level commas.
fn split_top_level(interior: &str) -> Result<Vec<String>, Error> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut in_basic = false;
    let mut in_literal = false;
    let mut start = 0;
    let mut prev_backslash = false;
    for (i, c) in interior.char_indices() {
        match c {
            '"' if !in_literal && !prev_backslash => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '[' | '{' if !in_basic && !in_literal => depth += 1,
            ']' | '}' if !in_basic && !in_literal => depth -= 1,
            ',' if depth == 0 && !in_basic && !in_literal => {
                parts.push(interior[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
        prev_backslash = c == '\\' && in_basic && !prev_backslash;
    }
    if depth != 0 || in_basic || in_literal {
        return Err(Error::new("unbalanced value"));
    }
    let tail = interior[start..].trim();
    if !tail.is_empty() {
        parts.push(tail.to_string());
    }
    Ok(parts)
}

fn parse_array(text: &str) -> Result<Value, Error> {
    let interior = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| Error::new("unterminated array"))?;
    let items = split_top_level(interior)?
        .into_iter()
        .map(|part| parse_scalar(&part))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Value::Seq(items))
}

fn parse_inline_table(text: &str) -> Result<Value, Error> {
    let interior = text
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| Error::new("unterminated inline table"))?;
    let mut entries = Vec::new();
    for part in split_top_level(interior)? {
        let eq = find_top_level_eq(&part).ok_or_else(|| {
            Error::new(format!(
                "expected `key = value` in inline table, got {part:?}"
            ))
        })?;
        let key = parse_key_path(part[..eq].trim())?;
        if key.len() != 1 {
            return Err(Error::new("dotted keys unsupported in inline tables"));
        }
        entries.push((key[0].clone(), parse_scalar(part[eq + 1..].trim())?));
    }
    Ok(Value::Map(entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_campaign_like_spec() {
        let text = r#"
# a smoke spec
name = "smoke"
seed = 2012
threads = 4

[taskset]
n = 5
utilization = 0.6          # UUniFast total
period_range = [10.0, 1000.0]
deadline_factor = [1.0, 1.0]

[npr]
q_scale = 0.8
delay_frac = 0.6

[[sweep]]
policy = "fixed_priority"
utilizations = [
    0.3, 0.4,
    0.5,
]

[[sweep]]
policy = "edf"
utilizations = [0.6]
"#;
        let doc = parse_document(text).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("smoke"));
        assert_eq!(doc.get("seed").unwrap().as_i64(), Some(2012));
        let taskset = doc.get("taskset").unwrap();
        assert_eq!(taskset.get("utilization").unwrap().as_f64(), Some(0.6));
        assert_eq!(
            taskset.get("period_range").unwrap().as_seq().unwrap().len(),
            2
        );
        let sweeps = doc.get("sweep").unwrap().as_seq().unwrap();
        assert_eq!(sweeps.len(), 2);
        assert_eq!(
            sweeps[0]
                .get("utilizations")
                .unwrap()
                .as_seq()
                .unwrap()
                .len(),
            3
        );
        assert_eq!(sweeps[1].get("policy").unwrap().as_str(), Some("edf"));
    }

    #[test]
    fn inline_tables_and_strings() {
        let doc =
            parse_document("a = { x = 1, y = \"two, three\" }\nb = 'lit # not comment'\n").unwrap();
        assert_eq!(doc.get("a").unwrap().get("x").unwrap().as_i64(), Some(1));
        assert_eq!(
            doc.get("a").unwrap().get("y").unwrap().as_str(),
            Some("two, three")
        );
        assert_eq!(doc.get("b").unwrap().as_str(), Some("lit # not comment"));
    }

    #[test]
    fn dotted_keys_and_tables() {
        let doc = parse_document("[output]\ncsv.path = \"out.csv\"\n").unwrap();
        assert_eq!(
            doc.get("output")
                .unwrap()
                .get("csv")
                .unwrap()
                .get("path")
                .unwrap()
                .as_str(),
            Some("out.csv")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_document("just words\n").is_err());
        assert!(parse_document("a = 1\na = 2\n").is_err());
        assert!(parse_document("a = 1979-05-27\n").is_err());
    }

    #[test]
    fn line_index_records_keys_and_tables() {
        let (_, index) =
            parse_document_spanned("name = \"x\"\n\n[taskset]\nn = 5\n# c\nu = 0.5\n").unwrap();
        assert_eq!(index.line_of("name"), Some(1));
        assert_eq!(index.line_of("taskset"), Some(3));
        assert_eq!(index.line_of("taskset.n"), Some(4));
        assert_eq!(index.line_of("taskset.u"), Some(6));
        assert_eq!(index.line_of("absent"), None);
        assert_eq!(index.find_key("u"), Some(("taskset.u", 6)));
    }

    #[test]
    fn shape_errors_point_at_the_offending_line() {
        #[derive(Debug, serde::Deserialize)]
        struct Inner {
            n: u64,
        }
        #[derive(Debug, serde::Deserialize)]
        struct Outer {
            inner: Option<Inner>,
        }
        // Field present with the wrong type: the error names its line.
        let err = from_str::<Outer>("[inner]\n\nn = \"five\"\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "no line in {msg:?}");
        assert!(msg.contains("`inner.n`"), "no key in {msg:?}");
        // Required field missing: the error falls back to the table's line.
        let err = from_str::<Outer>("x = 1\n[inner]\nm = 2\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "no fallback line in {msg:?}");
        let _ = Outer { inner: None }.inner.map(|i| i.n);
    }

    #[test]
    fn field_path_extraction() {
        assert_eq!(
            field_path_of("Spec.acceptance: AcceptanceSpec.taskset: missing field TaskSetParams.n"),
            vec!["acceptance", "taskset", "n"]
        );
        // Floats and plain words are not mistaken for context frames.
        assert_eq!(
            field_path_of("expected 0.5 got Str(\"x\")"),
            Vec::<String>::new()
        );
    }
}
