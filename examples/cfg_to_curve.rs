//! End-to-end Section IV pipeline on the paper's Figure 1 CFG.
//!
//! The task's structure is the published 11-block graph; we attach a
//! straight-line instruction layout, run the useful-cache-block analysis,
//! compute every block's execution window (checking the published
//! earliest/latest start offsets on the way), assemble the preemption-delay
//! function `fi`, and bound the cumulative delay for a range of region
//! lengths.
//!
//! Run with: `cargo run --example cfg_to_curve`

use std::collections::BTreeMap;

use fnpr::cache::{AccessMap, CacheConfig};
use fnpr::cfg::{fixtures, BlockId, StartOffsets};
use fnpr::{algorithm1, analyze_task, eq4_bound_for_curve};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = fixtures::figure1_cfg();

    // Reproduce Figure 1(b): the computed start offsets match the paper.
    let offsets = StartOffsets::analyze(&cfg)?;
    println!("Figure 1(b) start offsets (computed == published):");
    println!("{:>6} {:>12} {:>12}", "block", "smin", "smax");
    for (block, smin, smax) in fixtures::figure1_expected_offsets() {
        let (c_min, c_max) = (offsets.earliest_start(block), offsets.latest_start(block));
        assert_eq!((c_min, c_max), (smin, smax), "offset mismatch at {block}");
        println!("{:>6} {:>12} {:>12}", block.to_string(), c_min, c_max);
    }

    // A 32-set direct-mapped cache; blocks laid out back to back, 64 bytes
    // each. On top of the instruction fetches, the task builds a lookup
    // table early (blocks 1-2), and the final blocks (8-10) read it back —
    // the Section III narrative: preempting while the table is live is
    // expensive, preempting after the last use is cheap.
    let cache = CacheConfig::new(32, 1, 16, 5.0)?;
    let layout: Vec<(BlockId, u64, u64)> = (0..cfg.len())
        .map(|i| (BlockId(i), i as u64 * 64, 64))
        .collect();
    let mut accesses = AccessMap::from_code_layout(&layout, &cache);
    let table: Vec<u64> = (0..6).map(|k| 0x1000 + k * 16).collect();
    for &writer in &[1usize, 2] {
        for &addr in &table {
            accesses.push(BlockId(writer), addr);
        }
    }
    for &reader in &[8usize, 9, 10] {
        for &addr in &table {
            accesses.push(BlockId(reader), addr);
        }
    }

    let analysis = analyze_task(&cfg, &BTreeMap::new(), &accesses, &cache)?;
    println!("\nper-block CRPD bounds:");
    for (i, crpd) in analysis.crpd_per_block.iter().enumerate() {
        println!("  b{i:<3} {crpd:>8.1}");
    }
    println!(
        "\nfi(t) (piecewise constant, {} segments):",
        analysis.curve.segment_count()
    );
    for seg in analysis.curve.segments() {
        println!(
            "  [{:>6.1}, {:>6.1})  ->  {:>6.1}",
            seg.start, seg.end, seg.value
        );
    }
    println!("\ntask WCET (isolation): {}", analysis.timing.wcet);

    println!("\ncumulative delay bounds (Algorithm 1 vs Eq. 4):");
    println!("{:>8} {:>12} {:>12}", "Q", "Algorithm 1", "Eq. 4");
    for q in [60.0, 80.0, 100.0, 150.0, 215.0] {
        let alg1 = algorithm1(&analysis.curve, q)?;
        let eq4 = eq4_bound_for_curve(&analysis.curve, q)?;
        println!(
            "{:>8.0} {:>12} {:>12}",
            q,
            alg1.total_delay()
                .map_or_else(|| "divergent".into(), |d| format!("{d:.1}")),
            eq4.total_delay()
                .map_or_else(|| "divergent".into(), |d| format!("{d:.1}")),
        );
    }
    Ok(())
}
