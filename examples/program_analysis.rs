//! Whole-program analysis: functions, calls and loops, end to end.
//!
//! A small "sensor fusion" task: `main` reads two sensors (calling a shared
//! `read_sensor` helper), filters the samples in a bounded loop (calling
//! `fir_step` each iteration), and emits the result. The call graph is
//! summarised bottom-up (Section IV: "analyzing the leaves first"), loops
//! are reduced to super-blocks, and the resulting call-inclusive loop-free
//! graph feeds the CRPD → `fi` → Algorithm 1 pipeline.
//!
//! Run with: `cargo run --example program_analysis`

use std::collections::BTreeMap;

use fnpr::cache::{AccessMap, CacheConfig};
use fnpr::cfg::{CfgBuilder, ExecInterval, Function, LoopBound, Program};
use fnpr::{algorithm1, analyze_task, eq4_bound_for_curve};

fn iv(min: f64, max: f64) -> Result<ExecInterval, Box<dyn std::error::Error>> {
    Ok(ExecInterval::new(min, max)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Leaf: fir_step — straight line, fixed cost.
    let mut fir = CfgBuilder::new();
    let fir_body = fir.labeled_block(iv(6.0, 8.0)?, "fir_body");
    let _ = fir_body;
    let fir_cfg = fir.build()?;

    // Leaf: read_sensor — fast path / retry path.
    let mut sensor = CfgBuilder::new();
    let s_entry = sensor.labeled_block(iv(2.0, 2.0)?, "probe");
    let s_fast = sensor.labeled_block(iv(1.0, 1.0)?, "fast");
    let s_retry = sensor.labeled_block(iv(5.0, 9.0)?, "retry");
    let s_join = sensor.labeled_block(iv(1.0, 1.0)?, "done");
    sensor.edge(s_entry, s_fast)?;
    sensor.edge(s_entry, s_retry)?;
    sensor.edge(s_fast, s_join)?;
    sensor.edge(s_retry, s_join)?;
    let sensor_cfg = sensor.build()?;

    // Root: main — two sensor reads, a bounded filter loop, emit.
    let mut main_fn = CfgBuilder::new();
    let m_init = main_fn.labeled_block(iv(3.0, 4.0)?, "init");
    let m_read1 = main_fn.labeled_block(iv(1.0, 1.0)?, "read1"); // + call
    let m_read2 = main_fn.labeled_block(iv(1.0, 1.0)?, "read2"); // + call
    let m_header = main_fn.labeled_block(iv(1.0, 1.0)?, "filter_header");
    let m_step = main_fn.labeled_block(iv(2.0, 2.0)?, "filter_step"); // + call
    let m_emit = main_fn.labeled_block(iv(2.0, 3.0)?, "emit");
    main_fn.edge(m_init, m_read1)?;
    main_fn.edge(m_read1, m_read2)?;
    main_fn.edge(m_read2, m_header)?;
    main_fn.edge(m_header, m_step)?;
    main_fn.edge(m_step, m_header)?;
    main_fn.edge(m_header, m_emit)?;
    let main_cfg = main_fn.build()?;

    let mut program = Program::new();
    program.add_function(Function::new("fir_step", fir_cfg))?;
    program.add_function(Function::new("read_sensor", sensor_cfg))?;
    program.add_function(
        Function::new("main", main_cfg)
            .with_call(m_read1, "read_sensor")
            .with_call(m_read2, "read_sensor")
            .with_call(m_step, "fir_step")
            .with_loop_bound(m_header, LoopBound::new(4, 8)?),
    )?;

    let order = program.bottom_up_order()?;
    println!("bottom-up analysis order: {}", order.join(" -> "));
    let summary = program.analyze_root("main")?;
    println!(
        "main (call-inclusive, loops reduced): BCET = {}, WCET = {}",
        summary.timing.bcet, summary.timing.wcet
    );

    // Memory: the sample buffer is written by the reads, reused by the
    // filter loop and the emit block.
    let cache = CacheConfig::new(16, 1, 16, 6.0)?;
    let reduced = &summary.reduced;
    let buffer: Vec<u64> = (0..4).map(|k| 0x4000 + k * 16).collect();
    let mut accesses = AccessMap::new();
    for original in [m_read1, m_read2, m_emit] {
        let Some(reduced_block) = reduced.reduced_block_of(original) else {
            continue;
        };
        for &addr in &buffer {
            accesses.push(reduced_block, addr);
        }
    }
    if let Some(loop_block) = reduced.reduced_block_of(m_header) {
        for &addr in &buffer {
            accesses.push(loop_block, addr);
        }
    }

    let analysis = analyze_task(&reduced.cfg, &BTreeMap::new(), &accesses, &cache)?;
    println!("\nfi(t) over the reduced graph:");
    for seg in analysis.curve.segments() {
        println!(
            "  [{:>6.1}, {:>6.1})  ->  {:>5.1}",
            seg.start, seg.end, seg.value
        );
    }

    println!("\ncumulative delay bounds:");
    println!("{:>6} {:>12} {:>12}", "Q", "Algorithm 1", "Eq. 4");
    for q in [30.0, 45.0, 60.0, 90.0] {
        let alg1 = algorithm1(&analysis.curve, q)?;
        let eq4 = eq4_bound_for_curve(&analysis.curve, q)?;
        println!(
            "{:>6.0} {:>12} {:>12}",
            q,
            alg1.total_delay()
                .map_or_else(|| "divergent".into(), |d| format!("{d:.1}")),
            eq4.total_delay()
                .map_or_else(|| "divergent".into(), |d| format!("{d:.1}")),
        );
    }
    Ok(())
}
