//! Design-space exploration: delay tolerance, priority assignment, and
//! runtime budget monitoring.
//!
//! Three workflows a system integrator runs on top of the paper's analysis:
//!
//! 1. **Delay tolerance** — how much larger could every task's CRPD grow
//!    (e.g. after shrinking the cache) before the set becomes
//!    unschedulable? Bisected under both Eq. 4 and Algorithm 1 inflation.
//! 2. **Priority assignment** — when the given order fails, Audsley's
//!    algorithm searches for one that works under floating-NPR blocking.
//! 3. **Remaining budget** — during execution, once a job is known to have
//!    reached progress `p`, `algorithm1_from` bounds the delay still ahead;
//!    the remaining worst-case budget is `(C − p) +` that bound.
//!
//! Run with: `cargo run --example design_space`

use fnpr::core::algorithm1_from;
use fnpr::sched::{
    audsley_floating_npr, delay_tolerance, rta_floating_npr, DelayMethod, Task, TaskSet,
};
use fnpr::DelayCurve;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Delay tolerance -------------------------------------------------
    let curve =
        |peak: f64, c: f64| DelayCurve::from_breakpoints([(0.0, peak), (c * 0.4, peak * 0.25)], c);
    let tasks = TaskSet::new(vec![
        Task::new(2.0, 12.0)?
            .with_q(1.0)?
            .with_delay_curve(curve(0.3, 2.0)?),
        Task::new(5.0, 30.0)?
            .with_q(1.5)?
            .with_delay_curve(curve(0.5, 5.0)?),
        Task::new(8.0, 60.0)?
            .with_q(2.0)?
            .with_delay_curve(curve(0.8, 8.0)?),
    ])?;
    println!("delay tolerance (max CRPD scale before rejection):");
    for method in [DelayMethod::Eq4, DelayMethod::Algorithm1] {
        let t = delay_tolerance(&tasks, method, 16.0, 0.01)?;
        println!("  {method:?}: {:.2}x", t.max_scale);
    }

    // --- 2. Priority assignment ---------------------------------------------
    let awkward = TaskSet::new(vec![
        Task::new(5.0, 20.0)?.with_q(1.0)?,
        Task::new(1.0, 4.0)?.with_deadline(2.0)?.with_q(0.2)?,
    ])?;
    let given_order = rta_floating_npr(&awkward)?.schedulable();
    let assignment = audsley_floating_npr(&awkward)?;
    println!("\npriority assignment:");
    println!("  given order schedulable: {given_order}");
    match assignment.order() {
        Some(order) => println!("  Audsley order (original indices): {order:?}"),
        None => println!("  no fixed-priority order works"),
    }

    // --- 3. Remaining budget at runtime -------------------------------------
    let fi = DelayCurve::from_breakpoints([(0.0, 2.0), (40.0, 0.5)], 100.0)?;
    let q = 10.0;
    println!("\nremaining worst-case budget of a job (C = 100, Q = {q}):");
    println!(
        "{:>10} {:>16} {:>18}",
        "progress", "remaining delay", "remaining budget"
    );
    for progress in [0.0, 20.0, 40.0, 60.0, 80.0, 100.0] {
        let remaining = algorithm1_from(&fi, q, progress)?
            .expect_converged()
            .total_delay;
        println!(
            "{:>10.0} {:>16.2} {:>18.2}",
            progress,
            remaining,
            (100.0 - progress) + remaining
        );
    }
    Ok(())
}
