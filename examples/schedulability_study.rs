//! Schedulability study: how many random task sets does each delay-aware
//! test accept?
//!
//! Random UUniFast task sets are equipped with their maximum admissible
//! floating-NPR lengths (Yao et al. bounds) and random unimodal delay
//! curves, then tested under fixed-priority RTA with WCETs inflated by:
//! nothing (optimistic), the Eq. 4 state of the art, and the paper's
//! Algorithm 1. Algorithm 1 dominates Eq. 4, so its acceptance ratio sits
//! between the other two — the gap is the value of progression awareness.
//!
//! Run with: `cargo run --example schedulability_study`

use fnpr::sched::{fp_schedulable_with_delay, DelayMethod};
use fnpr::synth::{random_taskset, with_npr_and_curves, Policy, TaskSetParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2012);
    let sets_per_point = 80; // the fnpr-bench `acceptance_ratio` binary runs the full study
    println!(
        "{:>6} {:>10} {:>10} {:>10}   ({} sets per utilisation)",
        "U", "no-delay", "Eq.4", "Alg.1", sets_per_point
    );
    for u10 in 3..=9 {
        let utilization = u10 as f64 / 10.0;
        let params = TaskSetParams {
            n: 5,
            utilization,
            period_range: (10.0, 1000.0),
            deadline_factor: (1.0, 1.0),
        };
        let mut accepted = [0usize; 3];
        let mut generated = 0usize;
        while generated < sets_per_point {
            let base = random_taskset(&mut rng, &params)?;
            let Some(tasks) =
                with_npr_and_curves(&mut rng, &base, Policy::FixedPriority, 0.8, 0.6)?
            else {
                continue; // infeasible NPR bounds: resample
            };
            generated += 1;
            for (k, method) in [DelayMethod::None, DelayMethod::Eq4, DelayMethod::Algorithm1]
                .into_iter()
                .enumerate()
            {
                if fp_schedulable_with_delay(&tasks, method)? {
                    accepted[k] += 1;
                }
            }
        }
        let ratio = |k: usize| accepted[k] as f64 / sets_per_point as f64;
        println!(
            "{:>6.2} {:>10.3} {:>10.3} {:>10.3}",
            utilization,
            ratio(0),
            ratio(1),
            ratio(2)
        );
        // Dominance must hold point by point.
        assert!(accepted[2] >= accepted[1], "Alg.1 must accept >= Eq.4");
        assert!(accepted[0] >= accepted[2], "no-delay accepts >= Alg.1");
    }
    Ok(())
}
