//! Simulation validation of Theorem 1 and the Figure 2 phenomenon.
//!
//! For each Figure 4 benchmark function we (a) drive the *exact adversary*
//! through the discrete-event simulator and check the realised cumulative
//! delay matches the analytical worst case, and (b) bombard the victim with
//! random sporadic interference and confirm no run ever exceeds the
//! Algorithm 1 bound. The naive point-selection bound is shown alongside:
//! the adversary beats it, demonstrating its unsoundness constructively.
//!
//! Run with: `cargo run --example simulation_validation`

use fnpr::sim::{check_against_algorithm1, simulate, Scenario, SimConfig};
use fnpr::synth::figure4_all;
use fnpr::{algorithm1, exact_worst_case, naive_bound};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let q = 40.0;
    let mut rng = StdRng::seed_from_u64(7);
    println!("Q = {q}\n");
    println!(
        "{:<18} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "curve", "naive", "adversary", "Alg.1", "rand-max", "verdict"
    );
    for (name, curve) in figure4_all() {
        let naive = naive_bound(&curve, q)?.total_delay;
        let exact = exact_worst_case(&curve, q)?.expect("q > max fi");
        let alg1 = algorithm1(&curve, q)?.expect_converged().total_delay;

        // (a) Realise the exact worst case in simulation.
        let points: Vec<f64> = exact.preemptions.iter().map(|&(p, _)| p).collect();
        let simulated = if points.is_empty() {
            0.0
        } else {
            let plan = Scenario::adversary(curve.domain_end(), q, &curve, &points, 0.5, 1e-7);
            let result = simulate(&plan.scenario, &SimConfig::floating_npr_fp(1e9));
            let victim = result.of_task(1).next().expect("victim ran");
            assert!(
                (victim.cumulative_delay - plan.expected_delay).abs() < 1e-6,
                "{name}: simulated {} != planned {}",
                victim.cumulative_delay,
                plan.expected_delay
            );
            victim.cumulative_delay
        };

        // (b) Random interference sweeps.
        let mut random_max: f64 = 0.0;
        for _ in 0..20 {
            let scenario = Scenario::random_interference(
                curve.domain_end(),
                q,
                &curve,
                1.0,
                5.0,
                120.0,
                curve.domain_end() * 3.0,
                &mut rng,
            );
            let result = simulate(&scenario, &SimConfig::floating_npr_fp(1e9));
            let check = check_against_algorithm1(&result, 1, &curve, q)?;
            assert!(check.holds, "{name}: bound violated by random run");
            random_max = random_max.max(check.observed_max);
        }

        let verdict = if simulated > naive + 1e-9 {
            "naive UNSOUND"
        } else {
            "ok"
        };
        println!(
            "{:<18} {:>8.1} {:>10.1} {:>10.1} {:>10.1} {:>12}",
            name, naive, simulated, alg1, random_max, verdict
        );
        assert!(simulated <= alg1 + 1e-6, "{name}: Theorem 1 violated");
    }
    println!("\nall runs within the Algorithm 1 bound (Theorem 1 holds empirically)");
    Ok(())
}
