//! Quickstart: bound the cumulative preemption delay of one task.
//!
//! A task of WCET 100 loads a large working set during its first 40 time
//! units (preemption there costs up to 8), then computes on a small residue
//! (preemption costs 1). Under floating non-preemptive regions of length 25
//! we compare the paper's Algorithm 1 against the Eq. 4 state of the art
//! and the (unsound) naive point selection.
//!
//! Run with: `cargo run --example quickstart`

use fnpr::{algorithm1_trace, eq4_bound_for_curve, exact_worst_case, naive_bound, DelayCurve};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fi = DelayCurve::from_breakpoints([(0.0, 8.0), (40.0, 1.0)], 100.0)?;
    let q = 25.0;

    println!("task: C = {}, Q = {}", fi.domain_end(), q);
    println!("fi:   8 while progress < 40, then 1\n");

    let (outcome, windows) = algorithm1_trace(&fi, q)?;
    let alg1 = outcome.expect_converged();
    println!("Algorithm 1 windows:");
    println!(
        "{:>3} {:>10} {:>10} {:>10} {:>8} {:>10}",
        "k", "prog", "p_cross", "p_max", "delay", "next"
    );
    for w in &windows {
        println!(
            "{:>3} {:>10.2} {:>10.2} {:>10.2} {:>8.2} {:>10.2}",
            w.index, w.progress, w.p_cross, w.p_max, w.delay, w.next_progress
        );
    }
    println!();

    let eq4 = eq4_bound_for_curve(&fi, q)?.expect_converged();
    let naive = naive_bound(&fi, q)?;
    let exact = exact_worst_case(&fi, q)?.expect("q > max fi");

    println!("cumulative preemption delay bounds:");
    println!(
        "  naive point selection (UNSOUND): {:>8.2}",
        naive.total_delay
    );
    println!(
        "  exact worst case (adversary):    {:>8.2}",
        exact.total_delay
    );
    println!(
        "  Algorithm 1 (paper, sound):      {:>8.2}",
        alg1.total_delay
    );
    println!(
        "  Eq. 4 state of the art (sound):  {:>8.2}",
        eq4.total_delay
    );
    println!();
    println!(
        "inflated WCET C' (Eq. 5): {:.2} (Algorithm 1) vs {:.2} (Eq. 4)",
        alg1.inflated_wcet(),
        eq4.inflated_wcet()
    );

    assert!(naive.total_delay <= exact.total_delay + 1e-9);
    assert!(exact.total_delay <= alg1.total_delay + 1e-9);
    assert!(alg1.total_delay <= eq4.total_delay + 1e-9);
    Ok(())
}
