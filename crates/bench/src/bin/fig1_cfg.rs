//! **Figure 1** — the example CFG and its start-offset analysis.
//!
//! Prints the reconstructed graph (left half: per-block execution
//! intervals; right half: computed earliest/latest start offsets) and
//! asserts every computed offset equals the published value. Also emits the
//! annotated DOT rendering on request.
//!
//! Usage: `cargo run -p fnpr-bench --bin fig1_cfg [--dot]`

use fnpr_cfg::{dot, fixtures, GraphTiming, StartOffsets};

fn main() {
    let obs = fnpr_bench::ObsSession::from_env("fig1_cfg");
    let cfg = fixtures::figure1_cfg();
    let offsets = StartOffsets::analyze(&cfg).expect("Figure 1 graph is acyclic");

    println!("block,emin,emax,smin_computed,smax_computed,smin_published,smax_published,match");
    let mut mismatches = 0usize;
    for (block, smin, smax) in fixtures::figure1_expected_offsets() {
        let exec = cfg.block(block).exec;
        let (c_min, c_max) = (offsets.earliest_start(block), offsets.latest_start(block));
        let ok = c_min == smin && c_max == smax;
        if !ok {
            mismatches += 1;
        }
        println!(
            "{},{},{},{},{},{},{},{}",
            block, exec.min, exec.max, c_min, c_max, smin, smax, ok
        );
    }
    let timing = GraphTiming::analyze(&cfg).expect("acyclic");
    eprintln!("task BCET = {}, WCET = {}", timing.bcet, timing.wcet);

    if std::env::args().any(|a| a == "--dot") {
        eprintln!("{}", dot::to_dot(&cfg, Some(&offsets)));
    }

    if mismatches > 0 {
        eprintln!("{mismatches} offset(s) deviate from the published Figure 1(b)");
        obs.flush();
        std::process::exit(1);
    }
    eprintln!("all 11 start offsets match the published Figure 1(b)");
    obs.flush();
}
