//! **Figure 3** — anatomy of one Algorithm 1 iteration.
//!
//! Reproduces the sketch: from the window start `prog`, the anti-diagonal
//! `D(p) = prog + Q − p` is intersected with `fi` at `p∩`; the window's
//! charge is `delaymax = max fi over [prog, p∩]` attained at `pmax`; the
//! next window starts at `prog + Q − delaymax`. Prints every window of a
//! demonstration curve plus an ASCII rendering of the largest window.
//!
//! Usage: `cargo run -p fnpr-bench --bin fig3_iteration`

use fnpr_core::{algorithm1_trace, DelayCurve};

fn main() {
    let obs = fnpr_bench::ObsSession::from_env("fig3_iteration");
    // A two-phase curve like the paper's sketch: rising cost, then decay.
    let curve =
        DelayCurve::from_breakpoints([(0.0, 2.0), (30.0, 7.0), (55.0, 3.0), (90.0, 1.0)], 130.0)
            .expect("static curve");
    let q = 20.0;
    let (outcome, windows) = algorithm1_trace(&curve, q).expect("valid parameters");
    let bound = outcome.expect_converged();

    println!("k,prog,window_end,p_cross,p_max,delay,next_prog");
    for w in &windows {
        println!(
            "{},{},{},{},{},{},{}",
            w.index, w.progress, w.window_end, w.p_cross, w.p_max, w.delay, w.next_progress
        );
    }
    eprintln!(
        "total_delay = {}, windows = {}, inflated WCET = {}",
        bound.total_delay,
        bound.windows,
        bound.inflated_wcet()
    );

    // ASCII sketch of the window with the largest charge.
    let w = windows
        .iter()
        .max_by(|a, b| a.delay.total_cmp(&b.delay))
        .expect("at least one window");
    eprintln!("\nFigure 3 quantities for window k = {}:", w.index);
    eprintln!("  prog      = {:>7.2}  (window start)", w.progress);
    eprintln!("  prog + Q  = {:>7.2}  (window end)", w.window_end);
    eprintln!(
        "  p_cross   = {:>7.2}  (fi meets D(p) = prog + Q - p)",
        w.p_cross
    );
    eprintln!(
        "  p_max     = {:>7.2}  (arg max fi on [prog, p_cross])",
        w.p_max
    );
    eprintln!("  delay_max = {:>7.2}  (charged to this window)", w.delay);
    eprintln!(
        "  next prog = {:>7.2}  (guaranteed progress Q - delay_max = {:.2})",
        w.next_progress,
        q - w.delay
    );
    let scale = |v: f64| ((v / curve.max_value()) * 30.0).round() as usize;
    eprintln!("\n  fi over the window (30-column bars):");
    let steps = 10usize;
    for k in 0..=steps {
        let p = w.progress + (w.p_cross - w.progress) * (k as f64) / (steps as f64);
        let v = curve.value_at(p);
        eprintln!("  p={:>7.2} |{} {v:.2}", p, "#".repeat(scale(v)));
    }
    obs.flush();
}
