//! **Figure 5** — the paper's headline result.
//!
//! Cumulative preemption delay during one task execution as a function of
//! the region length `Q`, for the three Figure 4 benchmark functions under
//! Algorithm 1, against the single state-of-the-art curve (Eq. 4 — identical
//! for all three functions because it only sees `C`, `Q` and `max fi`).
//!
//! CSV on stdout: `q,state_of_the_art,<one column per curve>`. Shape checks
//! (the claims the paper makes about this figure) print to stderr and drive
//! the exit code.
//!
//! Usage: `cargo run -p fnpr-bench --bin fig5_results [--with-flat]`

use fnpr_bench::{ascii_log_chart, csv_value, figure5_q_grid};
use fnpr_core::{algorithm1, eq4_bound, DelayCurve};
use fnpr_synth::{figure4_all, flat_adversarial, FIGURE4_MAX, FIGURE4_WCET};

fn main() {
    let obs = fnpr_bench::ObsSession::from_env("fig5_results");
    let with_flat = std::env::args().any(|a| a == "--with-flat");
    let mut curves: Vec<(String, DelayCurve)> = figure4_all()
        .into_iter()
        .map(|(n, c)| (n.to_owned(), c))
        .collect();
    if with_flat {
        curves.push(("flat max (ablation)".to_owned(), flat_adversarial()));
    }
    let grid = figure5_q_grid();

    // Header.
    let mut header = String::from("q,state_of_the_art");
    for (name, _) in &curves {
        header.push(',');
        header.push_str(&name.replace(' ', "_"));
    }
    println!("{header}");

    let mut rows: Vec<(f64, Option<f64>, Vec<Option<f64>>)> = Vec::new();
    for &q in &grid {
        let sota = eq4_bound(FIGURE4_WCET, q, FIGURE4_MAX)
            .expect("valid parameters")
            .total_delay();
        let per_curve: Vec<Option<f64>> = curves
            .iter()
            .map(|(_, curve)| {
                algorithm1(curve, q)
                    .expect("valid parameters")
                    .total_delay()
            })
            .collect();
        let mut row = format!("{q},{}", csv_value(sota));
        for v in &per_curve {
            row.push(',');
            row.push_str(&csv_value(*v));
        }
        println!("{row}");
        rows.push((q, sota, per_curve));
    }

    // ---- ASCII rendering of the figure (stderr) ---------------------------
    // Match the paper's y axis (10^1 .. 10^4): the near-divergent region at
    // the very left is clipped from the plot but kept in the CSV.
    const Y_CAP: f64 = 1.0e4;
    let sota_series: Vec<(f64, f64)> = rows
        .iter()
        .filter_map(|(q, sota, _)| sota.map(|s| (*q, s)))
        .filter(|&(_, y)| y <= Y_CAP)
        .collect();
    let curve_series: Vec<Vec<(f64, f64)>> = (0..curves.len())
        .map(|k| {
            rows.iter()
                .filter_map(|(q, _, per)| per[k].map(|v| (*q, v)))
                .filter(|&(_, y)| y <= Y_CAP)
                .collect()
        })
        .collect();
    let markers = ['1', '2', '3', 'f'];
    let mut chart_input: Vec<(char, &[(f64, f64)])> = vec![('S', &sota_series[..])];
    for (k, series) in curve_series.iter().enumerate() {
        chart_input.push((markers[k.min(markers.len() - 1)], &series[..]));
    }
    eprintln!(
        "Figure 5 (log y): S = state of the art, 1/2/3 = Gaussian 1/Gaussian 2/\
         2-local-maximum{}",
        if with_flat { ", f = flat ablation" } else { "" }
    );
    eprint!("{}", ascii_log_chart(&chart_input, 72, 18));

    // ---- Shape checks (stderr) -------------------------------------------
    let mut failures = 0usize;
    let mut check = |name: &str, ok: bool, detail: String| {
        eprintln!("[{}] {name}: {detail}", if ok { "ok" } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    // 1. Dominance: Algorithm 1 <= state of the art wherever both converge.
    let mut dominated = true;
    for (q, sota, per_curve) in &rows {
        if let Some(s) = sota {
            for v in per_curve.iter().flatten() {
                if *v > s + 1e-6 {
                    dominated = false;
                    eprintln!("  violation at q={q}: {v} > {s}");
                }
            }
        }
    }
    check(
        "dominance over the state of the art",
        dominated,
        "Algorithm 1 never exceeds Eq. 4".to_owned(),
    );

    // 2. Large gap at small Q (the paper: "specially for smaller values of
    //    Qi"); measured on the shaped (non-flat) curves only.
    let small = rows
        .iter()
        .find(|(q, sota, per)| *q >= 20.0 && sota.is_some() && per.iter().all(Option::is_some))
        .expect("a convergent small-Q row exists");
    let min_gap = small.2[..3.min(small.2.len())]
        .iter()
        .map(|v| small.1.unwrap() / v.unwrap().max(1e-9))
        .fold(f64::INFINITY, f64::min);
    check(
        "small-Q gap",
        min_gap > 2.0,
        format!(
            "at q={:.1} the SOTA/Alg.1 ratio is at least {:.1}x on every benchmark curve",
            small.0, min_gap
        ),
    );

    // 3. Convergence at large Q: with at most one preemption charged, both
    //    analyses land within a few max-delays of each other.
    let last = rows.last().expect("non-empty grid");
    let close_at_tail = last.2.iter().all(|v| match (last.1, v) {
        (Some(s), Some(v)) => (s - v).abs() <= 3.0 * FIGURE4_MAX,
        _ => false,
    });
    check(
        "large-Q convergence",
        close_at_tail,
        format!("at q={:.0} all bounds within 3 max-delays of SOTA", last.0),
    );

    // 4. Shape sensitivity: the narrow bell pays less than the wide bell
    //    at small Q (the whole point of progression awareness).
    let sensitive = rows
        .iter()
        .filter(|(q, _, per)| *q <= 200.0 && per.iter().all(Option::is_some))
        .all(|(_, _, per)| per[0].unwrap() <= per[1].unwrap() + 1e-6);
    check(
        "shape sensitivity",
        sensitive,
        "Gaussian 1 (narrow) never exceeds Gaussian 2 (wide) for q <= 200".to_owned(),
    );

    // 5. The paper's observed analysis artifacts: the Alg.1 series is not
    //    monotone in Q ("in some cases increasing the Qi results in bigger
    //    preemption delay"). A fine scan is needed — the artifacts live at
    //    sub-unit Q granularity.
    let mut fluctuations = 0usize;
    for (_, curve) in &curves {
        let mut last: Option<f64> = None;
        let mut q = 10.5;
        while q <= 400.0 {
            if let Some(v) = algorithm1(curve, q).expect("valid").total_delay() {
                if let Some(prev) = last {
                    if v > prev + 1e-9 {
                        fluctuations += 1;
                    }
                }
                last = Some(v);
            }
            q += 0.5;
        }
    }
    check(
        "non-monotone fluctuations exist",
        fluctuations > 0,
        format!("{fluctuations} upward steps across curves (fine scan, step 0.5)"),
    );

    if with_flat {
        // Ablation: on the flat curve Algorithm 1 degenerates to ~ SOTA.
        let flat_idx = curves.len() - 1;
        let degenerate = rows
            .iter()
            .filter(|(_, sota, per)| sota.is_some() && per[flat_idx].is_some())
            .all(|(_, sota, per)| per[flat_idx].unwrap() >= 0.5 * sota.unwrap() - FIGURE4_MAX);
        check(
            "flat-curve ablation",
            degenerate,
            "without shape information Algorithm 1 stays near the SOTA bound".to_owned(),
        );
    }

    if failures > 0 {
        eprintln!("{failures} shape check(s) FAILED");
        obs.flush();
        std::process::exit(1);
    }
    eprintln!("all Figure 5 shape checks passed");
    obs.flush();
}
