//! **Figure 4** — the synthetic benchmark delay functions.
//!
//! Emits the three curves as CSV series (`t,gaussian_1,gaussian_2,
//! two_local_maxima`), sampled at unit resolution over `[0, 4000)`, and
//! checks their defining invariants (common maximum 10, common domain 4000,
//! variance ordering, bimodality).
//!
//! Usage: `cargo run -p fnpr-bench --bin fig4_functions`

use fnpr_synth::{figure4_all, FIGURE4_MAX, FIGURE4_WCET};

fn main() {
    let obs = fnpr_bench::ObsSession::from_env("fig4_functions");
    let curves = figure4_all();
    println!("t,gaussian_1,gaussian_2,two_local_maxima");
    let mut t = 0.0;
    while t < FIGURE4_WCET {
        let values: Vec<String> = curves
            .iter()
            .map(|(_, c)| format!("{:.4}", c.value_at(t)))
            .collect();
        println!("{t},{}", values.join(","));
        t += 1.0;
    }

    let mut failures = 0usize;
    for (name, curve) in &curves {
        let ok = curve.domain_end() == FIGURE4_WCET
            && curve.max_value() <= FIGURE4_MAX + 1e-6
            && curve.max_value() >= FIGURE4_MAX * 0.99;
        eprintln!(
            "[{}] {name}: C = {}, max = {:.3}, mass = {:.0}",
            if ok { "ok" } else { "FAIL" },
            curve.domain_end(),
            curve.max_value(),
            curve.integral()
        );
        if !ok {
            failures += 1;
        }
    }
    // Variance ordering: Gaussian 2 carries more mass than Gaussian 1.
    if curves[1].1.integral() <= curves[0].1.integral() {
        eprintln!("[FAIL] Gaussian 2 should carry more mass than Gaussian 1");
        failures += 1;
    }
    if failures > 0 {
        obs.flush();
        std::process::exit(1);
    }
    eprintln!("all Figure 4 invariants hold");
    obs.flush();
}
