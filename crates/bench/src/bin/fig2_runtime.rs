//! **Figure 2** — why the naive point selection is unsound.
//!
//! The top half of the paper's figure picks the maximum-weight set of
//! `Q`-spaced points of `fi` (here: the naive bound). The bottom half shows
//! an actual run fitting *more* preemptions, because servicing each delay
//! consumes window time without consuming progress. We reproduce the run
//! constructively: the exact adversary's preemption schedule is executed on
//! the discrete-event simulator and its realised cumulative delay printed
//! against the naive and Algorithm 1 figures.
//!
//! Usage: `cargo run -p fnpr-bench --bin fig2_runtime`

use fnpr_core::{algorithm1, exact_worst_case, naive_bound, DelayCurve};
use fnpr_sim::{render_timeline, simulate, Scenario, SimConfig, TraceEvent};

fn main() {
    let obs = fnpr_bench::ObsSession::from_env("fig2_runtime");
    // The module-documentation example of the paper's Section V discussion:
    // a flat curve where spacing alone suggests few preemption points.
    let curve = DelayCurve::constant(3.0, 40.0).expect("static curve");
    let q = 8.0;

    let naive = naive_bound(&curve, q).expect("valid");
    let exact = exact_worst_case(&curve, q)
        .expect("valid")
        .expect("q > max fi");
    let alg1 = algorithm1(&curve, q).expect("valid").expect_converged();

    println!("selection,points,total_delay");
    println!("naive,{},{}", naive.points.len(), naive.total_delay);
    println!(
        "actual_run,{},{}",
        exact.preemption_count(),
        exact.total_delay
    );
    println!("algorithm1,{},{}", alg1.windows, alg1.total_delay);

    eprintln!(
        "naive picks {} points {} apart on the progress axis: {}",
        naive.points.len(),
        q,
        naive
            .points
            .iter()
            .map(|&(p, _)| format!("{p:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Drive the adversary's schedule through the simulator and show the
    // run-time preemption-delay development (the bottom plot of Figure 2).
    let points: Vec<f64> = exact.preemptions.iter().map(|&(p, _)| p).collect();
    let plan = Scenario::adversary(curve.domain_end(), q, &curve, &points, 0.5, 1e-7);
    let config = SimConfig::floating_npr_fp(1e9).with_trace();
    let result = simulate(&plan.scenario, &config);
    let victim = result.of_task(1).next().expect("victim ran");

    eprintln!("\nsimulated run (victim progress at each preemption, cumulative delay):");
    let mut cumulative = 0.0;
    for event in &result.trace {
        if let TraceEvent::Preempted {
            at,
            progress,
            delay,
            task: 1,
            ..
        } = event
        {
            cumulative += delay;
            eprintln!(
                "  t={at:>7.2}  progress={progress:>6.2}  +{delay:.2}  (total {cumulative:.2})"
            );
        }
    }
    eprintln!(
        "\nrun fits {} preemptions and pays {:.2}; the naive bound promised {:.2}",
        victim.preemptions, victim.cumulative_delay, naive.total_delay
    );
    let horizon = victim.completion.unwrap_or(100.0) * 1.05;
    eprintln!("\ntimeline (task 0 = spikes, task 1 = victim; ! = preemption):");
    eprint!("{}", render_timeline(&result, 2, horizon, 76));

    assert!(
        victim.cumulative_delay > naive.total_delay + 1e-9,
        "the run should exceed the naive bound"
    );
    assert!(
        victim.cumulative_delay <= alg1.total_delay + 1e-6,
        "Theorem 1 must hold"
    );
    eprintln!(
        "=> the naive selection is UNSOUND (run {:.2} > naive {:.2}); \
         Algorithm 1 ({:.2}) safely covers the run",
        victim.cumulative_delay, naive.total_delay, alg1.total_delay
    );
    obs.flush();
}
