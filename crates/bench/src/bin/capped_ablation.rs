//! **Extension C** — the arrival-capped Algorithm 1 (future work (ii)).
//!
//! Sweeps the preemption cap `N` for the Figure 4 benchmark functions at a
//! selection of region lengths: the capped bound grows monotonically in `N`
//! and saturates at the plain Algorithm 1 figure once `N` reaches the
//! window count. The gap between small-`N` and saturation quantifies the
//! value of knowing the higher-priority arrival rate.
//!
//! CSV on stdout: `curve,q,cap,capped,plain,windows`.
//!
//! Usage: `cargo run -p fnpr-bench --bin capped_ablation`

use fnpr_core::{algorithm1, algorithm1_capped};
use fnpr_synth::figure4_all;

fn main() {
    let obs = fnpr_bench::ObsSession::from_env("capped_ablation");
    println!("curve,q,cap,capped,plain,windows");
    let caps = [0usize, 1, 2, 5, 10, 20, 50, 100, usize::MAX];
    let mut failures = 0usize;
    for (name, curve) in figure4_all() {
        for q in [20.0, 50.0, 150.0, 500.0] {
            let plain = algorithm1(&curve, q).expect("valid").expect_converged();
            let mut last = -1.0f64;
            for &cap in &caps {
                let capped = algorithm1_capped(&curve, q, cap)
                    .expect("valid")
                    .expect("convergent");
                println!(
                    "{},{},{},{:.3},{:.3},{}",
                    name.replace(' ', "_"),
                    q,
                    if cap == usize::MAX {
                        "inf".to_owned()
                    } else {
                        cap.to_string()
                    },
                    capped.total_delay,
                    plain.total_delay,
                    plain.windows
                );
                if capped.total_delay + 1e-9 < last {
                    eprintln!("[FAIL] {name} q={q}: bound not monotone in cap");
                    failures += 1;
                }
                if capped.total_delay > plain.total_delay + 1e-9 {
                    eprintln!("[FAIL] {name} q={q}: capped exceeds plain");
                    failures += 1;
                }
                last = capped.total_delay;
            }
            // Saturation at the window count.
            let saturated = algorithm1_capped(&curve, q, plain.windows)
                .expect("valid")
                .expect("convergent");
            if (saturated.total_delay - plain.total_delay).abs() > 1e-9 {
                eprintln!("[FAIL] {name} q={q}: cap = windows must equal plain");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} capped-ablation check(s) failed");
        obs.flush();
        std::process::exit(1);
    }
    eprintln!("capped ablation: monotone in N, dominated by plain, saturates at the window count");
    obs.flush();
}
