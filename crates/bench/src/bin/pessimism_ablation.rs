//! **Extension E** — quantifying Algorithm 1's analysis artifacts.
//!
//! The paper notes its bound is pessimistic ("the analysis checks for the
//! preemption delay in the window of prog and tA, but conservatively
//! considers the actual preemption to occur at prog"). With the exact
//! adversary as ground truth, this experiment measures that pessimism —
//! `Algorithm 1 / exact worst case` — across curve fragmentation (number of
//! segments) and region length, and as a function of conservative
//! resampling (the precision/speed dial of `DelayCurve::resampled`).
//!
//! CSV on stdout: `segments,q_slack,ratio_alg1,ratio_resampled`.
//!
//! Usage: `cargo run -p fnpr-bench --bin pessimism_ablation [trials_per_cell]`

use fnpr_core::{algorithm1, exact_worst_case};
use fnpr_synth::random_step_curve;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let obs = fnpr_bench::ObsSession::from_env("pessimism_ablation");
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    println!("segments,q_slack,ratio_alg1,ratio_resampled");
    let mut worst: f64 = 1.0;
    let mut resample_never_tighter = true;
    for &segments in &[2usize, 6, 16, 40] {
        for &q_slack in &[1.0f64, 4.0, 16.0] {
            let mut sum_alg1 = 0.0;
            let mut sum_resampled = 0.0;
            let mut counted = 0usize;
            for trial in 0..trials {
                let mut rng =
                    StdRng::seed_from_u64((segments * 1000 + trial) as u64 + q_slack as u64);
                let curve = random_step_curve(&mut rng, 300.0, segments, 8.0).expect("valid curve");
                let q = curve.max_value() + q_slack;
                let exact = exact_worst_case(&curve, q)
                    .expect("valid")
                    .expect("finite")
                    .total_delay;
                if exact <= 1e-9 {
                    continue;
                }
                let alg1 = algorithm1(&curve, q)
                    .expect("valid")
                    .expect_converged()
                    .total_delay;
                let coarse = curve.resampled(300.0 / 8.0).expect("valid step");
                let resampled = algorithm1(&coarse, q)
                    .expect("valid")
                    .total_delay()
                    .unwrap_or(f64::INFINITY);
                sum_alg1 += alg1 / exact;
                if resampled.is_finite() {
                    sum_resampled += resampled / exact;
                    if resampled < alg1 - 1e-9 {
                        resample_never_tighter = false;
                    }
                } else {
                    sum_resampled += f64::NAN;
                }
                worst = worst.max(alg1 / exact);
                counted += 1;
            }
            if counted > 0 {
                println!(
                    "{},{},{:.4},{:.4}",
                    segments,
                    q_slack,
                    sum_alg1 / counted as f64,
                    sum_resampled / counted as f64,
                );
            }
        }
    }
    eprintln!("worst Algorithm 1 / exact ratio observed: {worst:.3}x");
    // Both bounds are sound; the coarse one is *usually* looser, but
    // Algorithm 1 is not monotone in the curve (window alignment artifacts,
    // the same effect behind the paper's Q-fluctuations), so an occasional
    // inversion would not be a bug — report what happened.
    if resample_never_tighter {
        eprintln!("resampled (coarse) bounds dominated the fine bounds on every trial");
    } else {
        eprintln!(
            "note: window-alignment artifacts made the coarse bound tighter on \
             some trial (both bounds remain sound)"
        );
    }
    obs.flush();
}
