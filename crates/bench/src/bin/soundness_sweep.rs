//! **Extension B** — Theorem 1 and the Figure 2 phenomenon at scale.
//!
//! Over many random step curves and region lengths:
//!
//! * the exact adversary never exceeds Algorithm 1 (Theorem 1);
//! * the naive bound is frequently *below* the adversary (it is unsound);
//! * random simulated interference stays below the bound;
//! * tightness statistics: how close Algorithm 1 is to the exact worst
//!   case (ratio 1.0 = no pessimism).
//!
//! Since PR 1 this binary drives the sweep through the `fnpr-campaign`
//! engine (sharded across all cores, deterministic per seed, `(curve, Q)`
//! analyses memoized) instead of a single-threaded loop.
//!
//! CSV on stdout: `seed,q,naive,exact,algorithm1,eq4,sim_max`.
//!
//! Usage: `cargo run -p fnpr-bench --bin soundness_sweep [trials]`

use fnpr_campaign::spec::SoundnessSpec;
use fnpr_campaign::{run_campaign, CampaignSpec, WorkloadKind};

fn main() {
    let obs = fnpr_bench::ObsSession::from_env("soundness_sweep");
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let spec = CampaignSpec {
        name: Some("soundness_sweep".into()),
        seed: Some(2012),
        workload: Some(WorkloadKind::Soundness),
        soundness: Some(SoundnessSpec {
            trials: Some(trials),
            simulate: Some(true),
            ..SoundnessSpec::default()
        }),
        ..CampaignSpec::default()
    };
    let campaign = spec.validate().expect("built-in spec is valid");
    let outcome = run_campaign(&campaign, None).expect("campaign runs");
    let report = &outcome.report;

    println!("seed,q,naive,exact,algorithm1,eq4,sim_max");
    for shard in &report.soundness {
        for row in &shard.rows {
            println!(
                "{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
                row.trial,
                row.q,
                row.naive,
                row.exact,
                row.algorithm1,
                row.eq4,
                row.sim_max.unwrap_or(f64::NAN),
            );
        }
    }

    let s = &report.summary;
    assert_eq!(
        s.dominance_violations, 0,
        "Theorem 1 / Eq. 4 dominance violated"
    );
    assert_eq!(s.sim_violations, 0, "simulation exceeded the bound");
    eprintln!(
        "trials: {trials}; naive bound below the real worst case in {} \
         ({:.0}%) — unsound as Figure 2 warns",
        s.naive_unsound,
        100.0 * s.naive_unsound as f64 / trials as f64
    );
    eprintln!(
        "Algorithm 1 pessimism vs exact adversary: mean {:.3}x, worst {:.3}x \
         ({} threads, bounds memo {} hits / {} misses)",
        s.pessimism_mean, s.pessimism_max, outcome.threads, outcome.memo.hits, outcome.memo.misses
    );
    if s.naive_unsound == 0 {
        eprintln!("WARN: no naive violation observed — enlarge the sweep");
    }
    obs.flush();
}
