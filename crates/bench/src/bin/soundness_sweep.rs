//! **Extension B** — Theorem 1 and the Figure 2 phenomenon at scale.
//!
//! Over many random step curves and region lengths:
//!
//! * the exact adversary never exceeds Algorithm 1 (Theorem 1);
//! * the naive bound is frequently *below* the adversary (it is unsound);
//! * random simulated interference stays below the bound;
//! * tightness statistics: how close Algorithm 1 is to the exact worst
//!   case (ratio 1.0 = no pessimism).
//!
//! CSV on stdout: `seed,q,naive,exact,algorithm1,eq4,sim_max`.
//!
//! Usage: `cargo run -p fnpr-bench --bin soundness_sweep [trials]`

use fnpr_core::{algorithm1, eq4_bound_for_curve, exact_worst_case, naive_bound};
use fnpr_sim::{check_against_algorithm1, simulate, Scenario, SimConfig};
use fnpr_synth::random_step_curve;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!("seed,q,naive,exact,algorithm1,eq4,sim_max");
    let mut naive_unsound = 0usize;
    let mut ratio_sum = 0.0;
    let mut ratio_max: f64 = 0.0;
    let mut checked = 0usize;
    for seed in 0..trials as u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = rng.gen_range(50.0..400.0);
        let segments = rng.gen_range(2..12);
        let max_value = rng.gen_range(1.0..8.0);
        let curve = random_step_curve(&mut rng, c, segments, max_value).expect("valid");
        let q = curve.max_value() + rng.gen_range(0.5..10.0);

        let naive = naive_bound(&curve, q).expect("valid").total_delay;
        let exact = exact_worst_case(&curve, q)
            .expect("valid")
            .expect("q > max")
            .total_delay;
        let alg1 = algorithm1(&curve, q)
            .expect("valid")
            .expect_converged()
            .total_delay;
        let eq4 = eq4_bound_for_curve(&curve, q)
            .expect("valid")
            .expect_converged()
            .total_delay;

        // Random interference through the simulator.
        let scenario = Scenario::random_interference(
            c,
            q,
            &curve,
            rng.gen_range(0.1..2.0),
            1.0,
            q * 2.0,
            c * 4.0,
            &mut rng,
        );
        let result = simulate(&scenario, &SimConfig::floating_npr_fp(1e9));
        let check = check_against_algorithm1(&result, 1, &curve, q).expect("valid");
        assert!(check.holds, "seed {seed}: simulation exceeded the bound");

        println!(
            "{seed},{q:.3},{naive:.3},{exact:.3},{alg1:.3},{eq4:.3},{:.3}",
            check.observed_max
        );
        assert!(exact <= alg1 + 1e-6, "seed {seed}: Theorem 1 violated");
        assert!(alg1 <= eq4 + 1e-6, "seed {seed}: Eq. 4 dominance violated");
        if naive < exact - 1e-9 {
            naive_unsound += 1;
        }
        if exact > 1e-9 {
            let r = alg1 / exact;
            ratio_sum += r;
            ratio_max = ratio_max.max(r);
            checked += 1;
        }
    }
    eprintln!(
        "trials: {trials}; naive bound below the real worst case in {naive_unsound} \
         ({:.0}%) — unsound as Figure 2 warns",
        100.0 * naive_unsound as f64 / trials as f64
    );
    if checked > 0 {
        eprintln!(
            "Algorithm 1 pessimism vs exact adversary: mean {:.3}x, worst {:.3}x",
            ratio_sum / checked as f64,
            ratio_max
        );
    }
    if naive_unsound == 0 {
        eprintln!("WARN: no naive violation observed — enlarge the sweep");
    }
}
