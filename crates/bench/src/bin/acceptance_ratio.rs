//! **Extension A** — schedulability acceptance ratios.
//!
//! The figure the paper motivates but does not include: how many random
//! task sets pass the floating-NPR schedulability test when WCETs are
//! inflated by (a) nothing, (b) the Eq. 4 state of the art, (c) Algorithm 1
//! — under both fixed-priority RTA and the EDF demand test.
//!
//! CSV on stdout: `policy,utilization,no_delay,eq4,algorithm1`.
//!
//! Usage: `cargo run -p fnpr-bench --bin acceptance_ratio [sets_per_point]`

use fnpr_sched::{edf_schedulable_with_delay, fp_schedulable_with_delay, DelayMethod};
use fnpr_synth::{random_taskset, with_npr_and_curves, Policy, TaskSetParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let sets_per_point: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let mut rng = StdRng::seed_from_u64(2012);
    println!("policy,utilization,no_delay,eq4,algorithm1,algorithm1_capped");
    let mut dominance_ok = true;
    for policy in [Policy::FixedPriority, Policy::Edf] {
        for u10 in 3..=9 {
            let utilization = f64::from(u10) / 10.0;
            let params = TaskSetParams {
                n: 5,
                utilization,
                period_range: (10.0, 1000.0),
                deadline_factor: (1.0, 1.0),
            };
            let mut accepted = [0usize; 4];
            let mut generated = 0usize;
            let mut attempts = 0usize;
            while generated < sets_per_point && attempts < sets_per_point * 50 {
                attempts += 1;
                let Ok(base) = random_taskset(&mut rng, &params) else {
                    continue;
                };
                let Ok(Some(tasks)) =
                    with_npr_and_curves(&mut rng, &base, policy, 0.8, 0.6)
                else {
                    continue;
                };
                generated += 1;
                for (k, method) in [
                    DelayMethod::None,
                    DelayMethod::Eq4,
                    DelayMethod::Algorithm1,
                    DelayMethod::Algorithm1Capped,
                ]
                .into_iter()
                .enumerate()
                {
                    let ok = match policy {
                        Policy::FixedPriority => {
                            fp_schedulable_with_delay(&tasks, method).unwrap_or(false)
                        }
                        // edf_schedulable_with_delay derives the EDF
                        // (all-other-tasks) preemption caps itself.
                        Policy::Edf => {
                            edf_schedulable_with_delay(&tasks, method).unwrap_or(false)
                        }
                    };
                    if ok {
                        accepted[k] += 1;
                    }
                }
            }
            if generated == 0 {
                continue;
            }
            let ratio = |k: usize| accepted[k] as f64 / generated as f64;
            println!(
                "{},{:.2},{:.4},{:.4},{:.4},{:.4}",
                match policy {
                    Policy::FixedPriority => "fp",
                    Policy::Edf => "edf",
                },
                utilization,
                ratio(0),
                ratio(1),
                ratio(2),
                ratio(3)
            );
            if accepted[2] < accepted[1] || accepted[0] < accepted[2] {
                dominance_ok = false;
            }
            if accepted[3] < accepted[2] {
                dominance_ok = false;
            }
        }
    }
    if !dominance_ok {
        eprintln!("FAIL: acceptance dominance (no-delay >= Alg.1 >= Eq.4) violated");
        std::process::exit(1);
    }
    eprintln!("acceptance dominance holds at every utilisation point");
}
