//! **Extension A** — schedulability acceptance ratios.
//!
//! The figure the paper motivates but does not include: how many random
//! task sets pass the floating-NPR schedulability test when WCETs are
//! inflated by (a) nothing, (b) the Eq. 4 state of the art, (c) Algorithm 1
//! — under both fixed-priority RTA and the EDF demand test.
//!
//! Since PR 1 this binary is a thin veneer over the `fnpr-campaign`
//! engine: it builds an acceptance spec, runs it sharded across all cores
//! (bit-identical aggregates at any thread count), and renders the legacy
//! CSV columns. Arbitrary grids, thread counts and JSON aggregates live in
//! `fnpr-campaign run`.
//!
//! CSV on stdout: `policy,utilization,no_delay,eq4,algorithm1,algorithm1_capped`.
//!
//! Usage: `cargo run -p fnpr-bench --bin acceptance_ratio [sets_per_point]`

use fnpr_campaign::spec::{AcceptanceSpec, GridSpec};
use fnpr_campaign::{run_campaign, CampaignSpec, WorkloadKind};

fn main() {
    let obs = fnpr_bench::ObsSession::from_env("acceptance_ratio");
    let sets_per_point: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let spec = CampaignSpec {
        name: Some("acceptance_ratio".into()),
        seed: Some(2012),
        workload: Some(WorkloadKind::Acceptance),
        acceptance: Some(AcceptanceSpec {
            sets_per_point: Some(sets_per_point),
            utilizations: Some(GridSpec {
                start: Some(0.3),
                stop: Some(0.9),
                step: Some(0.1),
                values: None,
            }),
            ..AcceptanceSpec::default()
        }),
        ..CampaignSpec::default()
    };
    let campaign = spec.validate().expect("built-in spec is valid");
    let outcome = run_campaign(&campaign, None).expect("campaign runs");
    let report = &outcome.report;

    // Legacy column layout (ratios only, 2-decimal utilization).
    println!("policy,utilization,no_delay,eq4,algorithm1,algorithm1_capped");
    for point in &report.acceptance {
        if point.generated == 0 {
            continue;
        }
        print!("{},{:.2}", point.policy, point.utilization);
        for ratio in &point.ratios {
            print!(",{ratio:.4}");
        }
        println!();
    }

    if report.summary.dominance_violations > 0 {
        eprintln!("FAIL: acceptance dominance (no-delay >= Alg.1 >= Eq.4) violated");
        obs.flush();
        std::process::exit(1);
    }
    eprintln!(
        "acceptance dominance holds at every utilisation point \
         ({} sets on {} threads, taskset memo {} hits / {} misses)",
        report.summary.instances, outcome.threads, outcome.memo.hits, outcome.memo.misses
    );
    obs.flush();
}
