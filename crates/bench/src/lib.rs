//! # fnpr-bench — figure regeneration and performance benchmarks
//!
//! One binary per figure of the paper (plus the extension experiments), and
//! Criterion benchmarks for the cost of the analyses themselves. Binaries
//! print CSV to stdout (pipe into a plotting tool of choice) with a human
//! summary on stderr, and exit non-zero if a shape claim of the paper fails
//! to reproduce.
//!
//! | binary | paper artefact |
//! |--------|----------------|
//! | `fig1_cfg` | Figure 1 — CFG start offsets |
//! | `fig2_runtime` | Figure 2 — naive bound vs. an actual run |
//! | `fig3_iteration` | Figure 3 — one Algorithm 1 window |
//! | `fig4_functions` | Figure 4 — the synthetic benchmark functions |
//! | `fig5_results` | Figure 5 — cumulative delay vs. Q (the headline) |
//! | `acceptance_ratio` | extension — schedulability acceptance ratios |
//! | `soundness_sweep` | extension — Theorem 1 / Figure 2 at scale |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

use std::path::PathBuf;
use std::time::Instant;

/// Telemetry wiring for the figure/sweep binaries.
///
/// [`ObsSession::from_env`] arms `fnpr-obs` when the environment asks for
/// artifacts — `FNPR_METRICS=PATH` for a [`fnpr_obs::MetricsReport`] JSON
/// snapshot, `FNPR_TRACE_OUT=PATH` for a Chrome trace — and
/// [`ObsSession::flush`] writes them. Call `flush` at every exit of
/// `main` (including the `process::exit(1)` shape-check failure paths,
/// which skip destructors). With neither variable set, both calls are
/// no-ops and the binaries run exactly as before.
pub struct ObsSession {
    label: String,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    started: Instant,
}

impl ObsSession {
    /// Arms telemetry from `FNPR_METRICS` / `FNPR_TRACE_OUT`.
    #[must_use]
    pub fn from_env(label: &str) -> Self {
        Self::new(
            label,
            std::env::var_os("FNPR_METRICS").map(PathBuf::from),
            std::env::var_os("FNPR_TRACE_OUT").map(PathBuf::from),
        )
    }

    /// Arms telemetry for explicit targets (what `from_env` resolves to;
    /// also the testable entry point).
    #[must_use]
    pub fn new(label: &str, metrics: Option<PathBuf>, trace: Option<PathBuf>) -> Self {
        if metrics.is_some() || trace.is_some() {
            fnpr_obs::set_enabled(true);
        }
        if trace.is_some() {
            fnpr_obs::set_trace_collection(true);
        }
        Self {
            label: label.to_string(),
            metrics,
            trace,
            started: Instant::now(),
        }
    }

    /// Writes whichever artifacts were requested, reporting each on
    /// stderr. Write failures warn rather than abort: telemetry must
    /// never turn a successful figure run into a failing one.
    pub fn flush(&self) {
        if let Some(path) = &self.metrics {
            let report = fnpr_obs::MetricsReport::gather(
                &self.label,
                fnpr_obs::gauge("campaign.points.total").value(),
                fnpr_obs::counter("campaign.points.done").value(),
                self.started.elapsed().as_secs_f64(),
            );
            match std::fs::write(path, report.to_json()) {
                Ok(()) => eprintln!("wrote metrics snapshot to {}", path.display()),
                Err(e) => eprintln!(
                    "warning: could not write metrics to {}: {e}",
                    path.display()
                ),
            }
        }
        if let Some(path) = &self.trace {
            match fnpr_obs::write_chrome_trace(path) {
                Ok(()) => eprintln!(
                    "wrote Chrome trace to {} (open in Perfetto / chrome://tracing)",
                    path.display()
                ),
                Err(e) => eprintln!("warning: could not write trace to {}: {e}", path.display()),
            }
        }
    }
}

/// The Figure 5 sweep grid: `Q` values from just above the curve maximum to
/// half the task length (the paper's x-axis runs to 2000 with `C = 4000`).
#[must_use]
pub fn figure5_q_grid() -> Vec<f64> {
    let mut grid = Vec::new();
    // Fine resolution at small Q where the curves move fastest...
    let mut q = 10.5;
    while q < 100.0 {
        grid.push(q);
        q += 2.5;
    }
    // ...and coarser afterwards.
    while q <= 2000.0 {
        grid.push(q);
        q += 25.0;
    }
    grid
}

/// Formats an optional value for CSV output (`divergent` for `None`).
#[must_use]
pub fn csv_value(v: Option<f64>) -> String {
    v.map_or_else(|| "divergent".to_owned(), |x| format!("{x:.3}"))
}

/// Renders series as an ASCII chart with a logarithmic y axis (the paper's
/// Figure 5 style). Each series gets a single marker character; colliding
/// points keep the earlier series' marker.
///
/// # Panics
///
/// Panics if `width`/`height` is zero or no positive data point exists
/// (misuse in harness code).
#[must_use]
pub fn ascii_log_chart(series: &[(char, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width > 1 && height > 1, "bad chart size");
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .filter(|&(_, y)| y > 0.0)
        .collect();
    assert!(!points.is_empty(), "no positive data");
    let x_min = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let y_min = points
        .iter()
        .map(|p| p.1)
        .fold(f64::INFINITY, f64::min)
        .ln();
    let y_max = points
        .iter()
        .map(|p| p.1)
        .fold(f64::NEG_INFINITY, f64::max)
        .ln();
    let col = |x: f64| -> usize {
        if x_max == x_min {
            0
        } else {
            (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize
        }
    };
    let row = |y: f64| -> usize {
        if y_max == y_min {
            0
        } else {
            (((y.ln() - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize
        }
    };
    let mut grid = vec![vec![' '; width]; height];
    for &(marker, pts) in series {
        for &(x, y) in pts {
            if y > 0.0 {
                let (r, c) = (height - 1 - row(y), col(x));
                if grid[r][c] == ' ' {
                    grid[r][c] = marker;
                }
            }
        }
    }
    let mut out = String::new();
    for (r, line) in grid.iter().enumerate() {
        let edge = if r == 0 {
            format!("{:>9.0} ", y_max.exp())
        } else if r == height - 1 {
            format!("{:>9.0} ", y_min.exp())
        } else {
            " ".repeat(10)
        };
        out.push_str(&edge);
        out.push('|');
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>10} {:<.0}{:>width$.0}\n",
        "",
        x_min,
        x_max,
        width = width - 1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_session_writes_requested_artifacts() {
        let dir = std::env::temp_dir().join(format!("fnpr_bench_obs_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.json");
        let trace = dir.join("trace.json");
        let session = ObsSession::new(
            "obs-session-test",
            Some(metrics.clone()),
            Some(trace.clone()),
        );
        fnpr_obs::counter("bench.obs.session.test").incr();
        drop(fnpr_obs::span("bench.obs.session", "bench"));
        session.flush();
        let metrics_text = std::fs::read_to_string(&metrics).unwrap();
        assert!(metrics_text.contains("\"label\": \"obs-session-test\""));
        assert!(metrics_text.contains("\"bench.obs.session.test\": 1"));
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.contains("\"traceEvents\""));
        assert!(trace_text.contains("bench.obs.session"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_session_without_targets_writes_nothing() {
        // No paths: flush is a no-op and must not enable anything new or
        // touch the filesystem.
        ObsSession::new("idle", None, None).flush();
    }

    #[test]
    fn grid_is_increasing_and_spans_the_axis() {
        let grid = figure5_q_grid();
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!(*grid.first().unwrap() > 10.0);
        assert!(*grid.last().unwrap() <= 2000.0);
        assert!(grid.len() > 100);
    }

    #[test]
    fn csv_value_formats() {
        assert_eq!(csv_value(Some(1.5)), "1.500");
        assert_eq!(csv_value(None), "divergent");
    }

    #[test]
    fn chart_places_extremes() {
        let sota = [(10.0, 1000.0), (100.0, 100.0), (1000.0, 10.0)];
        let alg1 = [(10.0, 100.0), (100.0, 20.0), (1000.0, 10.0)];
        let rendered = ascii_log_chart(&[('S', &sota[..]), ('a', &alg1[..])], 40, 10);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 11);
        // Top row carries the y-max label and the SOTA's first point.
        assert!(lines[0].contains("1000"));
        assert!(lines[0].contains('S'));
        // Both series appear.
        assert!(rendered.contains('a'));
        // Log scale: SOTA's mid point (100) sits mid-chart, not near top.
        let mid_rows: String = lines[3..7].concat();
        assert!(mid_rows.contains('S'));
    }

    #[test]
    #[should_panic(expected = "no positive data")]
    fn chart_rejects_empty() {
        let empty: [(f64, f64); 0] = [];
        let _ = ascii_log_chart(&[('x', &empty[..])], 10, 5);
    }
}
