//! Criterion benchmarks for the core analyses on the Figure 4/5 workload:
//! the cost of regenerating one Figure 5 data point (per curve, per
//! method), plus the exact adversary and the naive bound. The paper claims
//! the method is "easy to implement with small overhead" — these benches
//! quantify the overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fnpr_core::{algorithm1, eq4_bound_for_curve, exact_worst_case, naive_bound};
use fnpr_synth::figure4_all;
use std::hint::black_box;

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1");
    for (name, curve) in figure4_all() {
        for q in [20.0, 100.0, 500.0] {
            group.bench_with_input(
                BenchmarkId::new(name.replace(' ', "_"), q as u64),
                &q,
                |b, &q| {
                    b.iter(|| algorithm1(black_box(&curve), black_box(q)).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_eq4(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq4_baseline");
    let (_, curve) = &figure4_all()[1];
    for q in [20.0, 100.0, 500.0] {
        group.bench_with_input(BenchmarkId::from_parameter(q as u64), &q, |b, &q| {
            b.iter(|| eq4_bound_for_curve(black_box(curve), black_box(q)).unwrap());
        });
    }
    group.finish();
}

fn bench_exact_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_worst_case");
    group.sample_size(20);
    let (_, curve) = &figure4_all()[1];
    for q in [50.0, 200.0] {
        group.bench_with_input(BenchmarkId::from_parameter(q as u64), &q, |b, &q| {
            b.iter(|| exact_worst_case(black_box(curve), black_box(q)).unwrap());
        });
    }
    group.finish();
}

fn bench_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_bound");
    group.sample_size(20);
    let (_, curve) = &figure4_all()[0];
    for q in [50.0, 200.0] {
        group.bench_with_input(BenchmarkId::from_parameter(q as u64), &q, |b, &q| {
            b.iter(|| naive_bound(black_box(curve), black_box(q)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_eq4,
    bench_exact_adversary,
    bench_naive
);
criterion_main!(benches);
