//! Criterion benchmarks for the substrates: start-offset analysis, loop
//! reduction and the useful-cache-block dataflow as the task's control-flow
//! graph grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fnpr_cache::{AccessMap, CacheConfig, CrpdAnalysis};
use fnpr_cfg::{reduce_loops, Occupancy, StartOffsets};
use fnpr_synth::{random_cfg, CfgGenParams, GeneratedCfg};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn generated(depth: usize, seed: u64) -> GeneratedCfg {
    let params = CfgGenParams {
        max_depth: depth,
        ..CfgGenParams::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    random_cfg(&mut rng, &params).expect("generation succeeds")
}

fn bench_offsets(c: &mut Criterion) {
    let mut group = c.benchmark_group("start_offsets");
    for depth in [2usize, 4, 6] {
        let g = generated(depth, 42);
        let reduced = reduce_loops(&g.cfg, &g.loop_bounds).expect("reducible");
        group.bench_with_input(
            BenchmarkId::from_parameter(reduced.cfg.len()),
            &reduced.cfg,
            |b, cfg| {
                b.iter(|| StartOffsets::analyze(black_box(cfg)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_loop_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("loop_reduction");
    for depth in [2usize, 4, 6] {
        let g = generated(depth, 7);
        group.bench_with_input(BenchmarkId::from_parameter(g.cfg.len()), &g, |b, g| {
            b.iter(|| reduce_loops(black_box(&g.cfg), black_box(&g.loop_bounds)).unwrap());
        });
    }
    group.finish();
}

fn bench_ucb_dataflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("ucb_crpd");
    group.sample_size(30);
    let cache = CacheConfig::lee_style();
    for depth in [2usize, 4, 6] {
        let g = generated(depth, 11);
        let accesses = AccessMap::from_code_layout(&g.layout, &cache);
        group.bench_with_input(
            BenchmarkId::from_parameter(g.cfg.len()),
            &(g, accesses),
            |b, (g, accesses)| {
                b.iter(|| {
                    CrpdAnalysis::analyze(black_box(&g.cfg), black_box(accesses), &cache).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_occupancy_windows(c: &mut Criterion) {
    let mut group = c.benchmark_group("occupancy");
    for depth in [3usize, 6] {
        let g = generated(depth, 3);
        let reduced = reduce_loops(&g.cfg, &g.loop_bounds).expect("reducible");
        group.bench_with_input(
            BenchmarkId::from_parameter(reduced.cfg.len()),
            &reduced.cfg,
            |b, cfg| {
                b.iter(|| Occupancy::analyze(black_box(cfg)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_offsets,
    bench_loop_reduction,
    bench_ucb_dataflow,
    bench_occupancy_windows
);
criterion_main!(benches);
