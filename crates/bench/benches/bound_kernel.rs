//! The `bound_kernel` criterion group: the fused `CurveCursor` kernel
//! against the retained per-call reference path, on the workloads the
//! campaign engines actually run — a many-segment synthetic curve and a
//! CFG-derived curve, near-divergent `Q` choices (many windows), a dense
//! `Q` grid, the lazy scale/cap view against eager materialization, the
//! heap-based `from_windows` sweep and the allocation-free Eq. 4 fast
//! path.
//!
//! Results persist to `BENCH_bound_kernel.json` at the repo root (see the
//! criterion shim docs): re-runs report per-benchmark deltas, and CI runs
//! the group twice in smoke mode with a 30% regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fnpr_cache::CacheConfig;
use fnpr_core::{
    algorithm1, algorithm1_scaled_capped, eq4_bound_with_limit, reference, DelayCurve,
};
use fnpr_pipeline::{analyze_task, program_access_map};
use fnpr_synth::{random_program, ProgramGenParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Domain end of the synthetic curve.
const SYNTH_C: f64 = 4000.0;
/// Spike height; `Q` sits just above it, so windows containing a spike
/// charge almost the whole region and progress creeps — the many-window
/// regime the campaign sweeps hit near the divergence boundary.
const SPIKE: f64 = 40.0;
/// Near-divergent region length for the synthetic curve.
const SYNTH_Q: f64 = SPIKE + 0.5;

/// A ≥1000-segment curve shaped like the hard campaign cases: a low noisy
/// tail with sparse tall spikes. Windows between spikes scan long low
/// stretches; windows at spikes creep by `Q − SPIKE` per step.
fn synthetic_curve(segments: usize) -> DelayCurve {
    let mut rng = StdRng::seed_from_u64(0x2012_0314);
    let points: Vec<(f64, f64)> = (0..segments)
        .map(|k| {
            let start = SYNTH_C * (k as f64) / (segments as f64);
            let value = if k > 0 && k % 200 == 0 {
                SPIKE
            } else {
                rng.gen_range(0.0..2.0)
            };
            (start, value)
        })
        .collect();
    DelayCurve::from_breakpoints(points, SYNTH_C).expect("valid synthetic curve")
}

/// A curve derived from generated program structure through the full
/// Section IV pipeline (compile → CRPD → windows → `fi`), as the `[cfg]`
/// campaign workload produces them.
fn cfg_curve() -> DelayCurve {
    // Sequence/branch-heavy shape: a program dominated by one big loop
    // reduces to a single super-block window, which is not the fragmented
    // regime this group measures.
    let params = ProgramGenParams {
        max_depth: 9,
        max_sequence: 5,
        max_loop_iterations: 8,
        branch_probability: 0.35,
        loop_probability: 0.04,
        footprint_lines: 64,
        accesses_per_block: (2, 6),
        ..ProgramGenParams::default()
    };
    let mut rng = StdRng::seed_from_u64(2012);
    let program = random_program(&mut rng, &params).expect("program generates");
    let cache = CacheConfig::new(64, 2, 16, 25.0).expect("valid cache");
    let accesses = program_access_map(&program.compiled, &cache);
    analyze_task(
        &program.compiled.cfg,
        &program.compiled.loop_bounds,
        &accesses,
        &cache,
    )
    .expect("pipeline analyzes")
    .curve
}

fn bench_bound_kernel(c: &mut Criterion) {
    let synthetic = synthetic_curve(1600);
    assert!(synthetic.segment_count() >= 1000, "acceptance floor");
    let cfg = cfg_curve();
    let cfg_q = cfg.max_value() * 1.05 + 1.0;
    eprintln!(
        "# synthetic: {} segments, q {SYNTH_Q}; cfg: {} segments, wcet {}, q {cfg_q:.2}",
        synthetic.segment_count(),
        cfg.segment_count(),
        cfg.domain_end(),
    );
    // The fused kernel must agree with the reference before we time it.
    assert_eq!(
        algorithm1(&synthetic, SYNTH_Q).unwrap(),
        reference::algorithm1(&synthetic, SYNTH_Q).unwrap()
    );
    assert_eq!(
        algorithm1(&cfg, cfg_q).unwrap(),
        reference::algorithm1(&cfg, cfg_q).unwrap()
    );

    let mut group = c.benchmark_group("bound_kernel");
    group.sample_size(15).throughput(Throughput::Elements(1));
    group.bench_with_input(
        BenchmarkId::new("cursor", "synthetic_1600seg"),
        &synthetic,
        |b, curve| b.iter(|| algorithm1(black_box(curve), black_box(SYNTH_Q)).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("reference", "synthetic_1600seg"),
        &synthetic,
        |b, curve| b.iter(|| reference::algorithm1(black_box(curve), black_box(SYNTH_Q)).unwrap()),
    );
    group.bench_with_input(BenchmarkId::new("cursor", "cfg"), &cfg, |b, curve| {
        b.iter(|| algorithm1(black_box(curve), black_box(cfg_q)).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("reference", "cfg"), &cfg, |b, curve| {
        b.iter(|| reference::algorithm1(black_box(curve), black_box(cfg_q)).unwrap())
    });

    // A dense near-divergent Q grid, the per-curve unit of work of the
    // fig5/soundness/cfg sweeps.
    let q_grid: Vec<f64> = (0..64).map(|j| SPIKE + 0.25 + j as f64 * 0.125).collect();
    group.throughput(Throughput::Elements(q_grid.len() as u64));
    group.bench_with_input(BenchmarkId::new("cursor", "q_grid_64"), &q_grid, |b, qs| {
        b.iter(|| {
            qs.iter()
                .filter_map(|&q| algorithm1(black_box(&synthetic), q).unwrap().total_delay())
                .sum::<f64>()
        })
    });
    group.bench_with_input(
        BenchmarkId::new("reference", "q_grid_64"),
        &q_grid,
        |b, qs| {
            b.iter(|| {
                qs.iter()
                    .filter_map(|&q| {
                        reference::algorithm1(black_box(&synthetic), q)
                            .unwrap()
                            .total_delay()
                    })
                    .sum::<f64>()
            })
        },
    );

    // The sensitivity-bisection probe: lazy view vs materialize-then-run.
    let (factor, cap) = (0.85, SPIKE * 0.8);
    group.throughput(Throughput::Elements(1));
    group.bench_function("scaled_lazy_view", |b| {
        b.iter(|| {
            algorithm1_scaled_capped(
                black_box(&synthetic),
                black_box(SYNTH_Q),
                black_box(factor),
                black_box(cap),
            )
            .unwrap()
        })
    });
    group.bench_function("scaled_materialized", |b| {
        b.iter(|| {
            let scaled = black_box(&synthetic)
                .scaled(black_box(factor))
                .unwrap()
                .clamped(black_box(cap))
                .unwrap();
            algorithm1(&scaled, black_box(SYNTH_Q)).unwrap()
        })
    });

    // Curve assembly from heavily overlapping CFG block windows (the
    // lazy-deletion-heap sweep; previously O(w²)).
    let windows: Vec<(f64, f64, f64)> = (0..5000)
        .map(|i| {
            let inset = i as f64 * SYNTH_C / 11_000.0;
            (inset, SYNTH_C - inset, (i % 31) as f64)
        })
        .collect();
    group.bench_with_input(
        BenchmarkId::new("from_windows", "5000_overlapping"),
        &windows,
        |b, ws| b.iter(|| DelayCurve::from_windows(ws.iter().copied(), SYNTH_C).unwrap()),
    );

    // The Eq. 4 fixpoint fast path (streams steps into a no-op sink; no
    // trace allocation). max_delay just under q makes the fixpoint crawl.
    group.bench_function("eq4_no_trace", |b| {
        b.iter(|| {
            eq4_bound_with_limit(
                black_box(SYNTH_C),
                black_box(5.0),
                black_box(4.99),
                1_000_000,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bound_kernel);
criterion_main!(benches);
