//! Criterion benchmarks for the discrete-event simulator: periodic task
//! sets of growing size under floating-NPR vs. fully-preemptive handling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fnpr_sim::{simulate, Scenario, SimConfig};
use fnpr_synth::{random_taskset, with_npr_and_curves, Policy, TaskSetParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn scenario_for(n: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(n as u64);
    loop {
        let params = TaskSetParams {
            n,
            utilization: 0.6,
            period_range: (20.0, 400.0),
            deadline_factor: (1.0, 1.0),
        };
        let Ok(base) = random_taskset(&mut rng, &params) else {
            continue;
        };
        if let Ok(Some(tasks)) =
            with_npr_and_curves(&mut rng, &base, Policy::FixedPriority, 0.7, 0.5)
        {
            let horizon = tasks.iter().map(|t| t.period()).fold(0.0f64, f64::max) * 5.0;
            return Scenario::periodic(&tasks, &[], horizon);
        }
    }
}

fn bench_floating_npr(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_floating_npr");
    group.sample_size(30);
    for n in [3usize, 6, 10] {
        let scenario = scenario_for(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(scenario.releases.len()),
            &scenario,
            |b, s| {
                b.iter(|| simulate(black_box(s), &SimConfig::floating_npr_fp(1e9)));
            },
        );
    }
    group.finish();
}

fn bench_preemptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_preemptive");
    group.sample_size(30);
    for n in [3usize, 6, 10] {
        let scenario = scenario_for(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(scenario.releases.len()),
            &scenario,
            |b, s| {
                b.iter(|| simulate(black_box(s), &SimConfig::preemptive_fp(1e9)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_floating_npr, bench_preemptive);
criterion_main!(benches);
