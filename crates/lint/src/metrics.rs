//! Telemetry-name collection and the `METRICS.md` registry.
//!
//! Detection covers both spellings the workspace uses:
//!
//! * macro form — `counter!("name")`, `gauge!`, `histogram!`;
//! * call form — `fnpr_obs::counter("name")` (a preceding `::` is
//!   required, so `fn counter(name: &str)` *definitions* in fnpr-obs do
//!   not match).
//!
//! Names resolve from a string literal, from `&format!("lit", …)` (the
//! `{…}` placeholders stay in the name verbatim — that is what the
//! registry rows carry), or from a same-line
//! `// fnpr-lint: metric(<type>, "<name>")` declaration for genuinely
//! dynamic arguments. Anything else is a `metric_name` finding. Args
//! starting with `$` are skipped: those are the macro definitions inside
//! fnpr-obs itself.

use std::collections::BTreeMap;

use crate::report::{Finding, METRIC_NAME, METRIC_REGISTRY, METRIC_TYPE};
use crate::scan::SourceFile;

/// The three instrument constructors.
const INSTRUMENTS: &[&str] = &["counter", "gauge", "histogram"];

/// One metric construction site, with its resolved (possibly
/// placeholder-bearing) name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricUse {
    /// Registry name, e.g. `campaign.memo.{table}.hit`.
    pub name: String,
    /// `counter` | `gauge` | `histogram`.
    pub kind: String,
    /// Workspace-relative path of the use.
    pub file: String,
    /// 1-based line of the use.
    pub line: u32,
}

/// Collects every metric use in `file`, emitting `metric_name` findings
/// for malformed or undeclared-dynamic names. Test files and
/// `#[cfg(test)]` regions are skipped — scratch metric names in tests do
/// not belong in the registry.
pub fn collect_metric_uses(
    file: &SourceFile,
    uses: &mut Vec<MetricUse>,
    findings: &mut Vec<Finding>,
) {
    if file.is_test {
        return;
    }
    let lexed = &file.lexed;
    for i in 0..lexed.tokens.len() {
        let Some(instr) = lexed.ident(i).filter(|m| INSTRUMENTS.contains(m)) else {
            continue;
        };
        if file.in_test_region(i) {
            continue;
        }
        // Macro form `counter!(` or call form `…::counter(`.
        let open = if lexed.punct(i + 1) == Some('!') && lexed.punct(i + 2) == Some('(') {
            i + 2
        } else if lexed.punct(i + 1) == Some('(') && i >= 2 && lexed.is_path_sep(i - 2) {
            i + 1
        } else {
            continue;
        };
        let line = lexed.line(i);
        match resolve_name(file, open + 1) {
            Resolved::Literal(name) => {
                if metric_name_ok(&name) {
                    uses.push(MetricUse {
                        name,
                        kind: instr.to_string(),
                        file: file.rel_path.clone(),
                        line,
                    });
                } else if !file.allowed(line, METRIC_NAME) {
                    findings.push(Finding::new(
                        METRIC_NAME,
                        &file.rel_path,
                        line,
                        format!(
                            "metric name `{name}` does not match \
                             `^[a-z0-9_]+(\\.[a-z0-9_{{}}<>]+)+$`"
                        ),
                    ));
                }
            }
            Resolved::MacroDefinition => {}
            Resolved::Dynamic => {
                let declared = file
                    .metric_decls
                    .get(&line)
                    .and_then(|decls| decls.iter().find(|(kind, _)| kind == instr).cloned());
                if let Some((kind, name)) = declared {
                    if metric_name_ok(&name) {
                        uses.push(MetricUse {
                            name,
                            kind,
                            file: file.rel_path.clone(),
                            line,
                        });
                    } else if !file.allowed(line, METRIC_NAME) {
                        findings.push(Finding::new(
                            METRIC_NAME,
                            &file.rel_path,
                            line,
                            format!("declared metric name `{name}` is malformed"),
                        ));
                    }
                } else if !file.allowed(line, METRIC_NAME) {
                    findings.push(Finding::new(
                        METRIC_NAME,
                        &file.rel_path,
                        line,
                        format!(
                            "dynamic `{instr}` name; add \
                             `// fnpr-lint: metric({instr}, \"<name>\")` on this line \
                             so the registry can carry it"
                        ),
                    ));
                }
            }
        }
    }
}

enum Resolved {
    /// A compile-time-known name (string literal or `&format!` literal).
    Literal(String),
    /// `$`-prefixed arg: the macro definition body inside fnpr-obs.
    MacroDefinition,
    /// Anything else — needs a same-line declaration.
    Dynamic,
}

/// Resolves the first argument starting at token `arg` (just past `(`).
fn resolve_name(file: &SourceFile, arg: usize) -> Resolved {
    let lexed = &file.lexed;
    let mut j = arg;
    if lexed.punct(j) == Some('$') {
        return Resolved::MacroDefinition;
    }
    if lexed.punct(j) == Some('&') {
        j += 1;
    }
    if let Some(value) = lexed.str_value(j) {
        return Resolved::Literal(value.to_string());
    }
    // `format ! ( "lit" …`
    if lexed.ident(j) == Some("format")
        && lexed.punct(j + 1) == Some('!')
        && lexed.punct(j + 2) == Some('(')
    {
        if let Some(value) = lexed.str_value(j + 3) {
            return Resolved::Literal(normalize_placeholders(value));
        }
    }
    Resolved::Dynamic
}

/// Rewrites positional/width format specs to bare `{}` so
/// `{:>3}`-style specs cannot leak into registry names; named captures
/// like `{table}` are kept verbatim.
fn normalize_placeholders(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut rest = value;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let tail = &rest[open + 1..];
        match tail.find('}') {
            Some(close) => {
                let inner = &tail[..close];
                if inner.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
                    out.push('{');
                    out.push_str(inner);
                    out.push('}');
                } else {
                    out.push_str("{}");
                }
                rest = &tail[close + 1..];
            }
            None => {
                out.push('{');
                rest = tail;
            }
        }
    }
    out.push_str(rest);
    out
}

/// The registry name shape: `^[a-z0-9_]+(\.[a-z0-9_{}<>]+)+$` —
/// dot-separated, at least two segments, first segment plain.
#[must_use]
pub fn metric_name_ok(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    if segments.len() < 2 || segments.iter().any(|s| s.is_empty()) {
        return false;
    }
    let plain = |c: char| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_';
    segments[0].chars().all(plain)
        && segments[1..].iter().all(|s| {
            s.chars()
                .all(|c| plain(c) || matches!(c, '{' | '}' | '<' | '>'))
        })
}

/// Emits `metric_type` findings for names used under two instrument
/// types: every use disagreeing with the (file, line)-earliest one is
/// flagged.
pub fn check_type_conflicts(uses: &[MetricUse], findings: &mut Vec<Finding>) {
    let mut by_name: BTreeMap<&str, Vec<&MetricUse>> = BTreeMap::new();
    for u in uses {
        by_name.entry(&u.name).or_default().push(u);
    }
    for (name, mut sites) in by_name {
        sites.sort_by_key(|u| (&u.file, u.line));
        let canonical = &sites[0].kind;
        for site in &sites[1..] {
            if &site.kind != canonical {
                findings.push(Finding::new(
                    METRIC_TYPE,
                    &site.file,
                    site.line,
                    format!(
                        "`{name}` used as a {} here but as a {canonical} at {}:{}",
                        site.kind, sites[0].file, sites[0].line
                    ),
                ));
            }
        }
    }
}

/// One parsed `METRICS.md` row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryRow {
    /// Metric name (backtick-stripped).
    pub name: String,
    /// Declared instrument type.
    pub kind: String,
    /// Free-text description.
    pub desc: String,
    /// 1-based line in `METRICS.md`.
    pub line: u32,
}

/// Parses the `| \`name\` | type | description |` rows out of the
/// registry markdown. Non-table lines, headers and separators are
/// ignored.
#[must_use]
pub fn parse_registry(text: &str) -> Vec<RegistryRow> {
    let mut rows = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 3 {
            continue;
        }
        let Some(name) = cells[0].strip_prefix('`').and_then(|s| s.strip_suffix('`')) else {
            continue; // header or separator row
        };
        rows.push(RegistryRow {
            name: name.to_string(),
            kind: cells[1].to_string(),
            desc: cells[2].to_string(),
            line: (idx + 1) as u32,
        });
    }
    rows
}

/// Renders the registry for `metrics` (name → instrument type), grouped
/// by first name segment, preserving `descriptions` for names that
/// already had one.
#[must_use]
pub fn render_registry(
    metrics: &BTreeMap<String, String>,
    descriptions: &BTreeMap<String, String>,
) -> String {
    let mut out = String::from(
        "# Metrics registry\n\n\
         Every `counter!`/`gauge!`/`histogram!` name in the workspace must have a\n\
         row here, and every row must still exist in code — `fnpr-lint check`\n\
         fails on drift in either direction (`metric_registry`). Regenerate with\n\
         `cargo run -p fnpr-lint -- check --fix-registry`; descriptions are\n\
         preserved across regenerations. Names with `{…}` placeholders are\n\
         instantiated per key at runtime.\n",
    );
    let mut by_group: BTreeMap<&str, Vec<(&String, &String)>> = BTreeMap::new();
    for (name, kind) in metrics {
        let group = name.split('.').next().unwrap_or(name);
        by_group.entry(group).or_default().push((name, kind));
    }
    for (group, rows) in by_group {
        out.push_str(&format!("\n## {group}\n\n"));
        out.push_str("| metric | type | description |\n| --- | --- | --- |\n");
        for (name, kind) in rows {
            let desc = descriptions.get(name.as_str()).map_or("", String::as_str);
            out.push_str(&format!("| `{name}` | {kind} | {desc} |\n"));
        }
    }
    out
}

/// Reconciles registry rows against the code's metric uses: missing rows
/// anchor at the first code use, stale rows and type mismatches at the
/// `METRICS.md` row.
pub fn check_registry(
    rows: &[RegistryRow],
    uses: &[MetricUse],
    registry_rel_path: &str,
    findings: &mut Vec<Finding>,
) {
    let mut first_use: BTreeMap<&str, &MetricUse> = BTreeMap::new();
    for u in uses {
        let entry = first_use.entry(&u.name).or_insert(u);
        if (&u.file, u.line) < (&entry.file, entry.line) {
            *entry = u;
        }
    }
    let mut row_names: BTreeMap<&str, &RegistryRow> = BTreeMap::new();
    for row in rows {
        if let Some(previous) = row_names.insert(&row.name, row) {
            findings.push(Finding::new(
                METRIC_REGISTRY,
                registry_rel_path,
                row.line,
                format!(
                    "duplicate registry row for `{}` (first at line {})",
                    row.name, previous.line
                ),
            ));
        }
    }
    for (name, use_) in &first_use {
        match row_names.get(name) {
            None => findings.push(Finding::new(
                METRIC_REGISTRY,
                &use_.file,
                use_.line,
                format!(
                    "metric `{name}` is not in {registry_rel_path}; run \
                     `fnpr-lint check --fix-registry` and describe it"
                ),
            )),
            Some(row) if row.kind != use_.kind => findings.push(Finding::new(
                METRIC_TYPE,
                registry_rel_path,
                row.line,
                format!(
                    "registry declares `{name}` as a {} but code constructs a {} \
                     at {}:{}",
                    row.kind, use_.kind, use_.file, use_.line
                ),
            )),
            Some(_) => {}
        }
    }
    for (name, row) in &row_names {
        if !first_use.contains_key(name) {
            findings.push(Finding::new(
                METRIC_REGISTRY,
                registry_rel_path,
                row.line,
                format!("stale registry row: `{name}` no longer appears in code"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::analyze_source;

    fn collect(src: &str) -> (Vec<MetricUse>, Vec<Finding>) {
        let file = analyze_source("crates/demo/src/lib.rs", src);
        let mut uses = Vec::new();
        let mut findings = Vec::new();
        collect_metric_uses(&file, &mut uses, &mut findings);
        (uses, findings)
    }

    #[test]
    fn literal_macro_and_call_forms() {
        let (uses, findings) = collect(
            "fn f() {\n\
             \u{20}   counter!(\"campaign.memo.hit\").add(1);\n\
             \u{20}   fnpr_obs::gauge(\"campaign.queue.depth\").set(3);\n\
             }\n",
        );
        assert!(findings.is_empty());
        assert_eq!(uses.len(), 2);
        assert_eq!(uses[0].name, "campaign.memo.hit");
        assert_eq!(uses[0].kind, "counter");
        assert_eq!(uses[1].kind, "gauge");
    }

    #[test]
    fn fn_definitions_and_macro_bodies_do_not_match() {
        let (uses, findings) = collect(
            "pub fn counter(name: &str) -> u64 { 0 }\n\
             macro_rules! counter { ($name:expr) => { $crate::counter($name) }; }\n",
        );
        assert!(uses.is_empty(), "{uses:?}");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn format_literal_keeps_named_placeholders() {
        let (uses, findings) = collect(
            "fn f(table: &str) {\n\
             \u{20}   fnpr_obs::counter(&format!(\"campaign.memo.{table}.hit\")).add(1);\n\
             \u{20}   fnpr_obs::counter(&format!(\"campaign.fault.planned.{}\", k)).add(1);\n\
             }\n",
        );
        assert!(findings.is_empty());
        assert_eq!(uses[0].name, "campaign.memo.{table}.hit");
        assert_eq!(uses[1].name, "campaign.fault.planned.{}");
    }

    #[test]
    fn dynamic_without_declaration_is_flagged() {
        let (uses, findings) = collect("fn f(name: &str) { fnpr_obs::histogram(&name); }\n");
        assert!(uses.is_empty());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, METRIC_NAME);
    }

    #[test]
    fn dynamic_with_declaration_resolves() {
        let (uses, findings) = collect(
            "fn f(name: &str) {\n\
             \u{20}   // fnpr-lint: metric(histogram, \"campaign.point.micros.{}\")\n\
             \u{20}   fnpr_obs::histogram(&name);\n\
             }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(uses[0].name, "campaign.point.micros.{}");
        assert_eq!(uses[0].kind, "histogram");
    }

    #[test]
    fn bad_shapes_are_flagged() {
        for bad in ["nodots", "Upper.case", "trailing.", ".leading", "mid..dle"] {
            assert!(!metric_name_ok(bad), "{bad}");
        }
        for good in [
            "campaign.memo.hit",
            "lint.findings.{}",
            "campaign.memo.{table}.miss",
            "sim.queue.depth<core>",
        ] {
            assert!(metric_name_ok(good), "{good}");
        }
        let (_, findings) = collect("fn f() { counter!(\"NoDots\").add(1); }\n");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn type_conflicts_flag_the_later_site() {
        let uses = vec![
            MetricUse {
                name: "a.b".into(),
                kind: "counter".into(),
                file: "crates/a/src/lib.rs".into(),
                line: 4,
            },
            MetricUse {
                name: "a.b".into(),
                kind: "gauge".into(),
                file: "crates/z/src/lib.rs".into(),
                line: 9,
            },
        ];
        let mut findings = Vec::new();
        check_type_conflicts(&uses, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "crates/z/src/lib.rs");
        assert_eq!(findings[0].lint, METRIC_TYPE);
    }

    #[test]
    fn registry_round_trip_and_drift() {
        let mut metrics = BTreeMap::new();
        metrics.insert("campaign.memo.hit".to_string(), "counter".to_string());
        metrics.insert("lint.files_scanned".to_string(), "counter".to_string());
        let mut descriptions = BTreeMap::new();
        descriptions.insert(
            "campaign.memo.hit".to_string(),
            "memo-table hits".to_string(),
        );
        let text = render_registry(&metrics, &descriptions);
        let rows = parse_registry(&text);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "campaign.memo.hit");
        assert_eq!(rows[0].desc, "memo-table hits");

        let uses = vec![MetricUse {
            name: "campaign.memo.hit".into(),
            kind: "counter".into(),
            file: "crates/campaign/src/memo.rs".into(),
            line: 73,
        }];
        let mut findings = Vec::new();
        check_registry(&rows, &uses, "METRICS.md", &mut findings);
        // `lint.files_scanned` row is stale relative to `uses`.
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, METRIC_REGISTRY);
        assert_eq!(findings[0].file, "METRICS.md");
        assert!(findings[0].message.contains("stale"));

        // Missing row: a use with no registry presence.
        let extra = vec![
            uses[0].clone(),
            MetricUse {
                name: "campaign.memo.miss".into(),
                kind: "counter".into(),
                file: "crates/campaign/src/memo.rs".into(),
                line: 75,
            },
            MetricUse {
                name: "lint.files_scanned".into(),
                kind: "counter".into(),
                file: "crates/lint/src/lib.rs".into(),
                line: 10,
            },
        ];
        let mut findings = Vec::new();
        check_registry(&rows, &extra, "METRICS.md", &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "crates/campaign/src/memo.rs");
        assert_eq!(findings[0].line, 75);

        // Type mismatch anchors at the registry row.
        let mismatched = vec![
            MetricUse {
                name: "campaign.memo.hit".into(),
                kind: "gauge".into(),
                file: "crates/campaign/src/memo.rs".into(),
                line: 73,
            },
            extra[2].clone(),
        ];
        let mut findings = Vec::new();
        check_registry(&rows, &mismatched, "METRICS.md", &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, METRIC_TYPE);
        assert_eq!(findings[0].file, "METRICS.md");
    }
}
