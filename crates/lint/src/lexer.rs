//! A minimal hand-rolled Rust lexer — just enough syntax awareness for
//! reliable token-level lints without a parser dependency.
//!
//! The hard part of "grep with guarantees" is knowing what is *code*:
//! line comments, nested block comments, plain/raw/byte string literals,
//! char literals and lifetimes all must be classified correctly or a lint
//! will fire inside a doc comment (or miss a real call because a raw
//! string swallowed the rest of the file). Everything else — numbers,
//! identifiers, punctuation — is passed through as flat tokens with line
//! numbers; the lint passes pattern-match on those.

/// One lexical token (comments are reported separately, see [`Comment`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident(String),
    /// A lifetime such as `'a` (without the quote).
    Lifetime(String),
    /// A string literal; `value` is the raw source slice between the
    /// quotes (escape sequences are not processed — the lints only need
    /// substring/equality checks on plain names and tags).
    Str {
        /// Whether this was a raw (`r"…"` / `r#"…"#`) literal.
        raw: bool,
        /// The uninterpreted contents between the delimiters.
        value: String,
    },
    /// A char or byte literal (contents are irrelevant to every lint).
    Char,
    /// A numeric literal (digits plus any suffix characters).
    Num(String),
    /// Any single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// A comment (line or block), kept out of the token stream so pattern
/// matching never trips over prose, but retained for directive parsing
/// (`// fnpr-lint: …`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// True when no code token precedes the comment on its line — a
    /// standalone comment applies to the *next* code line for directive
    /// attachment; an inline one applies to its own line.
    pub standalone: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes `src`. Unterminated literals and comments are tolerated (the
/// token simply extends to end of file): a lint tool must never panic on
/// the code it inspects.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut last_tok_line = 0u32;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..i].iter().collect(),
                standalone: last_tok_line != line,
            });
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let standalone = last_tok_line != line;
            i += 2;
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..i].iter().collect(),
                standalone,
            });
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, br"…", b"…", b'…'.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let raw = c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r'));
            if raw {
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    let tok_line = line;
                    j += 1;
                    let content_start = j;
                    let content_end;
                    loop {
                        match chars.get(j) {
                            None => {
                                content_end = j;
                                break;
                            }
                            Some('"')
                                if chars[j + 1..].iter().take_while(|&&h| h == '#').count()
                                    >= hashes =>
                            {
                                content_end = j;
                                j += 1 + hashes;
                                break;
                            }
                            Some(&ch) => {
                                if ch == '\n' {
                                    line += 1;
                                }
                                j += 1;
                            }
                        }
                    }
                    out.tokens.push(Token {
                        tok: Tok::Str {
                            raw: true,
                            value: chars[content_start..content_end].iter().collect(),
                        },
                        line: tok_line,
                    });
                    last_tok_line = tok_line;
                    i = j;
                    continue;
                }
                // `r` / `br` not followed by a string: plain identifier.
            } else if c == 'b' && matches!(chars.get(i + 1), Some('"') | Some('\'')) {
                // Byte string / byte char: delegate to the plain handlers
                // below by skipping the `b` prefix.
                i += 1;
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            let tok_line = line;
            let content_start = i + 1;
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => break,
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            let content_end = i.min(chars.len());
            if i < chars.len() {
                i += 1; // closing quote
            }
            out.tokens.push(Token {
                tok: Tok::Str {
                    raw: false,
                    value: chars[content_start..content_end].iter().collect(),
                },
                line: tok_line,
            });
            last_tok_line = tok_line;
            continue;
        }
        // Char literal vs lifetime. After the quote, read an identifier
        // run: if it is immediately closed by another quote this is a char
        // literal (`'a'`, `'_'`); otherwise it is a lifetime (`'a`,
        // `'static`). Escapes (`'\n'`) are always char literals.
        if c == '\'' {
            let tok_line = line;
            if chars.get(i + 1) == Some(&'\\') {
                // Escaped char literal: skip the escape introducer AND the
                // escaped character (it may itself be `'`), then scan to
                // the closing quote.
                i += 3;
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
                i = (i + 1).min(chars.len());
                out.tokens.push(Token {
                    tok: Tok::Char,
                    line: tok_line,
                });
                last_tok_line = tok_line;
                continue;
            }
            let mut j = i + 1;
            while chars.get(j).is_some_and(|&ch| is_ident_continue(ch)) {
                j += 1;
            }
            if j > i + 1 && chars.get(j) != Some(&'\'') {
                out.tokens.push(Token {
                    tok: Tok::Lifetime(chars[i + 1..j].iter().collect()),
                    line: tok_line,
                });
                last_tok_line = tok_line;
                i = j;
                continue;
            }
            // Char literal: `'x'` (possibly multi-byte) — skip to close.
            i += 1;
            while i < chars.len() && chars[i] != '\'' {
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 1).min(chars.len());
            out.tokens.push(Token {
                tok: Tok::Char,
                line: tok_line,
            });
            last_tok_line = tok_line;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Ident(chars[start..i].iter().collect()),
                line,
            });
            last_tok_line = line;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Num(chars[start..i].iter().collect()),
                line,
            });
            last_tok_line = line;
            continue;
        }
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        last_tok_line = line;
        i += 1;
    }
    out
}

impl Lexed {
    /// The identifier text of token `idx`, if it is one.
    #[must_use]
    pub fn ident(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    /// Whether token `idx` is the punctuation `c`.
    #[must_use]
    pub fn punct(&self, idx: usize) -> Option<char> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    /// Whether tokens `idx..idx+2` spell `::`.
    #[must_use]
    pub fn is_path_sep(&self, idx: usize) -> bool {
        self.punct(idx) == Some(':') && self.punct(idx + 1) == Some(':')
    }

    /// The string-literal value of token `idx`, if it is one.
    #[must_use]
    pub fn str_value(&self, idx: usize) -> Option<&str> {
        match self.tokens.get(idx).map(|t| &t.tok) {
            Some(Tok::Str { value, .. }) => Some(value),
            _ => None,
        }
    }

    /// Line of token `idx` (0 when out of range — callers only use this
    /// on indices they just matched).
    #[must_use]
    pub fn line(&self, idx: usize) -> u32 {
        self.tokens.get(idx).map_or(0, |t| t.line)
    }

    /// Index of the matching `}` for the `{` at `open` (token index), or
    /// the last token if unbalanced.
    #[must_use]
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for idx in open..self.tokens.len() {
            match self.punct(idx) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return idx;
                    }
                }
                _ => {}
            }
        }
        self.tokens.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn line_comment_is_not_code() {
        let lexed = lex("let x = 1; // HashMap::new()\nlet y = 2;");
        assert!(idents(&lexed).iter().all(|s| *s != "HashMap"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(!lexed.comments[0].standalone);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lexed = lex("/* outer /* inner */ still comment */ fn after() {}");
        assert_eq!(idents(&lexed), vec!["fn", "after"]);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let lexed = lex(r###"let s = r#"quote " and // not a comment"#; done"###);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| matches!(t.tok, Tok::Str { raw: true, .. }))
                .count(),
            1
        );
        assert!(lexed.comments.is_empty());
        assert!(idents(&lexed).contains(&"done"));
    }

    #[test]
    fn char_vs_lifetime_disambiguation() {
        let lexed =
            lex("fn f<'a>(x: &'a str) { let c = 'x'; let u = '_'; let s: &'static str = \"\"; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lifetime(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| matches!(t.tok, Tok::Char))
                .count(),
            2
        );
    }

    #[test]
    fn escaped_char_literals_do_not_open_strings() {
        let lexed = lex(r"let q = '\''; let b = '\\'; let n = '\n'; after");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| matches!(t.tok, Tok::Char))
                .count(),
            3
        );
        assert!(idents(&lexed).contains(&"after"));
    }

    #[test]
    fn multiline_string_advances_lines() {
        let lexed = lex("let s = \"line1\nline2\";\nfn g() {}");
        let g_line = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("g".into()))
            .unwrap()
            .line;
        assert_eq!(g_line, 3);
    }

    #[test]
    fn standalone_vs_inline_comments() {
        let lexed = lex("// standalone\nlet x = 1; // inline\n");
        assert!(lexed.comments[0].standalone);
        assert!(!lexed.comments[1].standalone);
    }

    #[test]
    fn round_trip_token_text_survives() {
        // The lints only need token *identity*; check a mixed line keeps
        // every non-comment atom with its source text and line.
        let lexed = lex("foo.iter(); bar::baz(\"name.x\")");
        assert_eq!(idents(&lexed), vec!["foo", "iter", "bar", "baz"]);
        assert_eq!(lexed.str_value(lexed.tokens.len() - 2), Some("name.x"));
    }
}
