//! Workspace walking, file classification and directive parsing.
//!
//! Classification drives which passes run where:
//!
//! * **vendor / target / fixtures** directories are never scanned;
//! * **test files** (any path with a `tests/` or `benches/` component)
//!   are lexed but no lint pass runs on them;
//! * **sink files** (CLI binaries under `bin/`, `src/main.rs`, and
//!   `examples/`) are exempt from the determinism lints and the panic
//!   budget — they are where wall-clock, env reads and `unwrap` are
//!   legitimate — but still checked for metric names, format constants
//!   and `unsafe`;
//! * `#[cfg(test)]` items inside library files are skipped like test
//!   files.
//!
//! Directives are line comments of the form:
//!
//! ```text
//! // fnpr-lint: allow(<lint>, "<reason>")
//! // fnpr-lint: metric(<counter|gauge|histogram>, "<name>")
//! ```
//!
//! A standalone directive applies to the next code line; an inline one to
//! its own line. The reason string is mandatory — an allow without one is
//! itself a finding (`allow_syntax`) and suppresses nothing.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed};
use crate::report::{Finding, ALLOW_SYNTAX, LINTS};

/// Directory names that are never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target", "fixtures", ".git", ".github"];

/// One classified, lexed workspace source file.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Owning crate: the directory name under `crates/`, or `fnpr` for
    /// the root package.
    pub crate_name: String,
    /// Lives under a `tests/` or `benches/` directory.
    pub is_test: bool,
    /// CLI/report sink: `bin/`, `src/main.rs` or `examples/`.
    pub is_sink: bool,
    /// The token/comment stream.
    pub lexed: Lexed,
    /// Token-index ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
    /// Valid `allow` directives: line → lint ids suppressed there.
    pub allows: BTreeMap<u32, Vec<String>>,
    /// `metric` declarations: line → (instrument type, name).
    pub metric_decls: BTreeMap<u32, Vec<(String, String)>>,
    /// Malformed directives (line, message) — reported as `allow_syntax`.
    pub bad_directives: Vec<(u32, String)>,
}

impl SourceFile {
    /// Whether `lint` is suppressed on `line` by a valid allow directive.
    #[must_use]
    pub fn allowed(&self, line: u32, lint: &str) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|lints| lints.iter().any(|l| l == lint))
    }

    /// Whether token `idx` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test_region(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// Emits the `allow_syntax` findings for this file's malformed
    /// directives.
    pub fn report_bad_directives(&self, findings: &mut Vec<Finding>) {
        for (line, message) in &self.bad_directives {
            findings.push(Finding::new(
                ALLOW_SYNTAX,
                &self.rel_path,
                *line,
                message.clone(),
            ));
        }
    }
}

/// Recursively collects every non-vendor `.rs` file under `root`, sorted
/// by path so scan output is deterministic regardless of directory
/// enumeration order.
///
/// # Errors
///
/// Propagates filesystem errors from the walk.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads and classifies one file. `root` anchors the relative path.
///
/// # Errors
///
/// Propagates the read error.
pub fn load_file(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
    let src = std::fs::read_to_string(path)?;
    let rel_path = path
        .strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/");
    Ok(analyze_source(&rel_path, &src))
}

/// Classifies and lexes `src` as the file at `rel_path` (exposed for the
/// fixture tests, which build files in memory).
#[must_use]
pub fn analyze_source(rel_path: &str, src: &str) -> SourceFile {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "fnpr".to_string()
    };
    let is_test = parts.iter().any(|p| *p == "tests" || *p == "benches");
    let is_sink =
        parts.iter().any(|p| *p == "bin" || *p == "examples") || rel_path.ends_with("src/main.rs");
    let lexed = lex(src);
    let test_ranges = find_test_ranges(&lexed);
    let mut file = SourceFile {
        rel_path: rel_path.to_string(),
        crate_name,
        is_test,
        is_sink,
        lexed,
        test_ranges,
        allows: BTreeMap::new(),
        metric_decls: BTreeMap::new(),
        bad_directives: Vec::new(),
    };
    parse_directives(&mut file);
    file
}

/// Finds token ranges of `#[cfg(test)]` items: the attribute, any
/// stacked attributes after it, an optional visibility, then either a
/// braced item (skip to the matching `}`) or a `;`-terminated one.
fn find_test_ranges(lexed: &Lexed) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < lexed.tokens.len() {
        if lexed.punct(i) == Some('#') && lexed.punct(i + 1) == Some('[') {
            let close = match matching_bracket(lexed, i + 1) {
                Some(c) => c,
                None => break,
            };
            if is_cfg_test_attr(lexed, i + 2, close) {
                let start = i;
                let mut j = close + 1;
                // Skip stacked attributes on the same item.
                while lexed.punct(j) == Some('#') && lexed.punct(j + 1) == Some('[') {
                    match matching_bracket(lexed, j + 1) {
                        Some(c) => j = c + 1,
                        None => break,
                    }
                }
                // Walk to the item body: first `{` (braced item) or `;`.
                let mut end = lexed.tokens.len().saturating_sub(1);
                let mut k = j;
                while k < lexed.tokens.len() {
                    match lexed.punct(k) {
                        Some('{') => {
                            end = lexed.matching_brace(k);
                            break;
                        }
                        Some(';') => {
                            end = k;
                            break;
                        }
                        _ => k += 1,
                    }
                }
                ranges.push((start, end));
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Whether the attribute tokens in `(start..end)` spell exactly
/// `cfg(test…` — `cfg(not(test))` and friends do not count.
fn is_cfg_test_attr(lexed: &Lexed, start: usize, end: usize) -> bool {
    end > start + 2
        && lexed.ident(start) == Some("cfg")
        && lexed.punct(start + 1) == Some('(')
        && lexed.ident(start + 2) == Some("test")
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(lexed: &Lexed, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for idx in open..lexed.tokens.len() {
        match lexed.punct(idx) {
            Some('[') => depth += 1,
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(idx);
                }
            }
            _ => {}
        }
    }
    None
}

/// The line a standalone comment at `comment_line` attaches to: the first
/// code token strictly below it (falling back to the next line).
fn attach_line(lexed: &Lexed, comment_line: u32) -> u32 {
    lexed
        .tokens
        .iter()
        .map(|t| t.line)
        .find(|&l| l > comment_line)
        .unwrap_or(comment_line + 1)
}

const DIRECTIVE_MARKER: &str = "fnpr-lint:";

fn parse_directives(file: &mut SourceFile) {
    for comment in &file.lexed.comments {
        let text = comment.text.trim_start_matches('/').trim();
        let Some(rest) = text.strip_prefix(DIRECTIVE_MARKER) else {
            continue;
        };
        let rest = rest.trim();
        let target = if comment.standalone {
            attach_line(&file.lexed, comment.line)
        } else {
            comment.line
        };
        if let Some(args) = directive_args(rest, "allow") {
            match parse_two_args(&args) {
                Some((lint, reason)) if LINTS.contains(&lint.as_str()) && !reason.is_empty() => {
                    file.allows.entry(target).or_default().push(lint);
                }
                Some((lint, _)) if !LINTS.contains(&lint.as_str()) => {
                    file.bad_directives
                        .push((comment.line, format!("allow names unknown lint `{lint}`")));
                }
                _ => {
                    file.bad_directives.push((
                        comment.line,
                        "allow requires a non-empty quoted reason: \
                         `// fnpr-lint: allow(<lint>, \"why\")`"
                            .to_string(),
                    ));
                }
            }
        } else if let Some(args) = directive_args(rest, "metric") {
            match parse_two_args(&args) {
                Some((kind, name))
                    if matches!(kind.as_str(), "counter" | "gauge" | "histogram")
                        && !name.is_empty() =>
                {
                    file.metric_decls
                        .entry(target)
                        .or_default()
                        .push((kind, name));
                }
                _ => {
                    file.bad_directives.push((
                        comment.line,
                        "metric declaration must be \
                         `// fnpr-lint: metric(<counter|gauge|histogram>, \"name\")`"
                            .to_string(),
                    ));
                }
            }
        } else {
            file.bad_directives.push((
                comment.line,
                format!("unknown fnpr-lint directive `{rest}`"),
            ));
        }
    }
}

/// Extracts the `…` of `<head>(…)` if `text` starts with `head(` and has
/// a closing parenthesis.
fn directive_args(text: &str, head: &str) -> Option<String> {
    let rest = text.strip_prefix(head)?.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.rfind(')')?;
    Some(inner[..close].to_string())
}

/// Parses `ident, "string"` — the shared shape of both directives. The
/// second element is the unquoted string (empty when missing/unquoted).
fn parse_two_args(args: &str) -> Option<(String, String)> {
    let (first, second) = match args.split_once(',') {
        Some((a, b)) => (a.trim(), b.trim()),
        None => (args.trim(), ""),
    };
    if first.is_empty() {
        return None;
    }
    let unquoted = second
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or("");
    Some((first.to_string(), unquoted.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        let f = analyze_source("crates/campaign/src/exec.rs", "");
        assert_eq!(f.crate_name, "campaign");
        assert!(!f.is_test && !f.is_sink);
        let f = analyze_source("crates/campaign/tests/fault.rs", "");
        assert!(f.is_test);
        let f = analyze_source("crates/campaign/src/bin/fnpr_campaign.rs", "");
        assert!(f.is_sink);
        let f = analyze_source("crates/lint/src/main.rs", "");
        assert!(f.is_sink);
        let f = analyze_source("src/lib.rs", "");
        assert_eq!(f.crate_name, "fnpr");
        let f = analyze_source("examples/quickstart.rs", "");
        assert!(f.is_sink);
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        let helper = f
            .lexed
            .tokens
            .iter()
            .position(|t| t.tok == crate::lexer::Tok::Ident("helper".into()))
            .unwrap();
        let after = f
            .lexed
            .tokens
            .iter()
            .position(|t| t.tok == crate::lexer::Tok::Ident("after".into()))
            .unwrap();
        assert!(f.in_test_region(helper));
        assert!(!f.in_test_region(after));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { body(); }\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert!(f.test_ranges.is_empty());
    }

    #[test]
    fn visibility_prefixed_test_mod() {
        let src = "#[cfg(test)]\npub(crate) mod testsync {\n    fn t() {}\n}\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert_eq!(f.test_ranges.len(), 1);
    }

    #[test]
    fn standalone_allow_attaches_to_next_line() {
        let src = "// fnpr-lint: allow(wall_clock, \"telemetry only\")\nlet t = now();\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert!(f.allowed(2, "wall_clock"));
        assert!(!f.allowed(1, "wall_clock"));
    }

    #[test]
    fn inline_allow_applies_to_its_own_line() {
        let src = "let t = now(); // fnpr-lint: allow(wall_clock, \"meter\")\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert!(f.allowed(1, "wall_clock"));
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "// fnpr-lint: allow(wall_clock)\nlet t = now();\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert!(!f.allowed(2, "wall_clock"));
        assert_eq!(f.bad_directives.len(), 1);
    }

    #[test]
    fn allow_unknown_lint_is_rejected() {
        let src = "// fnpr-lint: allow(made_up, \"reason\")\nx();\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        assert!(f.allows.is_empty());
        assert!(f.bad_directives[0].1.contains("made_up"));
    }

    #[test]
    fn metric_declaration_parses() {
        let src = "// fnpr-lint: metric(histogram, \"campaign.point.micros.{}\")\nh(&name);\n";
        let f = analyze_source("crates/x/src/lib.rs", src);
        let decls = f.metric_decls.get(&2).unwrap();
        assert_eq!(
            decls[0],
            ("histogram".into(), "campaign.point.micros.{}".into())
        );
    }
}
