//! Findings, lint identifiers and machine-readable output.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Order-dependent iteration over `HashMap`/`HashSet`.
pub const HASH_ITER: &str = "hash_iter";
/// `Instant::now` / `SystemTime::now` in aggregate-feeding code.
pub const WALL_CLOCK: &str = "wall_clock";
/// Ambient randomness (`thread_rng`, `from_entropy`, `OsRng`).
pub const ENTROPY: &str = "entropy";
/// `std::env::var`-family reads in aggregate-feeding code.
pub const ENV_READ: &str = "env_read";
/// Malformed metric name, or a dynamic name without a declaration.
pub const METRIC_NAME: &str = "metric_name";
/// One metric name used under two instrument types.
pub const METRIC_TYPE: &str = "metric_type";
/// Code ↔ `METRICS.md` drift (missing or stale row).
pub const METRIC_REGISTRY: &str = "metric_registry";
/// Magic wire tags / schema constants defined or inlined outside their
/// single home crate.
pub const FORMAT_CONSTANT: &str = "format_constant";
/// `unsafe` outside the explicit allowlist.
pub const UNSAFE_BLOCK: &str = "unsafe_block";
/// `unwrap()`/`expect()` in library code above the per-crate ratchet.
pub const PANIC_BUDGET: &str = "panic_budget";
/// Malformed `// fnpr-lint:` directive (e.g. allow without a reason).
pub const ALLOW_SYNTAX: &str = "allow_syntax";

/// Every lint id, in severity-then-name order; `allow(<lint>, …)` must
/// name one of these.
pub const LINTS: &[&str] = &[
    HASH_ITER,
    WALL_CLOCK,
    ENTROPY,
    ENV_READ,
    METRIC_NAME,
    METRIC_TYPE,
    METRIC_REGISTRY,
    FORMAT_CONSTANT,
    UNSAFE_BLOCK,
    PANIC_BUDGET,
    ALLOW_SYNTAX,
];

/// One diagnostic: a lint id anchored at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint id (one of [`LINTS`]).
    pub lint: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-oriented explanation (single line).
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    #[must_use]
    pub fn new(lint: &'static str, file: &str, line: u32, message: String) -> Self {
        Self {
            lint,
            file: file.to_string(),
            line,
            message,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// The result of one `check` run.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// All findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of files lexed.
    pub files_scanned: usize,
    /// Informational notes (e.g. ratchet slack) — never failures.
    pub notes: Vec<String>,
}

impl CheckOutcome {
    /// Findings per lint id (zero-count lints omitted).
    #[must_use]
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for finding in &self.findings {
            *counts.entry(finding.lint).or_insert(0) += 1;
        }
        counts
    }

    /// The machine-readable report (stable field order, schema v1).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema_version\": 1,\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 == self.findings.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}",
                json_escape(f.lint),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message),
                comma
            );
        }
        out.push_str("  ],\n  \"counts\": {");
        let counts = self.counts();
        for (i, (lint, n)) in counts.iter().enumerate() {
            let comma = if i + 1 == counts.len() { "" } else { ", " };
            let _ = write!(out, "\"{}\": {}{}", json_escape(lint), n, comma);
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_shape() {
        let mut outcome = CheckOutcome {
            files_scanned: 3,
            ..Default::default()
        };
        outcome.findings.push(Finding::new(
            HASH_ITER,
            "crates/x/src/lib.rs",
            7,
            "iterates a HashMap \"m\"".to_string(),
        ));
        let json = outcome.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\\\"m\\\""));
        assert!(json.contains("\"hash_iter\": 1"));
    }

    #[test]
    fn escaping_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn display_is_file_line_lint() {
        let f = Finding::new(WALL_CLOCK, "src/lib.rs", 12, "no".into());
        assert_eq!(f.to_string(), "src/lib.rs:12: [wall_clock] no");
    }
}
