//! The determinism, unsafe/panic-budget and format-constant passes.
//!
//! All passes are token-pattern matchers over [`crate::lexer`] output —
//! deliberately flow- and type-insensitive. Where that loses precision
//! (a hash map smuggled through a lock guard), the lint errs on silence;
//! where it over-approximates (a name that merely *looks* like a tracked
//! map), the `// fnpr-lint: allow(…)` escape hatch with a mandatory
//! reason keeps the suppression auditable.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Tok;
use crate::report::{
    Finding, ENTROPY, ENV_READ, FORMAT_CONSTANT, HASH_ITER, PANIC_BUDGET, UNSAFE_BLOCK, WALL_CLOCK,
};
use crate::scan::SourceFile;

/// Crates whose *library* code is exempt from the determinism lints:
/// telemetry (`fnpr-obs`) and the figure/bench harness (`fnpr-bench`) are
/// write-only side channels that legitimately read clocks and env vars.
pub const DETERMINISM_EXEMPT_CRATES: &[&str] = &["obs", "bench"];

/// Files allowed to contain `unsafe` (workspace-relative). Empty: the
/// whole tree is `#![forbid(unsafe_code)]` today — grow this list
/// consciously, one reviewed file at a time.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

/// Magic wire/format tags that must be defined as a `const` in exactly
/// one crate and only referenced elsewhere.
pub const FORMAT_TAGS: &[&str] = &["FNPR1", "FNPR2", "FNPRW1", "FNPRL1"];

/// Schema-version constants that must have exactly one defining crate.
pub const VERSION_CONSTS: &[&str] = &[
    "ANALYSIS_VERSION",
    "LEDGER_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
];

/// Hash-container iteration methods whose visit order is nondeterministic.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Whether the determinism family runs on this file at all.
#[must_use]
pub fn determinism_applies(file: &SourceFile) -> bool {
    !file.is_test && !file.is_sink && !DETERMINISM_EXEMPT_CRATES.contains(&file.crate_name.as_str())
}

/// Collects identifiers bound or typed as `HashMap`/`HashSet` in `file`:
/// `name: [&[mut]] [path::]Hash{Map,Set}<…>` annotations (lets, fields,
/// params) and `let [mut] name = Hash{Map,Set}::…` initializers.
#[must_use]
pub fn tracked_hash_bindings(file: &SourceFile) -> BTreeSet<String> {
    let lexed = &file.lexed;
    let mut tracked = BTreeSet::new();
    for i in 0..lexed.tokens.len() {
        // `name : <type>` — lone colon only (skip `::`).
        if lexed.punct(i) == Some(':')
            && lexed.punct(i + 1) != Some(':')
            && (i == 0 || lexed.punct(i - 1) != Some(':'))
        {
            let (Some(name), mut j) = (lexed.ident(i.wrapping_sub(1)), i + 1) else {
                continue;
            };
            // Skip reference/mut prefixes and lifetimes.
            while lexed.punct(j) == Some('&')
                || lexed.ident(j) == Some("mut")
                || matches!(lexed.tokens.get(j).map(|t| &t.tok), Some(Tok::Lifetime(_)))
            {
                j += 1;
            }
            // Walk the type path to its final segment.
            let mut last = None;
            while let Some(seg) = lexed.ident(j) {
                last = Some(seg);
                if lexed.is_path_sep(j + 1) {
                    j += 3;
                } else {
                    break;
                }
            }
            if matches!(last, Some("HashMap" | "HashSet")) {
                tracked.insert(name.to_string());
            }
        }
        // `let [mut] name = … Hash{Map,Set} :: …` up to the terminator.
        if lexed.ident(i) == Some("let") {
            let mut j = i + 1;
            if lexed.ident(j) == Some("mut") {
                j += 1;
            }
            let Some(name) = lexed.ident(j) else { continue };
            if lexed.punct(j + 1) != Some('=') {
                continue;
            }
            let mut k = j + 2;
            while k < lexed.tokens.len() {
                match lexed.punct(k) {
                    Some(';') | Some('{') => break,
                    _ => {}
                }
                if matches!(lexed.ident(k), Some("HashMap" | "HashSet")) && lexed.is_path_sep(k + 1)
                {
                    tracked.insert(name.to_string());
                    break;
                }
                k += 1;
            }
        }
    }
    tracked
}

/// The determinism pass: hash iteration, wall clocks, entropy and env
/// reads, all gated on [`determinism_applies`], test regions and allow
/// directives.
pub fn determinism_pass(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !determinism_applies(file) {
        return;
    }
    let tracked = tracked_hash_bindings(file);
    let lexed = &file.lexed;
    let flag = |findings: &mut Vec<Finding>, lint, line: u32, message: String| {
        if !file.allowed(line, lint) {
            findings.push(Finding::new(lint, &file.rel_path, line, message));
        }
    };
    for i in 0..lexed.tokens.len() {
        if file.in_test_region(i) {
            continue;
        }
        // `<recv>.iter()` family on a tracked binding / `self.field`.
        if lexed.punct(i) == Some('.')
            && lexed
                .ident(i + 1)
                .is_some_and(|m| ITER_METHODS.contains(&m))
            && lexed.punct(i + 2) == Some('(')
        {
            let receiver = match lexed.ident(i.wrapping_sub(1)) {
                Some("self") => None, // bare `self.iter()` — not a map
                Some(name)
                    if i >= 3
                        && lexed.punct(i - 2) == Some('.')
                        && lexed.ident(i - 3) == Some("self") =>
                {
                    Some(name)
                }
                Some(_) if i >= 2 && lexed.punct(i - 2) == Some('.') => None, // deeper chain
                Some(name) => Some(name),
                None => None,
            };
            if let Some(name) = receiver {
                if tracked.contains(name) {
                    flag(
                        findings,
                        HASH_ITER,
                        lexed.line(i + 1),
                        format!(
                            "`{name}.{}()` iterates a HashMap/HashSet in nondeterministic \
                             order; use a BTreeMap/BTreeSet or sort the keys first",
                            lexed.ident(i + 1).unwrap_or_default()
                        ),
                    );
                }
            }
        }
        // `for pat in <expr> {` where expr is `[&[mut]] name` or
        // `[&[mut]] self.field` of a tracked binding.
        if lexed.ident(i) == Some("for") {
            if let Some((name, line)) = for_loop_hash_target(file, i, &tracked) {
                flag(
                    findings,
                    HASH_ITER,
                    line,
                    format!(
                        "`for … in {name}` iterates a HashMap/HashSet in nondeterministic \
                         order; use a BTreeMap/BTreeSet or sort the keys first"
                    ),
                );
            }
        }
        // Wall clocks.
        if matches!(lexed.ident(i), Some("Instant" | "SystemTime"))
            && lexed.is_path_sep(i + 1)
            && lexed.ident(i + 3) == Some("now")
        {
            flag(
                findings,
                WALL_CLOCK,
                lexed.line(i + 3),
                format!(
                    "`{}::now` in aggregate-feeding code; clocks may only feed \
                     write-only telemetry (fnpr-obs) or declared sinks",
                    lexed.ident(i).unwrap_or_default()
                ),
            );
        }
        // Ambient entropy.
        if matches!(
            lexed.ident(i),
            Some("thread_rng" | "from_entropy" | "OsRng")
        ) {
            flag(
                findings,
                ENTROPY,
                lexed.line(i),
                format!(
                    "`{}` injects ambient randomness; derive RNG streams from \
                     (seed, grid coordinates) instead",
                    lexed.ident(i).unwrap_or_default()
                ),
            );
        }
        // Environment reads.
        if lexed.ident(i) == Some("env")
            && lexed.is_path_sep(i + 1)
            && matches!(
                lexed.ident(i + 3),
                Some("var" | "var_os" | "vars" | "vars_os")
            )
        {
            flag(
                findings,
                ENV_READ,
                lexed.line(i + 3),
                format!(
                    "`env::{}` read in aggregate-feeding code; route configuration \
                     through the validated spec instead",
                    lexed.ident(i + 3).unwrap_or_default()
                ),
            );
        }
    }
}

/// For the `for` keyword at `for_idx`, resolves the loop target if it is
/// a plain (possibly referenced) tracked binding or `self.field`.
fn for_loop_hash_target(
    file: &SourceFile,
    for_idx: usize,
    tracked: &BTreeSet<String>,
) -> Option<(String, u32)> {
    let lexed = &file.lexed;
    // Find `in` at paren/bracket depth 0 (it cannot appear in a pattern).
    let mut depth = 0i32;
    let mut in_idx = None;
    for j in for_idx + 1..lexed.tokens.len().min(for_idx + 64) {
        match lexed.punct(j) {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('{') => return None, // hit a body without `in`: not a for-loop
            _ => {}
        }
        if depth == 0 && lexed.ident(j) == Some("in") {
            in_idx = Some(j);
            break;
        }
    }
    let in_idx = in_idx?;
    // Expression tokens up to the body `{`.
    let mut j = in_idx + 1;
    while lexed.punct(j) == Some('&') || lexed.ident(j) == Some("mut") {
        j += 1;
    }
    let first = lexed.ident(j)?;
    let (name, end) = if first == "self" && lexed.punct(j + 1) == Some('.') {
        (lexed.ident(j + 2)?.to_string(), j + 3)
    } else {
        (first.to_string(), j + 1)
    };
    if lexed.punct(end) != Some('{') {
        return None; // longer expression — method-call rule covers chains
    }
    if tracked.contains(&name) {
        Some((name, lexed.line(in_idx)))
    } else {
        None
    }
}

/// The `unsafe` pass: any `unsafe` keyword outside test code and the
/// explicit [`UNSAFE_ALLOWLIST`] is a finding.
pub fn unsafe_pass(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.is_test || UNSAFE_ALLOWLIST.contains(&file.rel_path.as_str()) {
        return;
    }
    let lexed = &file.lexed;
    for i in 0..lexed.tokens.len() {
        if lexed.ident(i) == Some("unsafe") && !file.in_test_region(i) {
            let line = lexed.line(i);
            if !file.allowed(line, UNSAFE_BLOCK) {
                findings.push(Finding::new(
                    UNSAFE_BLOCK,
                    &file.rel_path,
                    line,
                    "`unsafe` outside the allowlist (crates/lint/src/lints.rs \
                     UNSAFE_ALLOWLIST); every crate is #![forbid(unsafe_code)]"
                        .to_string(),
                ));
            }
        }
    }
}

/// Per-crate `unwrap()`/`expect()` call sites in library code (non-test,
/// non-sink, outside test regions, minus `allow(panic_budget, …)` lines).
pub fn collect_panic_sites(file: &SourceFile, sites: &mut BTreeMap<String, Vec<(String, u32)>>) {
    if file.is_test || file.is_sink {
        return;
    }
    let lexed = &file.lexed;
    for i in 0..lexed.tokens.len() {
        if lexed.punct(i) == Some('.')
            && matches!(lexed.ident(i + 1), Some("unwrap" | "expect"))
            && lexed.punct(i + 2) == Some('(')
            && !file.in_test_region(i)
        {
            let line = lexed.line(i + 1);
            if !file.allowed(line, PANIC_BUDGET) {
                sites
                    .entry(file.crate_name.clone())
                    .or_default()
                    .push((file.rel_path.clone(), line));
            }
        }
    }
}

/// Cross-file format-constant state: definitions and inline literal uses
/// of each watched tag / version constant.
#[derive(Default)]
pub struct FormatSites {
    /// tag → const-definition sites (file, line, crate).
    pub tag_defs: BTreeMap<String, Vec<(String, u32, String)>>,
    /// tag → non-definition string-literal sites.
    pub tag_inline: Vec<(String, String, u32)>,
    /// version const → definition sites (file, line, crate).
    pub const_defs: BTreeMap<String, Vec<(String, u32, String)>>,
}

/// Collects format-constant sites from one file (skips test files and
/// test regions; comments never reach the token stream).
pub fn collect_format_sites(file: &SourceFile, sites: &mut FormatSites) {
    // The lint crate necessarily enumerates every watched tag in
    // FORMAT_TAGS, so it is exempt from its own pass.
    if file.is_test || file.crate_name == "lint" {
        return;
    }
    let lexed = &file.lexed;
    for i in 0..lexed.tokens.len() {
        if file.in_test_region(i) {
            continue;
        }
        if let Some(value) = lexed.str_value(i) {
            for tag in FORMAT_TAGS {
                if !literal_mentions_tag(value, tag) {
                    continue;
                }
                let line = lexed.line(i);
                if is_const_definition(file, i) {
                    sites.tag_defs.entry((*tag).to_string()).or_default().push((
                        file.rel_path.clone(),
                        line,
                        file.crate_name.clone(),
                    ));
                } else if !file.allowed(line, FORMAT_CONSTANT) {
                    sites
                        .tag_inline
                        .push(((*tag).to_string(), file.rel_path.clone(), line));
                }
            }
        }
        if lexed.ident(i) == Some("const")
            && lexed
                .ident(i + 1)
                .is_some_and(|name| VERSION_CONSTS.contains(&name))
        {
            sites
                .const_defs
                .entry(lexed.ident(i + 1).unwrap_or_default().to_string())
                .or_default()
                .push((
                    file.rel_path.clone(),
                    lexed.line(i + 1),
                    file.crate_name.clone(),
                ));
        }
    }
}

/// A literal "mentions" a tag only when the tag appears on a token
/// boundary (so `FNPRW1` does not count as a mention of `FNPR1`… which it
/// would not anyway, but `FNPR1x` must not either).
fn literal_mentions_tag(value: &str, tag: &str) -> bool {
    let mut rest = value;
    while let Some(pos) = rest.find(tag) {
        let after = rest[pos + tag.len()..].chars().next();
        if !after.is_some_and(|c| c.is_ascii_alphanumeric()) {
            return true;
        }
        rest = &rest[pos + tag.len()..];
    }
    false
}

/// Whether the string literal at token `idx` is the initializer of a
/// `const` item (walk back to the statement start looking for `const`).
fn is_const_definition(file: &SourceFile, idx: usize) -> bool {
    let lexed = &file.lexed;
    let mut j = idx;
    while j > 0 {
        j -= 1;
        match lexed.punct(j) {
            Some(';') | Some('{') | Some('}') => return false,
            _ => {}
        }
        if lexed.ident(j) == Some("const") {
            return true;
        }
    }
    false
}

/// Reconciles the collected [`FormatSites`] into findings: multi-crate
/// definitions and inline (non-const) tag literals.
pub fn format_constant_findings(sites: &FormatSites, findings: &mut Vec<Finding>) {
    for (name, defs) in sites.tag_defs.iter().chain(sites.const_defs.iter()) {
        let crates: BTreeSet<&str> = defs.iter().map(|(_, _, c)| c.as_str()).collect();
        if crates.len() > 1 {
            for (file, line, krate) in defs.iter().skip(1) {
                findings.push(Finding::new(
                    FORMAT_CONSTANT,
                    file,
                    *line,
                    format!(
                        "`{name}` is defined in multiple crates ({}); it must have \
                         exactly one home ({} also defines it)",
                        krate, defs[0].0
                    ),
                ));
            }
        }
    }
    for (tag, file, line) in &sites.tag_inline {
        let home = sites
            .tag_defs
            .get(tag)
            .and_then(|d| d.first())
            .map_or_else(|| "its defining crate".to_string(), |(f, _, _)| f.clone());
        findings.push(Finding::new(
            FORMAT_CONSTANT,
            file,
            *line,
            format!(
                "magic tag `{tag}` embedded in a string literal; reference the \
                 const from {home} so a version bump cannot drift"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::analyze_source;

    fn run_determinism(src: &str) -> Vec<Finding> {
        let file = analyze_source("crates/demo/src/lib.rs", src);
        let mut findings = Vec::new();
        determinism_pass(&file, &mut findings);
        findings
    }

    #[test]
    fn hash_map_iteration_is_flagged() {
        let f = run_determinism(
            "use std::collections::HashMap;\n\
             fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &m {}\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, HASH_ITER);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn hash_map_keys_on_self_field() {
        let f = run_determinism(
            "struct S { index: HashMap<u32, u32> }\n\
             impl S {\n    fn g(&self) { for k in self.index.keys() { let _ = k; } }\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn btreemap_is_clean() {
        let f = run_determinism(
            "fn f() {\n    let m: std::collections::BTreeMap<u32, u32> = Default::default();\n\
             \u{20}   for (k, v) in &m {}\n}\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn hash_map_lookup_is_clean() {
        let f = run_determinism(
            "fn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n\
             \u{20}   m.insert(1, 2);\n    let _ = m.get(&1);\n}\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn vec_of_hash_maps_outer_iteration_is_clean() {
        // Iterating the Vec is deterministic; only the map itself is hash
        // ordered.
        let f = run_determinism(
            "struct S { shards: Vec<HashMap<u32, u32>> }\n\
             impl S {\n    fn g(&self) { for shard in &self.shards { let _ = shard; } }\n}\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn clocks_entropy_env_flagged_and_allow_suppresses() {
        let src = "fn f() {\n\
            \u{20}   let t = Instant::now();\n\
            \u{20}   let r = thread_rng();\n\
            \u{20}   let v = std::env::var(\"X\");\n\
            \u{20}   let ok = Instant::now(); // fnpr-lint: allow(wall_clock, \"telemetry\")\n\
            }\n";
        let f = run_determinism(src);
        let lints: Vec<_> = f.iter().map(|f| (f.lint, f.line)).collect();
        assert_eq!(lints, vec![(WALL_CLOCK, 2), (ENTROPY, 3), (ENV_READ, 4)]);
    }

    #[test]
    fn sinks_tests_and_exempt_crates_are_skipped() {
        for path in [
            "crates/campaign/src/bin/tool.rs",
            "crates/campaign/tests/t.rs",
            "crates/obs/src/lib.rs",
            "crates/bench/src/lib.rs",
        ] {
            let file = analyze_source(path, "fn f() { let t = Instant::now(); }");
            let mut findings = Vec::new();
            determinism_pass(&file, &mut findings);
            assert!(findings.is_empty(), "{path} should be exempt");
        }
    }

    #[test]
    fn unsafe_flagged_outside_allowlist() {
        let file = analyze_source(
            "crates/demo/src/lib.rs",
            "fn f() { unsafe { std::hint::unreachable_unchecked() } }",
        );
        let mut findings = Vec::new();
        unsafe_pass(&file, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, UNSAFE_BLOCK);
    }

    #[test]
    fn panic_sites_skip_tests_and_allows() {
        let src = "fn f() {\n\
            \u{20}   x.unwrap();\n\
            \u{20}   y.expect(\"m\"); // fnpr-lint: allow(panic_budget, \"lock poisoning is fatal\")\n\
            }\n\
            #[cfg(test)]\nmod tests { fn t() { z.unwrap(); } }\n";
        let file = analyze_source("crates/demo/src/lib.rs", src);
        let mut sites = BTreeMap::new();
        collect_panic_sites(&file, &mut sites);
        assert_eq!(
            sites["demo"],
            vec![("crates/demo/src/lib.rs".to_string(), 2)]
        );
    }

    #[test]
    fn format_tag_const_definition_vs_inline() {
        let def = analyze_source(
            "crates/a/src/lib.rs",
            "pub const FORMAT: &str = \"FNPR9\";\npub const STORE: &str = \"FNPR2\";\n",
        );
        let inline = analyze_source(
            "crates/b/src/lib.rs",
            "fn f() { let s = \"FNPR2 1234 payload\"; }\n",
        );
        let mut sites = FormatSites::default();
        collect_format_sites(&def, &mut sites);
        collect_format_sites(&inline, &mut sites);
        let mut findings = Vec::new();
        format_constant_findings(&sites, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "crates/b/src/lib.rs");
        assert!(findings[0].message.contains("FNPR2"));
    }

    #[test]
    fn tag_mention_requires_boundary() {
        assert!(literal_mentions_tag("FNPR2 x", "FNPR2"));
        assert!(literal_mentions_tag("FNPR2", "FNPR2"));
        assert!(!literal_mentions_tag("FNPR2abc", "FNPR2"));
        assert!(!literal_mentions_tag("FNPRW1", "FNPR1"));
    }

    #[test]
    fn duplicate_version_const_definitions_flagged() {
        let a = analyze_source(
            "crates/a/src/lib.rs",
            "pub const ANALYSIS_VERSION: u64 = 1;",
        );
        let b = analyze_source(
            "crates/b/src/lib.rs",
            "pub const ANALYSIS_VERSION: u64 = 2;",
        );
        let mut sites = FormatSites::default();
        collect_format_sites(&a, &mut sites);
        collect_format_sites(&b, &mut sites);
        let mut findings = Vec::new();
        format_constant_findings(&sites, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "crates/b/src/lib.rs");
    }
}
