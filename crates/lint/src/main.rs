//! The `fnpr-lint` CLI.
//!
//! ```text
//! fnpr-lint check [--json] [--fix-registry] [--fix-ratchet] [--root PATH]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 on findings, 2 on usage or I/O
//! errors. Human output is `file:line: [lint] message` per finding;
//! `--json` emits the schema-v1 report on stdout instead (notes always go
//! to stderr).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fnpr_lint::{check_workspace, CheckOptions};

const USAGE: &str =
    "usage: fnpr-lint check [--json] [--fix-registry] [--fix-ratchet] [--root PATH]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("check") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut json = false;
    let mut opts = CheckOptions::default();
    let mut root_arg: Option<PathBuf> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--fix-registry" => opts.fix_registry = true,
            "--fix-ratchet" => opts.fix_ratchet = true,
            "--root" => match it.next() {
                Some(path) => root_arg = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg.map_or_else(discover_root, Ok) {
        Ok(root) => root,
        Err(err) => {
            eprintln!("fnpr-lint: {err}");
            return ExitCode::from(2);
        }
    };

    fnpr_obs::set_enabled(true);
    let outcome = match check_workspace(&root, opts) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("fnpr-lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };

    for note in &outcome.notes {
        eprintln!("note: {note}");
    }
    if json {
        print!("{}", outcome.to_json());
    } else {
        for finding in &outcome.findings {
            println!("{finding}");
        }
        eprintln!(
            "fnpr-lint: {} files scanned, {} finding(s)",
            outcome.files_scanned,
            outcome.findings.len()
        );
    }
    if outcome.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn discover_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| e.to_string())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace Cargo.toml above {} (use --root)",
                    start.display()
                ))
            }
        }
    }
}
