//! fnpr-lint: workspace-native static analysis for the fnpr workspace.
//!
//! Four lint families, all built on the hand-rolled lexer in
//! [`lexer`] (zero parser dependencies — the tool must build in the
//! offline container and can never disagree with the vendored shims
//! about syntax support):
//!
//! 1. **Determinism** (`hash_iter`, `wall_clock`, `entropy`, `env_read`)
//!    — the reproducibility invariants behind every aggregate the
//!    campaign layer produces.
//! 2. **Telemetry** (`metric_name`, `metric_type`, `metric_registry`) —
//!    metric names are well-shaped, single-typed and enumerated in the
//!    checked-in `METRICS.md`.
//! 3. **Wire formats** (`format_constant`) — magic tags and schema
//!    versions have exactly one defining crate.
//! 4. **Panic budget** (`unsafe_block`, `panic_budget`) — `unsafe` is
//!    allowlisted, `unwrap()`/`expect()` in library code only ratchets
//!    down.
//!
//! The entry point is [`check_workspace`]; the `fnpr-lint` binary wraps
//! it as `fnpr-lint check [--json] [--fix-registry] [--fix-ratchet]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod lexer;
pub mod lints;
pub mod metrics;
pub mod report;
pub mod scan;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use metrics::MetricUse;
use report::{CheckOutcome, Finding, PANIC_BUDGET};
use scan::SourceFile;

/// The registry file name, at the workspace root.
pub const REGISTRY_FILE: &str = "METRICS.md";

/// The per-crate panic-budget ratchet file name (`crates/<c>/LINT_RATCHET`
/// or `LINT_RATCHET` at the root for the root package).
pub const RATCHET_FILE: &str = "LINT_RATCHET";

/// Behavior switches for [`check_workspace`].
#[derive(Debug, Default, Clone, Copy)]
pub struct CheckOptions {
    /// Regenerate `METRICS.md` from the scanned metric uses (preserving
    /// descriptions) instead of reporting registry drift.
    pub fix_registry: bool,
    /// Reseed every `LINT_RATCHET` file at the current `unwrap`/`expect`
    /// counts instead of reporting budget overruns.
    pub fix_ratchet: bool,
}

/// Runs every lint pass over the workspace rooted at `root`.
///
/// Findings come back sorted by (file, line, lint); `notes` carries
/// non-failing observations such as ratchet slack. The run records
/// `lint.files_scanned` and `lint.findings.<lint>` counters through
/// fnpr-obs (visible when telemetry is enabled).
///
/// # Errors
///
/// Propagates filesystem errors from the walk, the source reads and the
/// `--fix-*` writes.
pub fn check_workspace(root: &Path, opts: CheckOptions) -> std::io::Result<CheckOutcome> {
    let mut outcome = CheckOutcome::default();
    let mut files = Vec::new();
    for path in scan::collect_files(root)? {
        files.push(scan::load_file(root, &path)?);
    }
    outcome.files_scanned = files.len();

    let mut uses: Vec<MetricUse> = Vec::new();
    let mut panic_sites: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();
    let mut format_sites = lints::FormatSites::default();
    for file in &files {
        file.report_bad_directives(&mut outcome.findings);
        lints::determinism_pass(file, &mut outcome.findings);
        lints::unsafe_pass(file, &mut outcome.findings);
        lints::collect_panic_sites(file, &mut panic_sites);
        lints::collect_format_sites(file, &mut format_sites);
        metrics::collect_metric_uses(file, &mut uses, &mut outcome.findings);
    }
    lints::format_constant_findings(&format_sites, &mut outcome.findings);
    metrics::check_type_conflicts(&uses, &mut outcome.findings);

    check_panic_budgets(root, &files, &panic_sites, opts, &mut outcome)?;
    reconcile_registry(root, &uses, opts, &mut outcome)?;

    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));

    fnpr_obs::counter("lint.files_scanned").add(outcome.files_scanned as u64);
    for (lint, n) in outcome.counts() {
        fnpr_obs::counter(&format!("lint.findings.{lint}")).add(n as u64);
    }
    Ok(outcome)
}

/// The ratchet path for `crate_name` under `root`.
#[must_use]
pub fn ratchet_path(root: &Path, crate_name: &str) -> PathBuf {
    if crate_name == "fnpr" {
        root.join(RATCHET_FILE)
    } else {
        root.join("crates").join(crate_name).join(RATCHET_FILE)
    }
}

/// Parses `unwrap_expect = N` out of a ratchet file's text (`#` comments
/// and blank lines ignored; absent key means 0).
#[must_use]
pub fn parse_ratchet(text: &str) -> u64 {
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('#') {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            if key.trim() == "unwrap_expect" {
                return value.trim().parse().unwrap_or(0);
            }
        }
    }
    0
}

fn check_panic_budgets(
    root: &Path,
    files: &[SourceFile],
    panic_sites: &BTreeMap<String, Vec<(String, u32)>>,
    opts: CheckOptions,
    outcome: &mut CheckOutcome,
) -> std::io::Result<()> {
    // Every crate that has sites or an existing ratchet participates, so
    // a crate dropping to zero sites still gets its slack reported.
    let mut crates: Vec<&str> = panic_sites.keys().map(String::as_str).collect();
    for file in files {
        if !crates.contains(&file.crate_name.as_str()) {
            crates.push(&file.crate_name);
        }
    }
    crates.sort_unstable();
    crates.dedup();
    for crate_name in crates {
        let sites = panic_sites.get(crate_name).map_or(&[][..], Vec::as_slice);
        let count = sites.len() as u64;
        let path = ratchet_path(root, crate_name);
        let budget = match std::fs::read_to_string(&path) {
            Ok(text) => Some(parse_ratchet(&text)),
            Err(_) => None,
        };
        if opts.fix_ratchet {
            if count > 0 || budget.is_some() {
                std::fs::write(&path, render_ratchet(crate_name, count))?;
                outcome
                    .notes
                    .push(format!("ratchet: {} reseeded at {count}", path.display()));
            }
            continue;
        }
        let budget = budget.unwrap_or(0);
        if count > budget {
            let mut sorted = sites.to_vec();
            sorted.sort();
            let (file, line) = sorted[0].clone();
            outcome.findings.push(Finding::new(
                PANIC_BUDGET,
                &file,
                line,
                format!(
                    "crate `{crate_name}` has {count} unwrap()/expect() call sites in \
                     library code but its ratchet allows {budget}; handle the error, \
                     add `// fnpr-lint: allow(panic_budget, …)` at a truly \
                     infallible site, or consciously raise {}",
                    rel_display(root, &path)
                ),
            ));
        } else if count < budget {
            outcome.notes.push(format!(
                "ratchet slack: crate `{crate_name}` has {count} unwrap()/expect() \
                 sites but {} allows {budget} — tighten it",
                rel_display(root, &path)
            ));
        }
    }
    Ok(())
}

/// Renders a ratchet file for `crate_name` frozen at `count`.
#[must_use]
pub fn render_ratchet(crate_name: &str, count: u64) -> String {
    format!(
        "# fnpr-lint panic budget for `{crate_name}` (checked by the `panic_budget` lint).\n\
         # Only lower this number; `fnpr-lint check --fix-ratchet` reseeds it.\n\
         unwrap_expect = {count}\n"
    )
}

fn reconcile_registry(
    root: &Path,
    uses: &[MetricUse],
    opts: CheckOptions,
    outcome: &mut CheckOutcome,
) -> std::io::Result<()> {
    let registry_path = root.join(REGISTRY_FILE);
    let text = std::fs::read_to_string(&registry_path).unwrap_or_default();
    let rows = metrics::parse_registry(&text);
    if opts.fix_registry {
        let mut names: BTreeMap<String, String> = BTreeMap::new();
        for u in uses {
            names
                .entry(u.name.clone())
                .or_insert_with(|| u.kind.clone());
        }
        let mut descriptions: BTreeMap<String, String> = BTreeMap::new();
        for row in &rows {
            if !row.desc.is_empty() {
                descriptions.insert(row.name.clone(), row.desc.clone());
            }
        }
        let rendered = metrics::render_registry(&names, &descriptions);
        if rendered != text {
            std::fs::write(&registry_path, rendered)?;
            outcome.notes.push(format!(
                "registry: {REGISTRY_FILE} regenerated ({} metrics)",
                names.len()
            ));
        }
    } else {
        metrics::check_registry(&rows, uses, REGISTRY_FILE, &mut outcome.findings);
    }
    Ok(())
}

fn rel_display(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratchet_parses_and_defaults() {
        assert_eq!(parse_ratchet("unwrap_expect = 7\n"), 7);
        assert_eq!(parse_ratchet("# comment\nunwrap_expect=3"), 3);
        assert_eq!(parse_ratchet(""), 0);
        assert_eq!(parse_ratchet("other = 9"), 0);
        assert_eq!(parse_ratchet(&render_ratchet("campaign", 12)), 12);
    }

    #[test]
    fn ratchet_paths() {
        let root = Path::new("/ws");
        assert_eq!(
            ratchet_path(root, "campaign"),
            Path::new("/ws/crates/campaign/LINT_RATCHET")
        );
        assert_eq!(ratchet_path(root, "fnpr"), Path::new("/ws/LINT_RATCHET"));
    }
}
