//! The real workspace must stay lint-clean: zero findings, registry in
//! sync, ratchets honored. This is the same gate CI runs — if this test
//! fails, run `cargo run -p fnpr-lint -- check` for the diagnostics.

use std::path::Path;

use fnpr_lint::{check_workspace, CheckOptions};

#[test]
fn the_workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    let outcome = check_workspace(root, CheckOptions::default()).expect("workspace scan");
    assert!(
        outcome.files_scanned > 100,
        "suspiciously small scan ({} files) — wrong root?",
        outcome.files_scanned
    );
    let rendered: Vec<String> = outcome.findings.iter().map(ToString::to_string).collect();
    assert!(
        outcome.findings.is_empty(),
        "fnpr-lint findings in the workspace:\n{}",
        rendered.join("\n")
    );
}
