//! End-to-end check over the seeded fixture workspace: every lint fires
//! exactly once (twice for `format_constant`), at exactly the expected
//! `file:line`, and the CLI exits non-zero with the JSON report.

use std::path::{Path, PathBuf};

use fnpr_lint::{check_workspace, CheckOptions};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("ws")
}

fn fixture_findings() -> Vec<(String, String, u32)> {
    let outcome = check_workspace(&fixture_root(), CheckOptions::default())
        .expect("fixture scan must succeed");
    outcome
        .findings
        .iter()
        .map(|f| (f.lint.to_string(), f.file.clone(), f.line))
        .collect()
}

#[test]
fn every_seeded_violation_fires_at_its_exact_location() {
    let expected: Vec<(String, String, u32)> = [
        ("metric_registry", "METRICS.md", 6),
        ("allow_syntax", "crates/demo/src/allow_bad.rs", 5),
        ("wall_clock", "crates/demo/src/allow_bad.rs", 6),
        ("entropy", "crates/demo/src/entropy.rs", 4),
        ("env_read", "crates/demo/src/env_read.rs", 4),
        ("hash_iter", "crates/demo/src/hash_iter.rs", 6),
        ("metric_name", "crates/demo/src/metric_name.rs", 5),
        ("metric_type", "crates/demo/src/metric_type.rs", 9),
        ("panic_budget", "crates/demo/src/panic.rs", 5),
        ("metric_registry", "crates/demo/src/registry.rs", 6),
        ("unsafe_block", "crates/demo/src/unsafe_block.rs", 4),
        ("wall_clock", "crates/demo/src/wall_clock.rs", 4),
        ("format_constant", "crates/other/src/format_dup.rs", 4),
        ("format_constant", "crates/other/src/format_dup.rs", 7),
    ]
    .into_iter()
    .map(|(lint, file, line)| (lint.to_string(), file.to_string(), line))
    .collect();
    assert_eq!(fixture_findings(), expected);
}

#[test]
fn every_lint_is_exercised_by_the_fixture_tree() {
    let fired: std::collections::BTreeSet<String> = fixture_findings()
        .into_iter()
        .map(|(lint, _, _)| lint)
        .collect();
    for lint in fnpr_lint::report::LINTS {
        assert!(fired.contains(*lint), "no fixture exercises `{lint}`");
    }
}

#[test]
fn cli_exits_nonzero_with_json_report_on_the_fixture_tree() {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_fnpr-lint"))
        .args(["check", "--json", "--root"])
        .arg(fixture_root())
        .output()
        .expect("fnpr-lint binary must run");
    assert_eq!(output.status.code(), Some(1), "seeded tree must fail");
    let json = String::from_utf8(output.stdout).expect("json output is utf-8");
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    assert!(json.contains("\"hash_iter\": 1"), "{json}");
    assert!(json.contains("\"format_constant\": 2"), "{json}");
    assert!(json.contains("crates/demo/src/panic.rs"), "{json}");
}
