//! Seeded violation: an allow directive with no reason string (expected
//! at line 5) — it must not suppress the wall_clock finding at line 6.

pub fn stamp() -> std::time::Instant {
    // fnpr-lint: allow(wall_clock)
    std::time::Instant::now()
}
