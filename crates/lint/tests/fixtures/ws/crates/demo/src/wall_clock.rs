//! Seeded violation: wall clock (expected at line 4).

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
