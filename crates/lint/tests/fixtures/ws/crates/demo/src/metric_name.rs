//! Seeded violation: dynamic metric name without a declaration
//! (expected at line 5).

pub fn bump(name: &str) {
    fnpr_obs::counter(name).incr();
}
