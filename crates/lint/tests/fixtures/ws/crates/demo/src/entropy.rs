//! Seeded violation: ambient randomness (expected at line 4).

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
