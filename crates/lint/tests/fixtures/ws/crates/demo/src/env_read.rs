//! Seeded violation: env read (expected at line 4).

pub fn threads() -> usize {
    match std::env::var("FNPR_THREADS") {
        Ok(v) => v.parse().unwrap_or(1),
        Err(_) => 1,
    }
}
