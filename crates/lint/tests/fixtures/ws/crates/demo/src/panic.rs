//! Seeded violation: an `unwrap()` in library code with no ratchet file
//! for the crate (expected at line 5).

pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
