//! Seeded violation: `demo.missing.metric` is not in the fixture
//! `METRICS.md` (expected at line 6); `demo.used.total` is registered.

pub fn record() {
    fnpr_obs::counter("demo.used.total").incr();
    fnpr_obs::counter("demo.missing.metric").incr();
}
