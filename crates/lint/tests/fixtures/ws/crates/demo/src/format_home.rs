//! The legitimate home of the fixture's `FNPR2` tag.

pub const STORE_FORMAT: &str = "FNPR2";
