//! Seeded violation: one name under two instrument types (expected at
//! line 9, conflicting with the counter use at line 5).

pub fn observe(n: u64) {
    fnpr_obs::counter("demo.conflict").add(n);
}

pub fn level(n: u64) {
    fnpr_obs::gauge("demo.conflict").set(n);
}
