//! Seeded violation: `unsafe` outside the allowlist (expected at line 4).

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
