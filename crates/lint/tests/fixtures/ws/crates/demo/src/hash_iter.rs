//! Seeded violation: hash-map iteration (expected at line 6).

use std::collections::HashMap;

pub fn sum(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum()
}
