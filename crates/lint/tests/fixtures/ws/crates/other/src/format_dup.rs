//! Seeded violations: a second crate defining `FNPR2` (expected at
//! line 4) and an inline tag literal (expected at line 7).

pub const ALSO_STORE_FORMAT: &str = "FNPR2";

pub fn frame() -> String {
    format!("{} payload", "FNPR2 0001")
}
