//! The run ledger: longitudinal, append-only run records.
//!
//! A [`MetricsReport`](crate::MetricsReport) snapshot is ephemeral — it
//! describes one run and is overwritten by the next. The ledger is the
//! durable complement: one checksummed line per campaign run
//! (`LEDGER.jsonl` by convention), carrying the scenario identity,
//! throughput, hit rates and latency percentiles, so `fnpr-campaign
//! history` can answer "did run N get slower than run N-1?" without any
//! external metrics stack.
//!
//! # Layout
//!
//! The framing discipline mirrors the campaign result store
//! (`crates/campaign/src/store.rs`): an append-only text log where each
//! record is a single self-validating line —
//!
//! ```text
//! FNPRL1 <fingerprint:16hex> <len> <sum:16hex> <payload>
//! ```
//!
//! * `FNPRL1` — the ledger **format version**; unknown tokens are ignored;
//! * `fingerprint` — a hash of [`LEDGER_SCHEMA_VERSION`]; records written
//!   by a different record schema are *stale*, counted but not served;
//! * `len`/`sum` — payload byte length and checksum (over fingerprint and
//!   payload), so truncated tails and corrupted bytes are detected
//!   line-locally;
//! * `payload` — one [`RunRecord`] as compact single-line JSON.
//!
//! # Correctness contract
//!
//! *Never crash, never serve a wrong row.* Unreadable, truncated, corrupt
//! or stale lines degrade to skipped rows (counted in [`LedgerView`]); a
//! torn final line from a crashed writer is healed with a newline on the
//! next append, exactly like the result store. Appending is telemetry:
//! a failure must never turn a successful campaign into a failing one —
//! callers surface append errors as warnings.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;

use crate::report::json_f64;
use crate::span::json_string;

/// Magic token carrying the on-disk framing version. Bump on any
/// line-layout change; old lines then read as invalid.
pub const LEDGER_FORMAT: &str = "FNPRL1";

/// Version of the [`RunRecord`] payload schema. Folded into the line
/// fingerprint; bump when fields change shape or meaning, and old rows
/// become stale instead of being misread.
///
/// v2: added `recovered_shards` (shards delivered by supervision
/// recovery — redispatch reclaims plus coordinator fallback).
pub const LEDGER_SCHEMA_VERSION: u64 = 2;

/// One run of a campaign, as recorded in the ledger. Every field is a
/// flat scalar so the hand-rolled JSON writer/parser (this crate is
/// dependency-free) stays trivial.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// Payload schema version ([`LEDGER_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Wall-clock seconds since the Unix epoch at record time.
    pub unix_seconds: u64,
    /// Campaign name (from the spec).
    pub name: String,
    /// Scenario hash as hex — the join key for grouping runs of the same
    /// scenario (telemetry/output/store settings are excluded from it).
    pub scenario: String,
    /// Workload kind (`acceptance`, `soundness`, `multicore`, `cfg`).
    pub workload: String,
    /// Grid points in the scenario.
    pub grid_points: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// Throughput: grid points per wall-clock second.
    pub points_per_sec: f64,
    /// In-memory memo hits.
    pub memo_hits: u64,
    /// In-memory memo misses.
    pub memo_misses: u64,
    /// Grid points restored from the result store.
    pub points_restored: u64,
    /// Grid points computed fresh.
    pub points_computed: u64,
    /// Shared `(curve, Q)` bounds restored from the result store.
    pub bounds_restored: u64,
    /// Shared `(curve, Q)` bounds computed fresh.
    pub bounds_computed: u64,
    /// Shards that reached the aggregate through a recovery path
    /// (redispatch after a worker death or timeout, plus coordinator
    /// fallback compute). Zero for a healthy run.
    pub recovered_shards: u64,
    /// Estimated median per-point wall time, microseconds.
    pub p50_us: f64,
    /// Estimated 90th-percentile per-point wall time, microseconds.
    pub p90_us: f64,
    /// Estimated 99th-percentile per-point wall time, microseconds.
    pub p99_us: f64,
    /// Largest observed per-point wall time, microseconds.
    pub max_us: u64,
}

impl RunRecord {
    /// Serializes the record as compact single-line JSON (field order
    /// fixed, so identical records are identical bytes).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(384);
        out.push('{');
        let _ = write!(
            out,
            "\"schema\":{},\"unix_seconds\":{},\"name\":{},\"scenario\":{},\"workload\":{}",
            self.schema,
            self.unix_seconds,
            json_string(&self.name),
            json_string(&self.scenario),
            json_string(&self.workload),
        );
        let _ = write!(
            out,
            ",\"grid_points\":{},\"threads\":{},\"wall_seconds\":{},\"points_per_sec\":{}",
            self.grid_points,
            self.threads,
            json_f64(self.wall_seconds),
            json_f64(self.points_per_sec),
        );
        let _ = write!(
            out,
            ",\"memo_hits\":{},\"memo_misses\":{},\"points_restored\":{},\"points_computed\":{}",
            self.memo_hits, self.memo_misses, self.points_restored, self.points_computed,
        );
        let _ = write!(
            out,
            ",\"bounds_restored\":{},\"bounds_computed\":{},\"recovered_shards\":{}",
            self.bounds_restored, self.bounds_computed, self.recovered_shards,
        );
        let _ = write!(
            out,
            ",\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            json_f64(self.p50_us),
            json_f64(self.p90_us),
            json_f64(self.p99_us),
            self.max_us,
        );
        out
    }

    /// Parses a record from the flat JSON [`Self::to_json`] writes.
    /// `None` on any malformed payload or missing field — the caller
    /// counts the line as invalid and moves on.
    #[must_use]
    pub fn from_json(payload: &str) -> Option<Self> {
        let fields = parse_flat_object(payload)?;
        let str_field = |k: &str| -> Option<String> {
            match fields.iter().find(|(key, _)| key == k)? {
                (_, JsonScalar::Str(s)) => Some(s.clone()),
                _ => None,
            }
        };
        let num_field = |k: &str| -> Option<f64> {
            match fields.iter().find(|(key, _)| key == k)? {
                (_, JsonScalar::Num(n)) => Some(*n),
                _ => None,
            }
        };
        let u64_field = |k: &str| -> Option<u64> {
            let n = num_field(k)?;
            (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
        };
        Some(Self {
            schema: u64_field("schema")?,
            unix_seconds: u64_field("unix_seconds")?,
            name: str_field("name")?,
            scenario: str_field("scenario")?,
            workload: str_field("workload")?,
            grid_points: u64_field("grid_points")?,
            threads: u64_field("threads")?,
            wall_seconds: num_field("wall_seconds")?,
            points_per_sec: num_field("points_per_sec")?,
            memo_hits: u64_field("memo_hits")?,
            memo_misses: u64_field("memo_misses")?,
            points_restored: u64_field("points_restored")?,
            points_computed: u64_field("points_computed")?,
            bounds_restored: u64_field("bounds_restored")?,
            bounds_computed: u64_field("bounds_computed")?,
            recovered_shards: u64_field("recovered_shards")?,
            p50_us: num_field("p50_us")?,
            p90_us: num_field("p90_us")?,
            p99_us: num_field("p99_us")?,
            max_us: u64_field("max_us")?,
        })
    }
}

/// What a full ledger read produced: the valid records in file order plus
/// the skipped-line counts (diagnostics for `history`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerView {
    /// Valid, current-schema records, oldest first.
    pub records: Vec<RunRecord>,
    /// Malformed / truncated / corrupt lines skipped.
    pub invalid: u64,
    /// Well-formed lines from another schema version skipped.
    pub stale: u64,
}

/// Seconds since the Unix epoch right now (0 if the clock is somehow
/// before the epoch).
#[must_use]
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// Appends one record to the ledger at `path`, creating the file (and
/// parent directories) if absent and healing a torn final line first.
///
/// # Errors
///
/// Real I/O failures only. Callers treat them as warnings: the ledger is
/// telemetry and must never fail a successful run.
pub fn append_record(path: &Path, record: &RunRecord) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let unterminated = match std::fs::read(path) {
        Ok(bytes) => bytes.last().is_some_and(|&b| b != b'\n'),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
        Err(e) => return Err(e),
    };
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    if unterminated {
        // A crashed writer left a torn final line (it will read as
        // invalid); terminate it so this append starts on a fresh line.
        file.write_all(b"\n")?;
        crate::counter!("obs.ledger.healed").incr();
    }
    file.write_all(format_line(record).as_bytes())
}

/// Reads the whole ledger at `path`. Corrupt, truncated and stale lines
/// are counted and skipped, never fatal; only real I/O failures (including
/// a missing file) error.
///
/// # Errors
///
/// Filesystem read failures.
pub fn read_ledger(path: &Path) -> std::io::Result<LedgerView> {
    let bytes = std::fs::read(path)?;
    // Lossy decoding: a line with invalid UTF-8 cannot checksum correctly
    // and parses as invalid, which is exactly right.
    let text = String::from_utf8_lossy(&bytes);
    let mut view = LedgerView::default();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            ParsedLine::Valid(record) => view.records.push(*record),
            ParsedLine::Stale => view.stale += 1,
            ParsedLine::Invalid => view.invalid += 1,
        }
    }
    Ok(view)
}

/// The fingerprint stamped on every line this build writes: a hash of the
/// record schema version. Lines carrying any other fingerprint are stale.
#[must_use]
pub fn ledger_fingerprint() -> u64 {
    hash_words(TAG_FINGERPRINT, &[LEDGER_SCHEMA_VERSION], "")
}

/// Formats one ledger line (trailing newline included).
fn format_line(record: &RunRecord) -> String {
    let payload = record.to_json();
    debug_assert!(!payload.contains('\n'), "compact JSON is single-line");
    let fingerprint = ledger_fingerprint();
    format!(
        "{LEDGER_FORMAT} {fingerprint:016x} {len} {sum:016x} {payload}\n",
        len = payload.len(),
        sum = checksum(fingerprint, &payload),
    )
}

enum ParsedLine {
    Valid(Box<RunRecord>),
    Stale,
    Invalid,
}

/// Parses one ledger line. Anything malformed — unknown format token, bad
/// hex, wrong payload length (truncation), wrong checksum (corruption),
/// undecodable payload — is invalid; a well-formed line from another
/// schema version is stale.
fn parse_line(line: &str) -> ParsedLine {
    let mut parts = line.splitn(5, ' ');
    let (Some(magic), Some(fp), Some(len), Some(sum), Some(payload)) = (
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
    ) else {
        return ParsedLine::Invalid;
    };
    if magic != LEDGER_FORMAT {
        return ParsedLine::Invalid;
    }
    let (Ok(fp), Ok(len), Ok(sum)) = (
        u64::from_str_radix(fp, 16),
        len.parse::<usize>(),
        u64::from_str_radix(sum, 16),
    ) else {
        return ParsedLine::Invalid;
    };
    if payload.len() != len || checksum(fp, payload) != sum {
        return ParsedLine::Invalid;
    }
    if fp != ledger_fingerprint() {
        return ParsedLine::Stale;
    }
    match RunRecord::from_json(payload) {
        Some(record) => ParsedLine::Valid(Box::new(record)),
        None => ParsedLine::Invalid,
    }
}

/// Line checksum over every content-bearing field (fingerprint and
/// payload), so a bit flip anywhere fails validation.
fn checksum(fingerprint: u64, payload: &str) -> u64 {
    hash_words(TAG_CHECKSUM, &[fingerprint], payload)
}

// Domain tags for ledger-internal hashing.
const TAG_FINGERPRINT: u64 = 0x4c44_4746; // "LDGF"
const TAG_CHECKSUM: u64 = 0x4c44_4753; // "LDGS"

/// A small splitmix64-style accumulator (the same construction as the
/// campaign's `ScenarioHasher`, re-implemented locally because this crate
/// is dependency-free and sits below `fnpr-campaign`).
fn hash_words(tag: u64, words: &[u64], text: &str) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let mut state = mix(tag ^ 0x9e37_79b9_7f4a_7c15);
    for &w in words {
        state = mix(state ^ w);
    }
    for chunk in text.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        state = mix(state ^ u64::from_le_bytes(word) ^ chunk.len() as u64);
    }
    mix(state ^ text.len() as u64)
}

/// A scalar value of the flat JSON objects the ledger round-trips.
enum JsonScalar {
    Str(String),
    Num(f64),
}

/// Parses a single-level JSON object of string/number scalars (what
/// [`RunRecord::to_json`] emits) into `(key, value)` pairs in document
/// order. `None` on anything else — nesting, arrays, booleans, trailing
/// garbage. Deliberately minimal: the ledger controls both ends.
fn parse_flat_object(text: &str) -> Option<Vec<(String, JsonScalar)>> {
    let mut chars = text.trim().chars().peekable();
    let mut fields = Vec::new();
    if chars.next()? != '{' {
        return None;
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return finish(chars, fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek()? {
            '"' => JsonScalar::Str(parse_string(&mut chars)?),
            _ => JsonScalar::Num(parse_number(&mut chars)?),
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next()? {
            ',' => continue,
            '}' => return finish(chars, fields),
            _ => return None,
        }
    }
}

fn finish(
    mut rest: std::iter::Peekable<std::str::Chars<'_>>,
    fields: Vec<(String, JsonScalar)>,
) -> Option<Vec<(String, JsonScalar)>> {
    skip_ws(&mut rest);
    rest.peek().is_none().then_some(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

/// Parses a JSON string literal (opening quote included), handling the
/// escapes [`json_string`] emits plus `\uXXXX` and `\/`.
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c if (c as u32) < 0x20 => return None,
            c => out.push(c),
        }
    }
}

/// Parses a JSON number via `f64::parse` on the maximal number-shaped
/// prefix.
fn parse_number(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<f64> {
    let mut literal = String::new();
    while chars
        .peek()
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        literal.push(chars.next()?);
    }
    literal.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(throughput: f64) -> RunRecord {
        RunRecord {
            schema: LEDGER_SCHEMA_VERSION,
            unix_seconds: 1_700_000_000,
            name: "smoke".to_string(),
            scenario: "00112233445566778899aabbccddeeff".to_string(),
            workload: "acceptance".to_string(),
            grid_points: 8,
            threads: 2,
            wall_seconds: 0.25,
            points_per_sec: throughput,
            memo_hits: 3,
            memo_misses: 5,
            points_restored: 0,
            points_computed: 8,
            bounds_restored: 1,
            bounds_computed: 7,
            recovered_shards: 0,
            p50_us: 120.0,
            p90_us: 900.5,
            p99_us: 1800.25,
            max_us: 2100,
        }
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("fnpr_obs_ledger_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        path
    }

    #[test]
    fn record_json_round_trips() {
        let record = sample(32.0);
        let json = record.to_json();
        assert!(!json.contains('\n'));
        assert_eq!(RunRecord::from_json(&json), Some(record));
    }

    #[test]
    fn record_with_hostile_strings_round_trips() {
        let record = RunRecord {
            name: "quo\"te \\ back\nslash\ttab \u{1}ctl".to_string(),
            scenario: "deadbeef".to_string(),
            workload: "cfg".to_string(),
            ..sample(1.0)
        };
        assert_eq!(RunRecord::from_json(&record.to_json()), Some(record));
    }

    #[test]
    fn append_then_read_preserves_order() {
        let path = scratch("order.jsonl");
        for i in 1..=3 {
            append_record(&path, &sample(i as f64)).unwrap();
        }
        let view = read_ledger(&path).unwrap();
        assert_eq!(view.invalid, 0);
        assert_eq!(view.stale, 0);
        let rates: Vec<f64> = view.records.iter().map(|r| r.points_per_sec).collect();
        assert_eq!(rates, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn corrupt_and_truncated_lines_are_skipped_not_fatal() {
        let path = scratch("corrupt.jsonl");
        append_record(&path, &sample(1.0)).unwrap();
        // Flip a payload byte of a valid line, then add garbage and a
        // truncated copy of a real line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let good = text.clone();
        text = text.replace("\"threads\":2", "\"threads\":3");
        text.push_str("complete garbage, not a record\n");
        text.push_str(&good[..good.len() / 2]);
        text.push('\n');
        std::fs::write(&path, &text).unwrap();
        let view = read_ledger(&path).unwrap();
        assert!(view.records.is_empty(), "corrupt line served: {view:?}");
        assert_eq!(view.invalid, 3);
    }

    #[test]
    fn stale_schema_lines_are_counted_separately() {
        let path = scratch("stale.jsonl");
        append_record(&path, &sample(1.0)).unwrap();
        // Re-frame the same payload under a different fingerprint with a
        // *valid* checksum: well-formed, wrong schema.
        let payload = sample(1.0).to_json();
        let fp = ledger_fingerprint() ^ 1;
        let line = format!(
            "{LEDGER_FORMAT} {fp:016x} {} {:016x} {payload}\n",
            payload.len(),
            checksum(fp, &payload),
        );
        std::fs::write(
            &path,
            format!("{}{line}", std::fs::read_to_string(&path).unwrap()),
        )
        .unwrap();
        let view = read_ledger(&path).unwrap();
        assert_eq!(view.records.len(), 1);
        assert_eq!(view.stale, 1);
        assert_eq!(view.invalid, 0);
    }

    #[test]
    fn torn_tail_is_healed_on_next_append() {
        let path = scratch("torn.jsonl");
        append_record(&path, &sample(1.0)).unwrap();
        // Simulate a crash mid-write: drop the final newline and half the
        // last line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 10]).unwrap();
        append_record(&path, &sample(2.0)).unwrap();
        let view = read_ledger(&path).unwrap();
        assert_eq!(view.records.len(), 1, "torn line must not be served");
        assert_eq!(view.records[0].points_per_sec, 2.0);
        assert_eq!(view.invalid, 1);
    }

    #[test]
    fn missing_ledger_is_an_io_error() {
        let err = read_ledger(Path::new("/nonexistent/dir/LEDGER.jsonl")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn parser_rejects_nesting_arrays_and_garbage() {
        for text in [
            "",
            "{",
            "{}{}",
            "[1, 2]",
            "{\"a\": [1]}",
            "{\"a\": {\"b\": 1}}",
            "{\"a\": true}",
            "{\"a\": 1,}",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
        ] {
            assert!(
                RunRecord::from_json(text).is_none(),
                "accepted malformed {text:?}"
            );
        }
        // An empty object parses as an object but has no fields.
        assert!(RunRecord::from_json("{}").is_none());
    }

    #[test]
    fn u64_fields_reject_negative_and_fractional_numbers() {
        let json = sample(1.0).to_json();
        for (bad, good) in [
            ("\"threads\":-2", "\"threads\":2"),
            ("\"threads\":2.5", "\"threads\":2"),
        ] {
            let mutated = json.replace(good, bad);
            assert_ne!(mutated, json);
            // The checksum layer would catch this first in a real file;
            // the parser alone must also refuse.
            assert!(RunRecord::from_json(&mutated).is_none(), "{bad}");
        }
    }

    #[test]
    fn fingerprint_tracks_schema_version() {
        // A fixed sanity pin: the fingerprint derives from the schema
        // constant, not from ambient state.
        assert_eq!(ledger_fingerprint(), ledger_fingerprint());
        assert_ne!(ledger_fingerprint(), 0);
    }
}
