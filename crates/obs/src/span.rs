//! Scoped spans and Chrome trace-event export.
//!
//! A [`Span`] measures a region of code on the monotonic clock and
//! attributes it to the recording thread (a small per-thread ordinal, not
//! the OS id — Perfetto tracks read better that way) and optionally to a
//! campaign shard. Spans are counted always (cheap), but full events are
//! buffered only while *trace collection* is on
//! ([`set_trace_collection`]) — a million-point campaign should be able
//! to run with `--metrics` without buffering a million span records.
//!
//! The export format is the Chrome trace-event JSON array format
//! (`{"traceEvents": [...]}` with `ph: "X"` complete events, microsecond
//! timestamps relative to the first span): load the file in
//! `chrome://tracing` or drop it into <https://ui.perfetto.dev>.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether finished spans are buffered as trace events ([`Span`] cost
/// stays a counter bump otherwise).
static TRACE_ON: AtomicBool = AtomicBool::new(false);

/// Total spans finished since process start (or the last
/// [`reset`](crate::reset)); counted whenever telemetry is enabled,
/// regardless of trace collection.
static SPAN_COUNT: AtomicU64 = AtomicU64::new(0);

/// Hard cap on buffered trace events; beyond it spans are counted but
/// their events dropped (tracked by the `obs.trace.dropped` counter), so
/// an unexpectedly huge campaign degrades instead of exhausting memory.
const TRACE_EVENT_CAP: usize = 1 << 20;

/// Turns trace-event buffering on or off (requires
/// [`crate::set_enabled`] too — spans are inert while telemetry is off).
pub fn set_trace_collection(on: bool) {
    TRACE_ON.store(on, Ordering::Relaxed);
}

/// Whether finished spans are currently buffered as trace events.
#[must_use]
pub fn trace_collection() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Spans finished so far (whenever telemetry was enabled).
#[must_use]
pub fn span_count() -> u64 {
    SPAN_COUNT.load(Ordering::Relaxed)
}

/// Zeroes the span count and drops buffered events (test support).
pub(crate) fn reset() {
    SPAN_COUNT.store(0, Ordering::Relaxed);
    buffer().lock().expect("trace buffer poisoned").clear();
}

/// The trace epoch: timestamps are microseconds since the first span of
/// the process, which keeps them small and the JSON compact.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn buffer() -> &'static Mutex<Vec<TraceEvent>> {
    static BUFFER: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    BUFFER.get_or_init(|| Mutex::new(Vec::new()))
}

/// Small dense per-thread ordinal (1, 2, 3…) used as the trace `tid`.
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

/// One finished span, in Chrome trace-event terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (e.g. `pipeline.occupancy`).
    pub name: &'static str,
    /// Category (the owning layer, e.g. `pipeline`).
    pub cat: &'static str,
    /// Start, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recording thread's dense ordinal.
    pub tid: u64,
    /// Campaign shard index, when attributed.
    pub shard: Option<u64>,
}

struct ActiveSpan {
    name: &'static str,
    cat: &'static str,
    shard: Option<u64>,
    start: Instant,
}

/// A scope guard measuring from construction to drop. Obtain via
/// [`span`]/[`span_shard`]; inert (zero work on drop) when telemetry is
/// disabled at construction.
pub struct Span {
    active: Option<ActiveSpan>,
}

/// Opens a span named `name` in category `cat` (the owning layer).
#[inline]
#[must_use]
pub fn span(name: &'static str, cat: &'static str) -> Span {
    begin(name, cat, None)
}

/// [`span`] attributed to campaign shard `shard`.
#[inline]
#[must_use]
pub fn span_shard(name: &'static str, cat: &'static str, shard: u64) -> Span {
    begin(name, cat, Some(shard))
}

#[inline]
fn begin(name: &'static str, cat: &'static str, shard: Option<u64>) -> Span {
    if !crate::enabled() {
        return Span { active: None };
    }
    // Touch the epoch before taking the start time so `start >= epoch`
    // holds for the very first span too.
    let _ = epoch();
    Span {
        active: Some(ActiveSpan {
            name,
            cat,
            shard,
            start: Instant::now(),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        SPAN_COUNT.fetch_add(1, Ordering::Relaxed);
        if !trace_collection() {
            return;
        }
        let end = Instant::now();
        let ts_us = active
            .start
            .checked_duration_since(epoch())
            .map_or(0, |d| d.as_micros() as u64);
        let dur_us = end
            .checked_duration_since(active.start)
            .map_or(0, |d| d.as_micros() as u64);
        let event = TraceEvent {
            name: active.name,
            cat: active.cat,
            ts_us,
            dur_us,
            tid: thread_ordinal(),
            shard: active.shard,
        };
        let mut buf = buffer().lock().expect("trace buffer poisoned");
        if buf.len() < TRACE_EVENT_CAP {
            buf.push(event);
        } else {
            drop(buf);
            crate::counter!("obs.trace.dropped").incr();
        }
    }
}

/// Drains and returns every buffered trace event.
#[must_use]
pub fn take_trace_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *buffer().lock().expect("trace buffer poisoned"))
}

/// Serializes events as Chrome trace-event JSON (the object form with a
/// `traceEvents` array of `ph: "X"` complete events).
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        let args = match e.shard {
            Some(shard) => format!(",\"args\":{{\"shard\":{shard}}}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}{args}}}{}\n",
            json_string(e.name),
            json_string(e.cat),
            e.ts_us,
            e.dur_us,
            e.tid,
            if i + 1 < events.len() { "," } else { "" },
        ));
    }
    out.push_str("]}\n");
    out
}

/// Drains the buffer and writes it to `path` as Chrome trace JSON.
///
/// # Errors
///
/// Propagates the filesystem write error.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    let events = take_trace_events();
    std::fs::write(path, chrome_trace_json(&events))
}

/// Escapes `s` as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_count_only_when_enabled() {
        let _write = crate::testsync::FLAG.write().unwrap();
        let was = crate::enabled();
        crate::set_enabled(false);
        let before = span_count();
        {
            let _s = span("test.span.off", "test");
        }
        assert_eq!(span_count(), before);
        crate::set_enabled(true);
        {
            let _s = span("test.span.on", "test");
        }
        assert!(span_count() > before);
        crate::set_enabled(was);
    }

    #[test]
    fn trace_events_record_attribution() {
        let _read = crate::testsync::FLAG.read().unwrap();
        crate::set_enabled(true);
        set_trace_collection(true);
        {
            let _s = span_shard("test.span.shard", "test", 42);
        }
        set_trace_collection(false);
        let events = take_trace_events();
        let ours: Vec<_> = events
            .iter()
            .filter(|e| e.name == "test.span.shard")
            .collect();
        assert!(!ours.is_empty());
        assert_eq!(ours[0].shard, Some(42));
        assert!(ours[0].tid >= 1);
    }

    #[test]
    fn chrome_json_shape_is_valid() {
        let events = vec![
            TraceEvent {
                name: "a",
                cat: "test",
                ts_us: 0,
                dur_us: 10,
                tid: 1,
                shard: Some(3),
            },
            TraceEvent {
                name: "b \"quoted\"",
                cat: "test",
                ts_us: 5,
                dur_us: 2,
                tid: 2,
                shard: None,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"shard\":3}"));
        assert!(json.contains("b \\\"quoted\\\""));
        // Exactly one separator between the two events.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_string_escapes_every_control_and_specials_exhaustively() {
        // Every C0 control plus the two mandatory escapes: the output must
        // contain no raw control bytes and no unescaped quote/backslash.
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let escaped = json_string(&format!("a{c}b"));
            assert!(
                !escaped.chars().any(|c| (c as u32) < 0x20),
                "raw control {code:#x} leaked: {escaped:?}"
            );
            assert!(escaped.starts_with('"') && escaped.ends_with('"'));
        }
        // \r and \t take their short forms, not \uXXXX.
        assert_eq!(json_string("\r"), "\"\\r\"");
        assert_eq!(json_string("\t"), "\"\\t\"");
        // Multi-byte characters pass through unescaped (JSON is UTF-8).
        assert_eq!(json_string("héllo 日本"), "\"héllo 日本\"");
    }

    #[test]
    fn hostile_names_produce_valid_trace_json() {
        // Adversarial span/category names: quotes, backslashes (Windows
        // paths), embedded newlines and control characters. The emitted
        // document must stay structurally valid JSON — balanced quotes on
        // every line, no raw control bytes, one object per event line.
        let events = vec![
            TraceEvent {
                name: "say \"hi\"",
                cat: "back\\slash",
                ts_us: 0,
                dur_us: 1,
                tid: 1,
                shard: None,
            },
            TraceEvent {
                name: "multi\nline\tname",
                cat: "ctl\u{1}\u{1f}cat",
                ts_us: 1,
                dur_us: 2,
                tid: 2,
                shard: Some(7),
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(
            !json.chars().any(|c| (c as u32) < 0x20 && c != '\n'),
            "raw control characters leaked into the document"
        );
        for line in json.lines().filter(|l| l.starts_with('{') && l.len() > 2) {
            let mut unescaped_quotes = 0usize;
            let mut escaped = false;
            for c in line.chars() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    unescaped_quotes += 1;
                }
            }
            assert_eq!(unescaped_quotes % 2, 0, "unbalanced quotes in {line:?}");
        }
        assert!(json.contains("say \\\"hi\\\""));
        assert!(json.contains("back\\\\slash"));
        assert!(json.contains("multi\\nline\\tname"));
        assert!(json.contains("ctl\\u0001\\u001fcat"));
    }

    #[test]
    fn hostile_names_round_trip_through_the_ledger_parser() {
        // The workspace keeps one JSON grammar: what `json_string` emits,
        // the ledger's flat parser must read back verbatim. This pins the
        // escaping pair from the consuming side, for every tricky shape.
        for name in [
            "say \"hi\"",
            "back\\slash\\",
            "multi\nline",
            "tab\tand\rcr",
            "ctl\u{1}\u{1f}",
            "héllo 日本",
            "",
        ] {
            let record = crate::RunRecord {
                name: name.to_string(),
                ..crate::RunRecord::default()
            };
            let parsed = crate::RunRecord::from_json(&record.to_json())
                .unwrap_or_else(|| panic!("unparseable for {name:?}"));
            assert_eq!(parsed.name, name);
        }
    }
}
