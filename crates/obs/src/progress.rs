//! The rate-limited live progress line.
//!
//! One [`ProgressMeter`] per campaign run: workers call
//! [`ProgressMeter::tick`] per finished point, and at most every
//! [`PRINT_INTERVAL_MS`] one of them wins the race to repaint the stderr
//! line (carriage-return overwrite, newline-terminated on the final
//! point). Display is opt-in ([`set_progress`]) on top of the master
//! telemetry switch, so library users and tests never see it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::Counter;

/// Minimum milliseconds between repaints.
pub const PRINT_INTERVAL_MS: u64 = 200;

static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Turns the stderr progress display on or off (requires
/// [`crate::set_enabled`] too).
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
}

/// Whether the stderr progress display is on.
#[must_use]
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// A labelled hit/miss pair rendered as a percentage (e.g. `memo 83.3%`).
struct Ratio {
    label: &'static str,
    hit: Counter,
    miss: Counter,
}

/// Tracks done/total progress for one run and paints the live line.
pub struct ProgressMeter {
    label: String,
    total: u64,
    done: AtomicU64,
    started: Instant,
    /// Milliseconds-since-start of the last repaint (CAS-guarded so
    /// exactly one racing worker repaints per interval).
    last_paint_ms: AtomicU64,
    ratios: Vec<Ratio>,
}

impl ProgressMeter {
    /// A meter for `total` work items, labelled `label` on the line.
    #[must_use]
    pub fn new(label: impl Into<String>, total: u64) -> Self {
        Self {
            label: label.into(),
            total,
            done: AtomicU64::new(0),
            started: Instant::now(),
            last_paint_ms: AtomicU64::new(0),
            ratios: Vec::new(),
        }
    }

    /// Adds a hit-rate display (`label hit/(hit+miss)%`) to the line.
    #[must_use]
    pub fn with_ratio(mut self, label: &'static str, hit: Counter, miss: Counter) -> Self {
        self.ratios.push(Ratio { label, hit, miss });
        self
    }

    /// Work items finished so far.
    #[must_use]
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Records one finished work item and, when the display is on and the
    /// rate limiter allows, repaints the stderr line.
    pub fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !crate::enabled() || !progress_enabled() {
            return;
        }
        let elapsed_ms = self.started.elapsed().as_millis() as u64;
        // `fetch_add` hands out each value exactly once, so exactly one
        // tick observes `done == total` — the one that must paint the
        // newline-terminated 100% line.
        let finished = done == self.total;
        if !self.should_paint(finished, elapsed_ms) {
            return;
        }
        let line = self.render(done, elapsed_ms);
        if finished {
            eprintln!("\r{line}");
        } else {
            eprint!("\r{line}");
        }
    }

    /// The repaint decision. Intermediate ticks race through the CAS rate
    /// limiter (one winner per [`PRINT_INTERVAL_MS`]); the finishing tick
    /// bypasses it unconditionally — a racing intermediate painter used to
    /// be able to steal the CAS from the final tick, leaving the terminal
    /// stuck below 100% for the rest of its days.
    fn should_paint(&self, finished: bool, elapsed_ms: u64) -> bool {
        if finished {
            self.last_paint_ms.store(elapsed_ms, Ordering::Relaxed);
            return true;
        }
        let last = self.last_paint_ms.load(Ordering::Relaxed);
        if elapsed_ms.saturating_sub(last) < PRINT_INTERVAL_MS {
            return false;
        }
        // One winner per interval; losers skip (their point is already
        // counted, the next repaint covers it).
        self.last_paint_ms
            .compare_exchange(last, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Renders the progress line for `done` items after `elapsed_ms`
    /// (separated from [`Self::tick`] so the format is unit-testable).
    #[must_use]
    pub fn render(&self, done: u64, elapsed_ms: u64) -> String {
        let secs = elapsed_ms as f64 / 1000.0;
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let eta = if rate > 0.0 && self.total > done {
            (self.total - done) as f64 / rate
        } else {
            0.0
        };
        let mut line = format!(
            "{}: {done}/{} points ({:.1}%), {rate:.1} points/s, ETA {eta:.1}s",
            self.label,
            self.total,
            crate::percent(done, self.total),
        );
        for ratio in &self.ratios {
            let hits = ratio.hit.value();
            let total = hits + ratio.miss.value();
            line.push_str(&format!(
                "; {} {:.1}% hit",
                ratio.label,
                crate::percent(hits, total)
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_progress_rate_eta_and_ratios() {
        let _read = crate::testsync::FLAG.read().unwrap();
        crate::set_enabled(true);
        let hit = crate::counter("test.progress.hit");
        let miss = crate::counter("test.progress.miss");
        hit.add(3);
        miss.add(1);
        let meter = ProgressMeter::new("smoke", 8).with_ratio("memo", hit, miss);
        let line = meter.render(2, 1000);
        assert!(line.starts_with("smoke: 2/8 points (25.0%)"), "{line}");
        assert!(line.contains("2.0 points/s"), "{line}");
        assert!(line.contains("ETA 3.0s"), "{line}");
        assert!(line.contains("memo 75.0% hit"), "{line}");
    }

    #[test]
    fn render_survives_zero_elapsed_and_zero_total() {
        let meter = ProgressMeter::new("empty", 0);
        let line = meter.render(0, 0);
        assert!(line.contains("0/0 points (0.0%)"), "{line}");
        assert!(line.contains("ETA 0.0s"), "{line}");
    }

    #[test]
    fn final_tick_paints_despite_the_rate_limiter() {
        let meter = ProgressMeter::new("final", 4);
        // A repaint lands at 200ms (wins the CAS)...
        assert!(meter.should_paint(false, 200));
        // ...so a tick 1ms later is inside the interval and skips...
        assert!(!meter.should_paint(false, 201));
        // ...but the finishing tick paints unconditionally, interval or
        // not — a run must never end showing less than 100%.
        assert!(meter.should_paint(true, 201));
    }

    #[test]
    fn intermediate_ticks_stay_rate_limited_after_the_fix() {
        let meter = ProgressMeter::new("limited", 100);
        assert!(meter.should_paint(false, PRINT_INTERVAL_MS));
        for ms in PRINT_INTERVAL_MS..2 * PRINT_INTERVAL_MS {
            assert!(!meter.should_paint(false, ms), "repainted at {ms}ms");
        }
        assert!(meter.should_paint(false, 2 * PRINT_INTERVAL_MS));
    }

    #[test]
    fn ticks_count_even_with_display_off() {
        let _read = crate::testsync::FLAG.read().unwrap();
        crate::set_enabled(true);
        set_progress(false);
        let meter = ProgressMeter::new("silent", 3);
        for _ in 0..3 {
            meter.tick();
        }
        assert_eq!(meter.done(), 3);
    }
}
