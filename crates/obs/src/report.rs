//! The `MetricsReport` snapshot: everything the registry knows, as
//! versioned JSON (the CLI's `--metrics PATH`).
//!
//! The writer is hand-rolled (this crate is dependency-free) but emits
//! plain standard JSON with real objects for the name → value maps, so
//! any consumer — including the workspace's own serde shim, which
//! `fnpr-campaign`'s determinism suite round-trips the file through —
//! can parse it.

use std::collections::BTreeMap;

use crate::span::json_string;

/// Version of the metrics JSON layout. Bump on breaking shape changes so
/// downstream dashboards can dispatch.
///
/// * v1 — counters/gauges/histograms (count/sum/max) + run context.
/// * v2 — histograms gained `p50`/`p90`/`p99`; the report gained
///   `scenario` and `store_path` so a snapshot can be joined to its run
///   ledger row and warm store.
pub const METRICS_SCHEMA_VERSION: u64 = 2;

/// Aggregate view of one histogram.
///
/// The percentiles are estimates interpolated inside the power-of-two
/// buckets, so they carry at most one octave of error — plenty for
/// "did the tail move?" trend questions, and cheap enough to keep the
/// record path to three relaxed atomic adds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Builds a snapshot from raw cells, deriving p50/p90/p99 by linear
    /// interpolation within the power-of-two buckets (bucket `i >= 1`
    /// spans `[2^(i-1), 2^i - 1]`; bucket 0 is exactly zero). Percentile
    /// ranks are computed against the bucket total (not `count`) so a
    /// snapshot racing concurrent `record` calls stays internally
    /// consistent, and every estimate is clamped to the observed `max`.
    #[must_use]
    pub fn from_parts(count: u64, sum: u64, max: u64, buckets: &[u64; 64]) -> Self {
        Self {
            count,
            sum,
            max,
            p50: bucket_quantile(buckets, max, 0.50),
            p90: bucket_quantile(buckets, max, 0.90),
            p99: bucket_quantile(buckets, max, 0.99),
        }
    }
}

/// The value range a power-of-two bucket covers (inclusive).
fn bucket_range(index: usize) -> (f64, f64) {
    match index {
        0 => (0.0, 0.0),
        63 => (2f64.powi(62), u64::MAX as f64),
        i => (2f64.powi(i as i32 - 1), 2f64.powi(i as i32) - 1.0),
    }
}

/// Quantile `q` (in `[0, 1]`) estimated from power-of-two bucket counts:
/// walk buckets until the cumulative count covers rank `q * total`, then
/// interpolate linearly inside that bucket's value range. Returns 0 for an
/// empty histogram.
fn bucket_quantile(buckets: &[u64; 64], max: u64, q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = q * total as f64;
    let mut cumulative = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let before = cumulative as f64;
        cumulative += n;
        if (cumulative as f64) >= target {
            let (lo, hi) = bucket_range(i);
            let fraction = ((target - before) / n as f64).clamp(0.0, 1.0);
            let estimate = lo + fraction * (hi - lo);
            return estimate.min(max as f64);
        }
    }
    max as f64
}

/// A point-in-time snapshot of the whole registry plus run-level context,
/// serialized by [`MetricsReport::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Layout version ([`METRICS_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// What ran (e.g. the campaign name).
    pub label: String,
    /// Scenario identity (the campaign's scenario hash as hex; empty when
    /// the producer has no scenario notion, e.g. the figure binaries).
    /// Joins the snapshot to its run-ledger row.
    pub scenario: String,
    /// Result-store path of the run, when one was attached.
    pub store_path: Option<String>,
    /// Total work items of the run (0 when unknown).
    pub points_total: u64,
    /// Work items finished.
    pub points_done: u64,
    /// Wall-clock seconds of the run.
    pub elapsed_seconds: f64,
    /// Spans finished (see [`crate::span_count`]).
    pub span_count: u64,
    /// Every registered counter.
    pub counters: BTreeMap<String, u64>,
    /// Every registered gauge.
    pub gauges: BTreeMap<String, u64>,
    /// Every registered histogram.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsReport {
    /// Snapshots the registry now, stamping the run-level context fields.
    #[must_use]
    pub fn gather(label: &str, points_total: u64, points_done: u64, elapsed_seconds: f64) -> Self {
        Self {
            schema_version: METRICS_SCHEMA_VERSION,
            label: label.to_string(),
            scenario: String::new(),
            store_path: None,
            points_total,
            points_done,
            elapsed_seconds,
            span_count: crate::span_count(),
            counters: crate::counters_snapshot(),
            gauges: crate::gauges_snapshot(),
            histograms: crate::histograms_snapshot(),
        }
    }

    /// Stamps the scenario identity (builder-style, for producers that
    /// have one — see the `scenario` field).
    #[must_use]
    pub fn with_scenario(mut self, scenario: &str) -> Self {
        self.scenario = scenario.to_string();
        self
    }

    /// Stamps the result-store path (builder-style).
    #[must_use]
    pub fn with_store_path(mut self, store_path: Option<&str>) -> Self {
        self.store_path = store_path.map(str::to_string);
        self
    }

    /// Serializes the report as pretty-printed JSON (objects keyed by
    /// metric name, keys sorted — the maps are `BTreeMap`s).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!("  \"label\": {},\n", json_string(&self.label)));
        out.push_str(&format!(
            "  \"scenario\": {},\n",
            json_string(&self.scenario)
        ));
        out.push_str(&format!(
            "  \"store_path\": {},\n",
            match &self.store_path {
                Some(path) => json_string(path),
                None => "null".to_string(),
            }
        ));
        out.push_str(&format!("  \"points_total\": {},\n", self.points_total));
        out.push_str(&format!("  \"points_done\": {},\n", self.points_done));
        out.push_str(&format!(
            "  \"elapsed_seconds\": {},\n",
            json_f64(self.elapsed_seconds)
        ));
        out.push_str(&format!("  \"span_count\": {},\n", self.span_count));
        push_map(&mut out, "counters", &self.counters, |v| v.to_string());
        out.push_str(",\n");
        push_map(&mut out, "gauges", &self.gauges, |v| v.to_string());
        out.push_str(",\n");
        push_map(&mut out, "histograms", &self.histograms, |h| {
            format!(
                "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count,
                h.sum,
                h.max,
                json_f64(h.p50),
                json_f64(h.p90),
                json_f64(h.p99)
            )
        });
        out.push_str("\n}\n");
        out
    }
}

/// Appends `"name": { "key": value, ... }` (no trailing newline/comma).
fn push_map<V>(
    out: &mut String,
    name: &str,
    map: &BTreeMap<String, V>,
    render: impl Fn(&V) -> String,
) {
    out.push_str(&format!("  {}: {{", json_string(name)));
    for (i, (key, value)) in map.iter().enumerate() {
        let comma = if i + 1 < map.len() { "," } else { "" };
        out.push_str(&format!(
            "\n    {}: {}{comma}",
            json_string(key),
            render(value)
        ));
    }
    if map.is_empty() {
        out.push('}');
    } else {
        out.push_str("\n  }");
    }
}

/// JSON-safe float rendering: `Display` for finite values (shortest
/// round-trip), `0` for non-finite ones (JSON has no NaN/inf).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` prints integral floats without a dot; keep them
        // unambiguously floats for typed consumers.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0".to_string()
    }
}

/// `part` as a percentage of `total` (0.0 when `total` is 0) — the one
/// shared definition of "hit rate" every stderr report uses.
#[must_use]
pub fn percent(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 * 100.0 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_contains_required_keys() {
        let _read = crate::testsync::FLAG.read().unwrap();
        crate::set_enabled(true);
        crate::counter("test.report.key").add(3);
        let report = MetricsReport::gather("unit-test", 10, 7, 1.25)
            .with_scenario("00000000deadbeef")
            .with_store_path(Some("results.fnprstore"));
        let json = report.to_json();
        for key in [
            "\"schema_version\": 2",
            "\"label\": \"unit-test\"",
            "\"scenario\": \"00000000deadbeef\"",
            "\"store_path\": \"results.fnprstore\"",
            "\"points_total\": 10",
            "\"points_done\": 7",
            "\"elapsed_seconds\": 1.25",
            "\"span_count\":",
            "\"counters\": {",
            "\"test.report.key\": 3",
            "\"gauges\": {",
            "\"histograms\": {",
        ] {
            assert!(json.contains(key), "missing {key:?} in:\n{json}");
        }
    }

    #[test]
    fn absent_store_path_renders_as_null() {
        let report = MetricsReport::gather("unit-test", 0, 0, 0.0);
        assert!(report.to_json().contains("\"store_path\": null"));
        assert!(report.to_json().contains("\"scenario\": \"\""));
    }

    #[test]
    fn histogram_json_carries_percentiles() {
        let _read = crate::testsync::FLAG.read().unwrap();
        crate::set_enabled(true);
        let h = crate::histogram("test.report.histo.percentiles");
        for v in [1, 2, 4, 8, 1000] {
            h.record(v);
        }
        let report = MetricsReport::gather("unit-test", 0, 0, 0.0);
        let json = report.to_json();
        for key in ["\"p50\":", "\"p90\":", "\"p99\":"] {
            assert!(json.contains(key), "missing {key:?} in:\n{json}");
        }
    }

    #[test]
    fn quantiles_of_an_empty_histogram_are_zero() {
        let snap = HistogramSnapshot::from_parts(0, 0, 0, &[0; 64]);
        assert_eq!((snap.p50, snap.p90, snap.p99), (0.0, 0.0, 0.0));
    }

    #[test]
    fn quantiles_are_monotone_and_clamped_to_max() {
        let mut buckets = [0u64; 64];
        // 90 small values (bucket 4: [8, 15]) and 10 large ones
        // (bucket 10: [512, 1023], observed max 600).
        buckets[4] = 90;
        buckets[10] = 10;
        let snap = HistogramSnapshot::from_parts(100, 0, 600, &buckets);
        assert!(snap.p50 >= 8.0 && snap.p50 <= 15.0, "p50 = {}", snap.p50);
        assert!(snap.p90 <= snap.p99, "p90 {} > p99 {}", snap.p90, snap.p99);
        assert!(snap.p50 <= snap.p90);
        assert!(snap.p99 <= 600.0, "p99 {} beyond observed max", snap.p99);
        assert!(snap.p99 >= 512.0, "p99 {} below the tail bucket", snap.p99);
    }

    #[test]
    fn quantiles_interpolate_inside_a_single_bucket() {
        let mut buckets = [0u64; 64];
        buckets[7] = 100; // [64, 127]
        let snap = HistogramSnapshot::from_parts(100, 0, 127, &buckets);
        assert!(snap.p50 > 64.0 && snap.p50 < 127.0, "p50 = {}", snap.p50);
        assert!(snap.p90 > snap.p50);
    }

    #[test]
    fn zero_only_histogram_quantiles_are_zero() {
        let mut buckets = [0u64; 64];
        buckets[0] = 5;
        let snap = HistogramSnapshot::from_parts(5, 0, 0, &buckets);
        assert_eq!((snap.p50, snap.p90, snap.p99), (0.0, 0.0, 0.0));
    }

    #[test]
    fn top_bucket_quantile_stays_finite() {
        let mut buckets = [0u64; 64];
        buckets[63] = 4;
        let snap = HistogramSnapshot::from_parts(4, 0, u64::MAX, &buckets);
        assert!(snap.p99.is_finite());
        assert!(snap.p99 <= u64::MAX as f64);
    }

    #[test]
    fn json_f64_always_renders_a_number() {
        assert_eq!(json_f64(1.25), "1.25");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
    }

    #[test]
    fn percent_is_safe_at_zero_total() {
        assert_eq!(percent(0, 0), 0.0);
        assert_eq!(percent(1, 2), 50.0);
        assert_eq!(percent(8, 8), 100.0);
    }

    #[test]
    fn empty_maps_render_as_empty_objects() {
        let mut out = String::new();
        push_map(&mut out, "m", &BTreeMap::<String, u64>::new(), |v| {
            v.to_string()
        });
        assert_eq!(out, "  \"m\": {}");
    }
}
