//! The `MetricsReport` snapshot: everything the registry knows, as
//! versioned JSON (the CLI's `--metrics PATH`).
//!
//! The writer is hand-rolled (this crate is dependency-free) but emits
//! plain standard JSON with real objects for the name → value maps, so
//! any consumer — including the workspace's own serde shim, which
//! `fnpr-campaign`'s determinism suite round-trips the file through —
//! can parse it.

use std::collections::BTreeMap;

use crate::span::json_string;

/// Version of the metrics JSON layout. Bump on breaking shape changes so
/// downstream dashboards can dispatch.
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Aggregate view of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

/// A point-in-time snapshot of the whole registry plus run-level context,
/// serialized by [`MetricsReport::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Layout version ([`METRICS_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// What ran (e.g. the campaign name).
    pub label: String,
    /// Total work items of the run (0 when unknown).
    pub points_total: u64,
    /// Work items finished.
    pub points_done: u64,
    /// Wall-clock seconds of the run.
    pub elapsed_seconds: f64,
    /// Spans finished (see [`crate::span_count`]).
    pub span_count: u64,
    /// Every registered counter.
    pub counters: BTreeMap<String, u64>,
    /// Every registered gauge.
    pub gauges: BTreeMap<String, u64>,
    /// Every registered histogram.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsReport {
    /// Snapshots the registry now, stamping the run-level context fields.
    #[must_use]
    pub fn gather(label: &str, points_total: u64, points_done: u64, elapsed_seconds: f64) -> Self {
        Self {
            schema_version: METRICS_SCHEMA_VERSION,
            label: label.to_string(),
            points_total,
            points_done,
            elapsed_seconds,
            span_count: crate::span_count(),
            counters: crate::counters_snapshot(),
            gauges: crate::gauges_snapshot(),
            histograms: crate::histograms_snapshot(),
        }
    }

    /// Serializes the report as pretty-printed JSON (objects keyed by
    /// metric name, keys sorted — the maps are `BTreeMap`s).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!("  \"label\": {},\n", json_string(&self.label)));
        out.push_str(&format!("  \"points_total\": {},\n", self.points_total));
        out.push_str(&format!("  \"points_done\": {},\n", self.points_done));
        out.push_str(&format!(
            "  \"elapsed_seconds\": {},\n",
            json_f64(self.elapsed_seconds)
        ));
        out.push_str(&format!("  \"span_count\": {},\n", self.span_count));
        push_map(&mut out, "counters", &self.counters, |v| v.to_string());
        out.push_str(",\n");
        push_map(&mut out, "gauges", &self.gauges, |v| v.to_string());
        out.push_str(",\n");
        push_map(&mut out, "histograms", &self.histograms, |h| {
            format!(
                "{{\"count\": {}, \"sum\": {}, \"max\": {}}}",
                h.count, h.sum, h.max
            )
        });
        out.push_str("\n}\n");
        out
    }
}

/// Appends `"name": { "key": value, ... }` (no trailing newline/comma).
fn push_map<V>(
    out: &mut String,
    name: &str,
    map: &BTreeMap<String, V>,
    render: impl Fn(&V) -> String,
) {
    out.push_str(&format!("  {}: {{", json_string(name)));
    for (i, (key, value)) in map.iter().enumerate() {
        let comma = if i + 1 < map.len() { "," } else { "" };
        out.push_str(&format!(
            "\n    {}: {}{comma}",
            json_string(key),
            render(value)
        ));
    }
    if map.is_empty() {
        out.push('}');
    } else {
        out.push_str("\n  }");
    }
}

/// JSON-safe float rendering: `Display` for finite values (shortest
/// round-trip), `0` for non-finite ones (JSON has no NaN/inf).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` prints integral floats without a dot; keep them
        // unambiguously floats for typed consumers.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0".to_string()
    }
}

/// `part` as a percentage of `total` (0.0 when `total` is 0) — the one
/// shared definition of "hit rate" every stderr report uses.
#[must_use]
pub fn percent(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 * 100.0 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_contains_required_keys() {
        let _read = crate::testsync::FLAG.read().unwrap();
        crate::set_enabled(true);
        crate::counter("test.report.key").add(3);
        let report = MetricsReport::gather("unit-test", 10, 7, 1.25);
        let json = report.to_json();
        for key in [
            "\"schema_version\": 1",
            "\"label\": \"unit-test\"",
            "\"points_total\": 10",
            "\"points_done\": 7",
            "\"elapsed_seconds\": 1.25",
            "\"span_count\":",
            "\"counters\": {",
            "\"test.report.key\": 3",
            "\"gauges\": {",
            "\"histograms\": {",
        ] {
            assert!(json.contains(key), "missing {key:?} in:\n{json}");
        }
    }

    #[test]
    fn json_f64_always_renders_a_number() {
        assert_eq!(json_f64(1.25), "1.25");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
    }

    #[test]
    fn percent_is_safe_at_zero_total() {
        assert_eq!(percent(0, 0), 0.0);
        assert_eq!(percent(1, 2), 50.0);
        assert_eq!(percent(8, 8), 100.0);
    }

    #[test]
    fn empty_maps_render_as_empty_objects() {
        let mut out = String::new();
        push_map(&mut out, "m", &BTreeMap::<String, u64>::new(), |v| {
            v.to_string()
        });
        assert_eq!(out, "  \"m\": {}");
    }
}
