//! # fnpr-obs — write-only telemetry for a bit-deterministic pipeline
//!
//! The campaign engine's contract is that aggregates are **bit-identical**
//! for a given spec at any thread count, warm or cold store, telemetry on
//! or off. This crate provides the instrumentation layer that is safe
//! under that contract: atomic counters, monotonic-clock spans and a live
//! progress line that are *strictly write-only side channels* — nothing
//! here ever feeds a value back into an analysis or an aggregate
//! (`tests/determinism.rs` in `fnpr-campaign` property-tests exactly
//! that: byte-identical CSV/JSON with telemetry on vs off at 1/2/8
//! threads).
//!
//! Everything is gated on one process-global flag ([`set_enabled`]): while
//! disabled, every counter bump and span is a single relaxed atomic load
//! and an untaken branch, so instrumented hot paths cost nothing
//! measurable. The pieces:
//!
//! * a process-global registry of named [`Counter`]s / [`Gauge`]s /
//!   [`Histogram`]s — cache the handle at the call site with the
//!   [`counter!`] / [`gauge!`] / [`histogram!`] macros;
//! * scoped [`span`](span())s with thread- and shard-id attribution that
//!   export to Chrome trace-event JSON ([`write_chrome_trace`], loadable
//!   in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev));
//! * a [`MetricsReport`] snapshot serialized to versioned JSON
//!   (the CLI's `--metrics PATH`), histograms carrying
//!   bucket-interpolated p50/p90/p99;
//! * an append-only, checksummed run [`ledger`] (`LEDGER.jsonl`; the
//!   CLI's `--ledger PATH`) — one [`RunRecord`] per campaign run, the
//!   longitudinal data `fnpr-campaign history` trends and gates on;
//! * a rate-limited [`ProgressMeter`] line on stderr (points done/total,
//!   points/sec, ETA, hit-rates; the CLI's `--quiet` suppresses it).
//!
//! Naming convention: dotted lowercase paths rooted at the owning crate
//! layer, e.g. `campaign.memo.hit`, `core.alg1.windows`,
//! `sim.migrations`. The README's "Observability" section lists the
//! metrics each crate emits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ledger;
pub mod progress;
pub mod report;
pub mod span;

pub use ledger::{
    append_record, read_ledger, LedgerView, RunRecord, LEDGER_FORMAT, LEDGER_SCHEMA_VERSION,
};
pub use progress::{progress_enabled, set_progress, ProgressMeter};
pub use report::{percent, HistogramSnapshot, MetricsReport, METRICS_SCHEMA_VERSION};
pub use span::{
    chrome_trace_json, set_trace_collection, span, span_count, span_shard, take_trace_events,
    trace_collection, write_chrome_trace, Span, TraceEvent,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// The master switch. Everything in this crate no-ops while it is off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is collected at all. The hot-path gate: inlined to a
/// relaxed load so disabled instrumentation stays effectively free.
#[inline(always)]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The histogram backing cells: count/sum/max plus power-of-two buckets
/// (bucket `i` counts values whose bit length is `i`, i.e. `2^(i-1) <= v <
/// 2^i`; zero lands in bucket 0).
struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; 64],
}

impl HistogramCells {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The process-global name → cell tables. Lookup cost is paid once per
/// call site (the macros cache the returned handles), so a plain
/// mutex-guarded map is plenty.
struct Registry {
    counters: Mutex<BTreeMap<String, &'static AtomicU64>>,
    gauges: Mutex<BTreeMap<String, &'static AtomicU64>>,
    histograms: Mutex<BTreeMap<String, &'static HistogramCells>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// A monotonically increasing event counter. `Copy`: pass it around, cache
/// it in statics ([`counter!`]), share it across threads freely.
#[derive(Clone, Copy)]
pub struct Counter {
    cell: &'static AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn add(self, n: u64) {
        if enabled() && n != 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one (no-op while telemetry is disabled).
    #[inline]
    pub fn incr(self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins level (e.g. `campaign.points.total`).
#[derive(Clone, Copy)]
pub struct Gauge {
    cell: &'static AtomicU64,
}

impl Gauge {
    /// Sets the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn set(self, v: u64) {
        if enabled() {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A value distribution: count, sum, max and power-of-two buckets.
#[derive(Clone, Copy)]
pub struct Histogram {
    cells: &'static HistogramCells,
}

impl Histogram {
    /// Records one observation (no-op while telemetry is disabled).
    #[inline]
    pub fn record(self, v: u64) {
        if !enabled() {
            return;
        }
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
        self.cells.max.fetch_max(v, Ordering::Relaxed);
        let bucket = (64 - v.leading_zeros()) as usize;
        self.cells.buckets[bucket.min(63)].fetch_add(1, Ordering::Relaxed);
    }

    /// The current aggregate view, including bucket-interpolated
    /// percentiles (see [`HistogramSnapshot::from_parts`]).
    #[must_use]
    pub fn snapshot(self) -> HistogramSnapshot {
        let mut buckets = [0u64; 64];
        for (slot, cell) in buckets.iter_mut().zip(&self.cells.buckets) {
            *slot = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot::from_parts(
            self.cells.count.load(Ordering::Relaxed),
            self.cells.sum.load(Ordering::Relaxed),
            self.cells.max.load(Ordering::Relaxed),
            &buckets,
        )
    }
}

/// Looks up (registering on first use) the counter named `name`. Prefer
/// the [`counter!`] macro on hot paths — it caches the handle.
pub fn counter(name: &str) -> Counter {
    let mut map = registry().counters.lock().expect("obs registry poisoned");
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| &*Box::leak(Box::new(AtomicU64::new(0))));
    Counter { cell }
}

/// Looks up (registering on first use) the gauge named `name`. Prefer the
/// [`gauge!`] macro on hot paths.
pub fn gauge(name: &str) -> Gauge {
    let mut map = registry().gauges.lock().expect("obs registry poisoned");
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| &*Box::leak(Box::new(AtomicU64::new(0))));
    Gauge { cell }
}

/// Looks up (registering on first use) the histogram named `name`. Prefer
/// the [`histogram!`] macro on hot paths.
pub fn histogram(name: &str) -> Histogram {
    let mut map = registry().histograms.lock().expect("obs registry poisoned");
    let cells = map
        .entry(name.to_string())
        .or_insert_with(|| &*Box::leak(Box::new(HistogramCells::new())));
    Histogram { cells }
}

/// [`counter`] with a per-call-site cached handle: the registry lock is
/// taken once, every later pass is just the handle copy.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::counter($name))
    }};
}

/// [`gauge`] with a per-call-site cached handle.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::gauge($name))
    }};
}

/// [`histogram`] with a per-call-site cached handle.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::histogram($name))
    }};
}

/// All registered counters by name (zero-valued ones included: a
/// registered-but-never-hit counter is itself a signal).
#[must_use]
pub fn counters_snapshot() -> BTreeMap<String, u64> {
    registry()
        .counters
        .lock()
        .expect("obs registry poisoned")
        .iter()
        .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
        .collect()
}

/// All registered gauges by name.
#[must_use]
pub fn gauges_snapshot() -> BTreeMap<String, u64> {
    registry()
        .gauges
        .lock()
        .expect("obs registry poisoned")
        .iter()
        .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
        .collect()
}

/// All registered histograms by name.
#[must_use]
pub fn histograms_snapshot() -> BTreeMap<String, HistogramSnapshot> {
    registry()
        .histograms
        .lock()
        .expect("obs registry poisoned")
        .iter()
        .map(|(name, cells)| (name.clone(), Histogram { cells }.snapshot()))
        .collect()
}

/// Zeroes every registered cell, the span count and the trace buffer.
/// Handles obtained before the reset stay valid (the cells are reused, not
/// replaced). Test support — concurrent writers racing a reset simply land
/// in the fresh epoch.
pub fn reset() {
    let reg = registry();
    for cell in reg.counters.lock().expect("obs registry poisoned").values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in reg.gauges.lock().expect("obs registry poisoned").values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cells in reg
        .histograms
        .lock()
        .expect("obs registry poisoned")
        .values()
    {
        cells.count.store(0, Ordering::Relaxed);
        cells.sum.store(0, Ordering::Relaxed);
        cells.max.store(0, Ordering::Relaxed);
        for bucket in &cells.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
    span::reset();
}

#[cfg(test)]
pub(crate) mod testsync {
    //! The enable flag is process-global and `cargo test` runs in
    //! parallel: tests that turn it OFF take the write lock, tests that
    //! rely on it being ON take a read lock — so a disable can never race
    //! an enabled-path assertion.
    use std::sync::RwLock;

    pub static FLAG: RwLock<()> = RwLock::new(());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Holds the shared-flag read lock and guarantees telemetry is on.
    /// Each test uses uniquely named metrics and asserts deltas, so
    /// parallel execution cannot cross-talk.
    fn with_enabled<T>(f: impl FnOnce() -> T) -> T {
        let _read = testsync::FLAG.read().unwrap();
        set_enabled(true);
        f()
    }

    #[test]
    fn disabled_counters_do_not_move() {
        let _write = testsync::FLAG.write().unwrap();
        let was = enabled();
        let c = counter("test.lib.disabled");
        let before = c.value();
        set_enabled(false);
        c.incr();
        c.add(10);
        assert_eq!(c.value(), before);
        set_enabled(was);
    }

    #[test]
    fn counters_accumulate_when_enabled() {
        with_enabled(|| {
            let c = counter("test.lib.counter");
            let before = c.value();
            c.incr();
            c.add(4);
            assert_eq!(c.value(), before + 5);
            // Same name, same cell.
            assert_eq!(counter("test.lib.counter").value(), before + 5);
        });
    }

    #[test]
    fn gauges_store_last_value() {
        with_enabled(|| {
            let g = gauge("test.lib.gauge");
            g.set(7);
            g.set(3);
            assert_eq!(g.value(), 3);
            assert_eq!(gauges_snapshot()["test.lib.gauge"], 3);
        });
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        with_enabled(|| {
            let h = histogram("test.lib.histo");
            let before = h.snapshot();
            for v in [0, 1, 5, 100] {
                h.record(v);
            }
            let after = h.snapshot();
            assert_eq!(after.count - before.count, 4);
            assert_eq!(after.sum - before.sum, 106);
            assert!(after.max >= 100);
        });
    }

    #[test]
    fn macro_handles_are_cached_and_shared() {
        with_enabled(|| {
            let before = counter!("test.lib.macro").value();
            for _ in 0..3 {
                counter!("test.lib.macro").incr();
            }
            assert_eq!(counter("test.lib.macro").value(), before + 3);
        });
    }

    #[test]
    fn snapshot_contains_registered_names() {
        with_enabled(|| {
            counter("test.lib.snapshot").add(2);
            let snap = counters_snapshot();
            assert!(snap.contains_key("test.lib.snapshot"));
        });
    }
}
