//! Random task-set generation (UUniFast and friends).

use fnpr_core::DelayCurve;
use fnpr_sched::{max_npr_lengths_edf, max_npr_lengths_fp, SchedError, Task, TaskSet};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::curves::random_unimodal_curve;

/// Draws `n` task utilisations summing to `total` with the classic UUniFast
/// algorithm (Bini & Buttazzo) — uniform over the simplex, the standard
/// workload generator of the schedulability literature.
///
/// # Panics
///
/// Panics if `n == 0` or `total` is not finite and positive.
pub fn uunifast<R: Rng>(rng: &mut R, n: usize, total: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one task");
    assert!(
        total.is_finite() && total > 0.0,
        "total utilisation must be positive"
    );
    let mut utilizations = Vec::with_capacity(n);
    let mut remaining = total;
    for i in 1..n {
        let next = remaining * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        utilizations.push(remaining - next);
        remaining = next;
    }
    utilizations.push(remaining);
    utilizations
}

/// UUniFast with the *discard* extension (Davis & Burns): resamples until
/// every per-task utilisation is at most `cap`, which makes totals above 1
/// (multiprocessor task sets targeting `m·U`) usable — plain UUniFast then
/// routinely emits tasks with `ui > 1`, which no processor can run.
///
/// Returns `None` when `max_tries` resamples never satisfy the cap (the
/// caller resamples at a higher level or treats the point as infeasible).
///
/// # Panics
///
/// As [`uunifast`]; additionally panics if `cap` is not positive or
/// `total > n·cap` (no assignment can ever satisfy the cap).
pub fn uunifast_discard<R: Rng>(
    rng: &mut R,
    n: usize,
    total: f64,
    cap: f64,
    max_tries: usize,
) -> Option<Vec<f64>> {
    assert!(cap > 0.0, "utilisation cap must be positive");
    assert!(
        total <= n as f64 * cap + 1e-9,
        "total {total} cannot fit under {n} tasks capped at {cap}"
    );
    for _ in 0..max_tries {
        let utilizations = uunifast(rng, n, total);
        if utilizations.iter().all(|&u| u <= cap) {
            return Some(utilizations);
        }
    }
    None
}

/// Parameters for [`random_taskset`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSetParams {
    /// Number of tasks.
    pub n: usize,
    /// Total utilisation target (UUniFast-distributed).
    pub utilization: f64,
    /// Periods drawn log-uniformly from this range.
    pub period_range: (f64, f64),
    /// Deadline = period × a factor drawn uniformly from this range
    /// (`(1.0, 1.0)` for implicit deadlines).
    pub deadline_factor: (f64, f64),
}

impl Default for TaskSetParams {
    fn default() -> Self {
        Self {
            n: 5,
            utilization: 0.6,
            period_range: (10.0, 1000.0),
            deadline_factor: (1.0, 1.0),
        }
    }
}

/// Generates a random task set in rate-monotonic (ascending-period) order.
///
/// # Errors
///
/// Propagates [`SchedError`] when a drawn combination is degenerate (e.g. a
/// deadline below the WCET after applying the factor — rare with sensible
/// parameters; callers typically resample).
pub fn random_taskset<R: Rng>(rng: &mut R, params: &TaskSetParams) -> Result<TaskSet, SchedError> {
    fnpr_obs::counter!("synth.tasksets.generated").incr();
    let utilizations = uunifast(rng, params.n, params.utilization);
    let (lo, hi) = params.period_range;
    let mut tasks = Vec::with_capacity(params.n);
    for &u in &utilizations {
        let period = lo * (hi / lo).powf(rng.gen::<f64>());
        let wcet = (u * period).max(1e-6).min(period);
        let factor = rng.gen_range(params.deadline_factor.0..=params.deadline_factor.1);
        let deadline = (period * factor).clamp(wcet, period);
        tasks.push(Task::new(wcet, period)?.with_deadline(deadline)?);
    }
    tasks.sort_by(|a, b| a.period().total_cmp(&b.period()));
    TaskSet::new(tasks)
}

/// Generates a random *multiprocessor* task set: like [`random_taskset`]
/// but via [`uunifast_discard`], so `params.utilization` may exceed 1
/// (e.g. `m·U` for an `m`-core target) while every individual task stays a
/// valid uniprocessor task (`ui ≤ 1`).
///
/// Returns `None` when the discard budget runs out.
///
/// # Errors
///
/// As [`random_taskset`].
pub fn random_taskset_multicore<R: Rng>(
    rng: &mut R,
    params: &TaskSetParams,
) -> Result<Option<TaskSet>, SchedError> {
    let Some(utilizations) = uunifast_discard(rng, params.n, params.utilization, 1.0, 100) else {
        return Ok(None);
    };
    let (lo, hi) = params.period_range;
    let mut tasks = Vec::with_capacity(params.n);
    for &u in &utilizations {
        let period = lo * (hi / lo).powf(rng.gen::<f64>());
        let wcet = (u * period).max(1e-6).min(period);
        let factor = rng.gen_range(params.deadline_factor.0..=params.deadline_factor.1);
        let deadline = (period * factor).clamp(wcet, period);
        tasks.push(Task::new(wcet, period)?.with_deadline(deadline)?);
    }
    tasks.sort_by(|a, b| a.period().total_cmp(&b.period()));
    TaskSet::new(tasks).map(Some)
}

/// Scheduling policy used when deriving maximum region lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Fixed priority, index order (rate-monotonic after generation).
    FixedPriority,
    /// Earliest deadline first.
    Edf,
}

/// Equips every task of `base` with its maximum admissible `Qi` (capped at
/// its WCET, scaled by `q_scale ∈ (0, 1]`) and a random unimodal delay curve
/// whose peak is `delay_frac` of the task's `Qi` (keeping all analyses
/// convergent when `delay_frac < 1`).
///
/// Returns `None` when the base set is not schedulable under the chosen
/// policy even without preemption costs, or when the derived bounds are
/// infeasible — callers typically resample.
///
/// # Errors
///
/// Propagates [`SchedError`] from the bound computations (e.g.
/// over-utilised sets under EDF).
pub fn with_npr_and_curves<R: Rng>(
    rng: &mut R,
    base: &TaskSet,
    policy: Policy,
    q_scale: f64,
    delay_frac: f64,
) -> Result<Option<TaskSet>, SchedError> {
    let bounds = match policy {
        Policy::FixedPriority => max_npr_lengths_fp(base),
        Policy::Edf => max_npr_lengths_edf(base)?,
    };
    if !bounds.feasible() {
        return Ok(None);
    }
    let qs = bounds.capped_at_wcet(base);
    let mut tasks = Vec::with_capacity(base.len());
    for (task, &q_max) in base.iter().zip(&qs) {
        let q = (q_max * q_scale).max(f64::MIN_POSITIVE);
        if !(q.is_finite() && q > 0.0) {
            return Ok(None);
        }
        let peak = q * delay_frac;
        let curve = random_unimodal_curve(rng, task.wcet(), peak.max(1e-9), task.wcet() / 64.0)
            .map_err(|_| SchedError::InvalidTask {
                what: "curve",
                value: task.wcet(),
            })?;
        let clamped: DelayCurve =
            curve
                .clamped(peak.max(0.0))
                .map_err(|_| SchedError::InvalidTask {
                    what: "curve clamp",
                    value: peak,
                })?;
        tasks.push(task.clone().with_q(q)?.with_delay_curve(clamped));
    }
    Ok(Some(TaskSet::new(tasks)?))
}

/// Equips every task of `base` with a region length and delay curve for
/// *global* multiprocessor scheduling, where the uniprocessor admissible-`Qi`
/// machinery ([`max_npr_lengths_fp`] / [`max_npr_lengths_edf`]) does not
/// apply: `Qi = q_scale × Ci` (a region never outlives its job) and a
/// random unimodal curve whose peak is `delay_frac × Qi`, keeping every
/// delay analysis convergent for `delay_frac < 1`.
///
/// # Errors
///
/// Propagates [`SchedError`] on degenerate curve construction.
pub fn with_npr_and_curves_global<R: Rng>(
    rng: &mut R,
    base: &TaskSet,
    q_scale: f64,
    delay_frac: f64,
) -> Result<TaskSet, SchedError> {
    let mut tasks = Vec::with_capacity(base.len());
    for task in base.iter() {
        let q = (task.wcet() * q_scale).max(f64::MIN_POSITIVE);
        let peak = q * delay_frac;
        let curve = random_unimodal_curve(rng, task.wcet(), peak.max(1e-9), task.wcet() / 64.0)
            .map_err(|_| SchedError::InvalidTask {
                what: "curve",
                value: task.wcet(),
            })?;
        let clamped: DelayCurve =
            curve
                .clamped(peak.max(0.0))
                .map_err(|_| SchedError::InvalidTask {
                    what: "curve clamp",
                    value: peak,
                })?;
        tasks.push(task.clone().with_q(q)?.with_delay_curve(clamped));
    }
    TaskSet::new(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uunifast_sums_to_total() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1, 2, 5, 20] {
            for total in [0.3, 0.7, 0.95] {
                let us = uunifast(&mut rng, n, total);
                assert_eq!(us.len(), n);
                let sum: f64 = us.iter().sum();
                assert!((sum - total).abs() < 1e-9, "sum {sum} != {total}");
                assert!(us.iter().all(|&u| u >= 0.0));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn uunifast_rejects_zero_tasks() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = uunifast(&mut rng, 0, 0.5);
    }

    #[test]
    fn random_taskset_respects_params() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = TaskSetParams {
            n: 8,
            utilization: 0.65,
            period_range: (10.0, 100.0),
            deadline_factor: (0.8, 1.0),
        };
        let ts = random_taskset(&mut rng, &params).unwrap();
        assert_eq!(ts.len(), 8);
        assert!((ts.utilization() - 0.65).abs() < 0.05);
        let mut last = 0.0;
        for t in ts.iter() {
            assert!(t.period() >= 10.0 && t.period() <= 100.0);
            assert!(t.deadline() <= t.period());
            assert!(t.period() >= last);
            last = t.period();
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let params = TaskSetParams::default();
        let a = random_taskset(&mut StdRng::seed_from_u64(3), &params).unwrap();
        let b = random_taskset(&mut StdRng::seed_from_u64(3), &params).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn uunifast_discard_caps_per_task_utilization() {
        let mut rng = StdRng::seed_from_u64(9);
        // m·U = 3.2 over 8 tasks: plain UUniFast frequently exceeds 1.
        let us = uunifast_discard(&mut rng, 8, 3.2, 1.0, 200).expect("discard converges");
        assert_eq!(us.len(), 8);
        assert!((us.iter().sum::<f64>() - 3.2).abs() < 1e-9);
        assert!(us.iter().all(|&u| u <= 1.0));
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn uunifast_discard_rejects_impossible_totals() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = uunifast_discard(&mut rng, 2, 3.0, 1.0, 10);
    }

    #[test]
    fn multicore_taskset_has_valid_tasks_above_unit_total() {
        let mut rng = StdRng::seed_from_u64(21);
        let params = TaskSetParams {
            n: 8,
            utilization: 2.4, // 4 cores x 0.6
            period_range: (10.0, 100.0),
            deadline_factor: (1.0, 1.0),
        };
        let ts = random_taskset_multicore(&mut rng, &params)
            .unwrap()
            .expect("discard converges");
        assert_eq!(ts.len(), 8);
        assert!((ts.utilization() - 2.4).abs() < 0.05);
        for t in ts.iter() {
            assert!(t.utilization() <= 1.0 + 1e-9);
            assert!(t.deadline() <= t.period());
        }
    }

    #[test]
    fn global_equipment_sets_q_and_convergent_curves() {
        let mut rng = StdRng::seed_from_u64(13);
        let params = TaskSetParams {
            n: 6,
            utilization: 1.5,
            ..TaskSetParams::default()
        };
        let base = random_taskset_multicore(&mut rng, &params)
            .unwrap()
            .expect("generated");
        let equipped = with_npr_and_curves_global(&mut rng, &base, 0.8, 0.5).unwrap();
        for t in equipped.iter() {
            let q = t.q().expect("q set");
            assert!((q - 0.8 * t.wcet()).abs() < 1e-9);
            let curve = t.delay_curve().expect("curve set");
            assert!(curve.max_value() < q, "delay must stay below Q");
        }
    }

    #[test]
    fn npr_and_curves_produce_convergent_tasks() {
        let mut rng = StdRng::seed_from_u64(11);
        let params = TaskSetParams {
            n: 4,
            utilization: 0.5,
            ..TaskSetParams::default()
        };
        let base = random_taskset(&mut rng, &params).unwrap();
        let equipped = with_npr_and_curves(&mut rng, &base, Policy::FixedPriority, 0.8, 0.5)
            .unwrap()
            .expect("feasible at U=0.5");
        for t in equipped.iter() {
            let q = t.q().expect("q set");
            let curve = t.delay_curve().expect("curve set");
            assert!(curve.max_value() < q, "delay must stay below Q");
        }
    }
}
