//! Synthetic preemption-delay functions, including the paper's Figure 4
//! benchmark set.
//!
//! Section VI evaluates Algorithm 1 on three synthetic `fi` functions with
//! `C = 4000` and maximum value 10: two bell-shaped ("Gaussian 1" with
//! σ² = 300, µ = 2000 and a vertical offset of 10; "Gaussian 2" with ten
//! times the variance, no offset) and one with two local maxima separated in
//! time. The printed parameters are partly self-contradictory (an offset of
//! 10 with a maximum of 10 leaves no amplitude; σ² = 300 on a 0..4000 axis
//! is a needle, unlike the printed figure), so this module keeps every
//! mutually consistent literal — `C = 4000`, `µ = 2000`, max value 10, a
//! 10× variance ratio between the Gaussians, amplitude-normalised peaks —
//! and documents the calibration: variances scaled to span the plotted
//! domain (σ₁² = 9·10⁴, σ₂² = 9·10⁵). The "flat" reading of the offset
//! clause is provided separately as [`flat_adversarial`], the worst case
//! for the proposed analysis (it degenerates to the Eq. 4 baseline). See
//! `DESIGN.md` for the full discussion; none of this affects the Figure 5
//! shape claims.

use fnpr_core::{CurveError, DelayCurve};
use rand::Rng;

/// Domain end (`C`) of the Figure 4 functions.
pub const FIGURE4_WCET: f64 = 4000.0;

/// Maximum value of every Figure 4 function.
pub const FIGURE4_MAX: f64 = 10.0;

/// Sampling step used to turn the smooth functions into conservative step
/// curves (fine enough that the staircase is invisible at plot scale).
pub const FIGURE4_STEP: f64 = 4.0;

/// A Gaussian bell `amplitude · exp(−(t − mu)² / (2·sigma²)) + offset`,
/// sampled into a conservative step curve over `[0, c)`.
///
/// # Errors
///
/// Propagates [`CurveError`] for malformed `c`/`step` or non-finite
/// parameters.
pub fn gaussian_curve(
    mu: f64,
    sigma_sq: f64,
    amplitude: f64,
    offset: f64,
    c: f64,
    step: f64,
) -> Result<DelayCurve, CurveError> {
    DelayCurve::from_fn_upper(
        move |t| amplitude * (-(t - mu) * (t - mu) / (2.0 * sigma_sq)).exp() + offset,
        c,
        step,
    )
}

/// "Gaussian 1" of Figure 4: the narrower bell (σ₁² = 9·10⁴, µ = 2000,
/// peak 10).
///
/// # Panics
///
/// Never — parameters are static.
#[must_use]
pub fn figure4_gaussian1() -> DelayCurve {
    gaussian_curve(2000.0, 9.0e4, FIGURE4_MAX, 0.0, FIGURE4_WCET, FIGURE4_STEP)
        .expect("static parameters")
}

/// "Gaussian 2" of Figure 4: ten times the variance of Gaussian 1
/// (σ₂² = 9·10⁵, µ = 2000, peak 10, no offset) — the flatter, wider bell.
///
/// # Panics
///
/// Never — parameters are static.
#[must_use]
pub fn figure4_gaussian2() -> DelayCurve {
    gaussian_curve(2000.0, 9.0e5, FIGURE4_MAX, 0.0, FIGURE4_WCET, FIGURE4_STEP)
        .expect("static parameters")
}

/// The "2 local maximum" function of Figure 4: two bells separated in time
/// (peaks 10 and 8 at t = 1200 and t = 2800), combined pointwise.
///
/// # Panics
///
/// Never — parameters are static.
#[must_use]
pub fn figure4_two_local_maxima() -> DelayCurve {
    let first = gaussian_curve(
        1200.0,
        6.25e4, // σ = 250
        FIGURE4_MAX,
        0.0,
        FIGURE4_WCET,
        FIGURE4_STEP,
    )
    .expect("static parameters");
    let second = gaussian_curve(2800.0, 6.25e4, 8.0, 0.0, FIGURE4_WCET, FIGURE4_STEP)
        .expect("static parameters");
    first.pointwise_max(&second).expect("identical domains")
}

/// The flat max-valued curve — the literal "offset 10, max 10" reading of
/// Gaussian 1 and the adversarial case where the progression-aware analysis
/// has no shape to exploit (Algorithm 1 ≈ Eq. 4).
///
/// # Panics
///
/// Never — parameters are static.
#[must_use]
pub fn flat_adversarial() -> DelayCurve {
    DelayCurve::constant(FIGURE4_MAX, FIGURE4_WCET).expect("static parameters")
}

/// The three Figure 4 benchmark functions with their paper names.
#[must_use]
pub fn figure4_all() -> Vec<(&'static str, DelayCurve)> {
    vec![
        ("Gaussian 1", figure4_gaussian1()),
        ("Gaussian 2", figure4_gaussian2()),
        ("2 local maximum", figure4_two_local_maxima()),
    ]
}

/// A random piecewise-constant curve: `segments` pieces over `[0, c)` with
/// values uniform in `[0, max_value]`.
///
/// # Errors
///
/// Propagates [`CurveError`] for malformed `c` or non-positive `segments`.
pub fn random_step_curve<R: Rng>(
    rng: &mut R,
    c: f64,
    segments: usize,
    max_value: f64,
) -> Result<DelayCurve, CurveError> {
    let segments = segments.max(1);
    let mut points = Vec::with_capacity(segments);
    for k in 0..segments {
        let start = c * (k as f64) / (segments as f64);
        points.push((start, rng.gen_range(0.0..=max_value)));
    }
    DelayCurve::from_breakpoints(points, c)
}

/// A random unimodal ("working-set build-up and decay") curve — the shape
/// the paper's Section III narrative describes: low delay early, a peak
/// while the working set is live, decay afterwards.
///
/// # Errors
///
/// Propagates [`CurveError`] for malformed parameters.
pub fn random_unimodal_curve<R: Rng>(
    rng: &mut R,
    c: f64,
    max_value: f64,
    step: f64,
) -> Result<DelayCurve, CurveError> {
    let mu = rng.gen_range(0.2 * c..0.8 * c);
    let sigma = rng.gen_range(0.05 * c..0.3 * c);
    let amplitude = rng.gen_range(0.3 * max_value..max_value);
    gaussian_curve(mu, sigma * sigma, amplitude, 0.0, c, step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure4_invariants() {
        for (name, curve) in figure4_all() {
            assert_eq!(curve.domain_end(), FIGURE4_WCET, "{name}");
            assert!(
                curve.max_value() <= FIGURE4_MAX + 1e-6,
                "{name} exceeds max"
            );
            assert!(
                curve.max_value() >= FIGURE4_MAX * 0.99,
                "{name} peak too low: {}",
                curve.max_value()
            );
            // Peaks near the documented centres (the bimodal one peaks off
            // centre by construction).
            let probe = if name == "2 local maximum" {
                1200.0
            } else {
                2000.0
            };
            assert!(curve.value_at(probe) > 9.0, "{name} hollow at its peak");
        }
    }

    #[test]
    fn gaussian2_is_wider_than_gaussian1() {
        let g1 = figure4_gaussian1();
        let g2 = figure4_gaussian2();
        // At 1000 away from the mean the wide bell retains far more mass.
        assert!(g2.value_at(1000.0) > g1.value_at(1000.0) * 2.0);
        // Total mass comparison.
        assert!(g2.integral() > 2.0 * g1.integral());
    }

    #[test]
    fn two_local_maxima_really_has_two() {
        let f = figure4_two_local_maxima();
        let peak1 = f.value_at(1200.0);
        let valley = f.value_at(2000.0);
        let peak2 = f.value_at(2800.0);
        assert!(peak1 > valley + 3.0);
        assert!(peak2 > valley + 3.0);
        assert!((peak1 - FIGURE4_MAX).abs() < 0.1);
        assert!((peak2 - 8.0).abs() < 0.1);
    }

    #[test]
    fn flat_adversarial_is_constant_max() {
        let f = flat_adversarial();
        assert_eq!(f.max_value(), FIGURE4_MAX);
        assert_eq!(f.value_at(0.0), f.value_at(3999.0));
        assert_eq!(f.segment_count(), 1);
    }

    #[test]
    fn random_curves_are_valid_and_seeded() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_step_curve(&mut rng, 100.0, 10, 5.0).unwrap();
        assert!(a.max_value() <= 5.0);
        assert_eq!(a.domain_end(), 100.0);
        let mut rng2 = StdRng::seed_from_u64(7);
        let b = random_step_curve(&mut rng2, 100.0, 10, 5.0).unwrap();
        assert_eq!(a, b); // determinism
        let u = random_unimodal_curve(&mut rng, 200.0, 8.0, 1.0).unwrap();
        assert!(u.max_value() <= 8.0 + 1e-9);
    }
}
