//! # fnpr-synth — synthetic workload generators
//!
//! Everything the evaluation harness draws from:
//!
//! * [`figure4_gaussian1`] / [`figure4_gaussian2`] /
//!   [`figure4_two_local_maxima`] — the paper's Figure 4 benchmark delay
//!   functions (see the module docs of [`curves`] for the calibration of
//!   the paper's partly inconsistent parameters), plus [`flat_adversarial`]
//!   for the worst-case-shape ablation;
//! * [`uunifast`] / [`random_taskset`] / [`with_npr_and_curves`] — the
//!   standard random task-set machinery of the schedulability literature;
//! * [`random_cfg`] — random reducible control-flow graphs with loop bounds
//!   and code layouts for the cache substrate;
//! * [`random_program`] — random *structured programs* (`fnpr_cfg::ast`
//!   statement trees with per-block costs and data accesses), compiled and
//!   ready for the Section IV pipeline — the `[cfg]` campaign workload's
//!   generator.
//!
//! All generators take a caller-provided [`rand::Rng`], so experiments are
//! reproducible by seed.
//!
//! ```
//! use fnpr_synth::figure4_all;
//!
//! for (name, curve) in figure4_all() {
//!     assert_eq!(curve.domain_end(), 4000.0, "{name}");
//!     assert!(curve.max_value() <= 10.0 + 1e-6);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cfggen;
pub mod curves;
pub mod progen;
pub mod taskset;

pub use cfggen::{random_cfg, CfgGenParams, GeneratedCfg};
pub use curves::{
    figure4_all, figure4_gaussian1, figure4_gaussian2, figure4_two_local_maxima, flat_adversarial,
    gaussian_curve, random_step_curve, random_unimodal_curve, FIGURE4_MAX, FIGURE4_STEP,
    FIGURE4_WCET,
};
pub use progen::{random_program, GeneratedProgram, ProgramGenParams, DATA_BASE, DATA_STRIDE};
pub use taskset::{
    random_taskset, random_taskset_multicore, uunifast, uunifast_discard, with_npr_and_curves,
    with_npr_and_curves_global, Policy, TaskSetParams,
};
