//! Random structured control-flow graph generation.
//!
//! Graphs are built from nested single-entry/single-exit regions —
//! sequences, if/else diamonds and bounded loops — so they are always
//! reducible and mirror the shape of compiler-generated code. Alongside the
//! graph, a *code layout* `(block, base address, size)` is produced for the
//! cache substrate (`fnpr_cache::AccessMap::from_code_layout`).

use std::collections::BTreeMap;

use fnpr_cfg::{BlockId, Cfg, CfgBuilder, CfgError, ExecInterval, LoopBound};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters for [`random_cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfgGenParams {
    /// Maximum nesting depth of regions.
    pub max_depth: usize,
    /// Maximum children of a sequence region.
    pub max_sequence: usize,
    /// Per-block execution-time range (min cost drawn first, width second).
    pub cost_range: (f64, f64),
    /// Maximum loop iteration bound to draw.
    pub max_loop_iterations: u64,
    /// Probability of a region being a branch (vs. loop vs. leaf).
    pub branch_probability: f64,
    /// Probability of a region being a loop.
    pub loop_probability: f64,
    /// Code bytes per basic block (for the layout).
    pub block_bytes: u64,
}

impl Default for CfgGenParams {
    fn default() -> Self {
        Self {
            max_depth: 3,
            max_sequence: 4,
            cost_range: (1.0, 20.0),
            max_loop_iterations: 8,
            branch_probability: 0.3,
            loop_probability: 0.2,
            block_bytes: 64,
        }
    }
}

/// A generated graph: the CFG, the loop bounds its reduction needs, and a
/// straight-line code layout for cache analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedCfg {
    /// The (possibly cyclic) control-flow graph.
    pub cfg: Cfg,
    /// Iteration bounds keyed by loop header.
    pub loop_bounds: BTreeMap<BlockId, LoopBound>,
    /// `(block, base, size)` triples laying blocks out contiguously.
    pub layout: Vec<(BlockId, u64, u64)>,
}

/// Generates a random reducible CFG with bounded loops.
///
/// # Errors
///
/// Propagates [`CfgError`] from graph construction (cannot happen for the
/// shapes generated here; the signature avoids panicking on future edits).
pub fn random_cfg<R: Rng>(rng: &mut R, params: &CfgGenParams) -> Result<GeneratedCfg, CfgError> {
    let mut builder = CfgBuilder::new();
    let mut bounds = BTreeMap::new();
    let entry = leaf(rng, params, &mut builder);
    let exit = region(
        rng,
        params,
        &mut builder,
        &mut bounds,
        entry,
        params.max_depth,
    )?;
    let _ = exit;
    let cfg = builder.build()?;
    let layout = (0..cfg.len())
        .map(|b| {
            (
                BlockId(b),
                b as u64 * params.block_bytes,
                params.block_bytes,
            )
        })
        .collect();
    Ok(GeneratedCfg {
        cfg,
        loop_bounds: bounds,
        layout,
    })
}

/// Adds one leaf block with a random cost.
fn leaf<R: Rng>(rng: &mut R, params: &CfgGenParams, builder: &mut CfgBuilder) -> BlockId {
    let (lo, hi) = params.cost_range;
    let min = rng.gen_range(lo..hi);
    let width = rng.gen_range(0.0..(hi - lo));
    builder.block(ExecInterval::new(min, min + width).expect("positive costs"))
}

/// Emits a region hanging off `from`; returns the region's exit block.
fn region<R: Rng>(
    rng: &mut R,
    params: &CfgGenParams,
    builder: &mut CfgBuilder,
    bounds: &mut BTreeMap<BlockId, LoopBound>,
    from: BlockId,
    depth: usize,
) -> Result<BlockId, CfgError> {
    if depth == 0 {
        let b = leaf(rng, params, builder);
        builder.edge(from, b)?;
        return Ok(b);
    }
    let roll: f64 = rng.gen();
    if roll < params.branch_probability {
        // Diamond: from -> {left | right} -> join.
        let left_head = leaf(rng, params, builder);
        builder.edge(from, left_head)?;
        let left_exit = region(rng, params, builder, bounds, left_head, depth - 1)?;
        let right_head = leaf(rng, params, builder);
        builder.edge(from, right_head)?;
        let right_exit = region(rng, params, builder, bounds, right_head, depth - 1)?;
        let join = leaf(rng, params, builder);
        builder.edge(left_exit, join)?;
        builder.edge(right_exit, join)?;
        Ok(join)
    } else if roll < params.branch_probability + params.loop_probability {
        // Bounded loop: from -> header; header -> body...body_exit -> header;
        // header -> after.
        let header = leaf(rng, params, builder);
        builder.edge(from, header)?;
        let body_head = leaf(rng, params, builder);
        builder.edge(header, body_head)?;
        let body_exit = region(rng, params, builder, bounds, body_head, depth - 1)?;
        builder.edge(body_exit, header)?;
        let max_iter = rng.gen_range(1..=params.max_loop_iterations);
        let min_iter = rng.gen_range(1..=max_iter);
        bounds.insert(header, LoopBound::new(min_iter, max_iter).expect("valid"));
        let after = leaf(rng, params, builder);
        builder.edge(header, after)?;
        Ok(after)
    } else {
        // Sequence of 1..max_sequence sub-regions.
        let count = rng.gen_range(1..=params.max_sequence.max(1));
        let mut at = from;
        for _ in 0..count {
            let head = leaf(rng, params, builder);
            builder.edge(at, head)?;
            at = region(rng, params, builder, bounds, head, depth.saturating_sub(1))?;
        }
        Ok(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnpr_cfg::{reduce_loops, StartOffsets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_graphs_are_valid_and_reducible() {
        let params = CfgGenParams::default();
        for seed in 0..25 {
            let mut rng = StdRng::seed_from_u64(seed);
            let generated = random_cfg(&mut rng, &params).unwrap();
            // Every loop has a bound and reduction succeeds.
            let reduced = reduce_loops(&generated.cfg, &generated.loop_bounds)
                .unwrap_or_else(|e| panic!("seed {seed}: reduction failed: {e}"));
            assert!(reduced.cfg.is_acyclic());
            // The reduced graph supports the offset analysis.
            let offsets = StartOffsets::analyze(&reduced.cfg).unwrap();
            assert!(!offsets.is_empty());
        }
    }

    #[test]
    fn layout_covers_every_block() {
        let mut rng = StdRng::seed_from_u64(3);
        let generated = random_cfg(&mut rng, &CfgGenParams::default()).unwrap();
        assert_eq!(generated.layout.len(), generated.cfg.len());
        for (i, &(b, base, size)) in generated.layout.iter().enumerate() {
            assert_eq!(b.index(), i);
            assert_eq!(base, i as u64 * 64);
            assert_eq!(size, 64);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let params = CfgGenParams::default();
        let a = random_cfg(&mut StdRng::seed_from_u64(9), &params).unwrap();
        let b = random_cfg(&mut StdRng::seed_from_u64(9), &params).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn depth_zero_gives_small_graphs() {
        let params = CfgGenParams {
            max_depth: 0,
            ..CfgGenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let generated = random_cfg(&mut rng, &params).unwrap();
        assert!(generated.cfg.len() <= 3);
        assert!(generated.cfg.is_acyclic());
    }
}
