//! Random *structured program* generation — the AST-level sibling of
//! [`crate::cfggen`].
//!
//! Where [`crate::random_cfg`] emits raw graphs, [`random_program`] emits a
//! [`Stmt`] tree — nested sequences, if/else branches and bounded loops with
//! per-block execution intervals *and per-block data accesses* — and
//! compiles it through `fnpr_cfg::ast::compile`, so the generated artefact
//! carries everything the Section IV pipeline needs: a reducible CFG, loop
//! bounds, a linear code layout, and the data-access annotations that drive
//! the useful-cache-block analysis.
//!
//! Data accesses are drawn from a pool of `footprint_lines` distinct
//! addresses spaced [`DATA_STRIDE`] bytes apart starting at [`DATA_BASE`]
//! (far above any code layout), so the *footprint* axis of a campaign sweep
//! directly controls how much cache reuse — and therefore CRPD — a program
//! can exhibit, independently of the cache geometry it is later analysed
//! under.

use fnpr_cfg::ast::{compile, CompiledProgram, Stmt};
use fnpr_cfg::CfgError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Base byte address of the synthetic data region. Code layouts start at 0
/// and span `blocks × block_bytes` bytes — far below this — so data and
/// code accesses never alias.
pub const DATA_BASE: u64 = 1 << 20;

/// Byte distance between consecutive pool addresses. At least as large as
/// any realistic cache line, so each pool entry occupies its own line for
/// every swept geometry.
pub const DATA_STRIDE: u64 = 64;

/// Parameters for [`random_program`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramGenParams {
    /// Maximum nesting depth of regions (0 = a single basic block).
    pub max_depth: usize,
    /// Maximum children of a sequence region (>= 1).
    pub max_sequence: usize,
    /// Per-block execution-time range: BCET and WCET are both drawn inside
    /// `[lo, hi)` (BCET first, then WCET in `[BCET, hi)`).
    pub cost_range: (f64, f64),
    /// Maximum loop iteration bound to draw (>= 1). Minimum bounds are
    /// drawn in `0..=max`, so skippable loops (min 0) occur naturally.
    pub max_loop_iterations: u64,
    /// Probability of a region being a branch (vs. loop vs. sequence).
    pub branch_probability: f64,
    /// Probability of a region being a loop.
    pub loop_probability: f64,
    /// Code bytes per basic block (for the layout).
    pub block_bytes: u64,
    /// Distinct data lines in the access pool (0 = no data accesses).
    pub footprint_lines: u64,
    /// Inclusive range of data accesses drawn per basic block.
    pub accesses_per_block: (usize, usize),
}

impl Default for ProgramGenParams {
    fn default() -> Self {
        Self {
            max_depth: 3,
            max_sequence: 3,
            cost_range: (1.0, 20.0),
            max_loop_iterations: 6,
            branch_probability: 0.3,
            loop_probability: 0.25,
            block_bytes: 64,
            footprint_lines: 8,
            accesses_per_block: (1, 3),
        }
    }
}

/// A generated program: the statement tree and its compiled form.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedProgram {
    /// The structured source.
    pub program: Stmt,
    /// The compiled CFG, loop bounds, layout and data accesses.
    pub compiled: CompiledProgram,
}

/// Generates a random structured program and compiles it.
///
/// The tree shape mirrors [`crate::random_cfg`]: at each level a region is
/// a branch with probability `branch_probability`, a loop with
/// `loop_probability`, and otherwise a sequence of up to `max_sequence`
/// sub-regions; depth 0 regions are single basic blocks. Every basic block
/// draws its execution interval from `cost_range` and its data accesses
/// from the footprint pool.
///
/// # Errors
///
/// Propagates [`CfgError`] from compilation (cannot happen for the shapes
/// generated here; the signature avoids panicking on future edits).
pub fn random_program<R: Rng>(
    rng: &mut R,
    params: &ProgramGenParams,
) -> Result<GeneratedProgram, CfgError> {
    fnpr_obs::counter!("synth.programs.generated").incr();
    let mut labels = 0usize;
    let program = gen_region(rng, params, params.max_depth, &mut labels);
    let compiled = compile(&program, params.block_bytes)?;
    Ok(GeneratedProgram { program, compiled })
}

/// One basic block with random cost and accesses.
fn gen_basic<R: Rng>(rng: &mut R, params: &ProgramGenParams, labels: &mut usize) -> Stmt {
    let (lo, hi) = params.cost_range;
    // Both bounds stay inside [lo, hi): min < hi by construction, so the
    // width draw is over a non-empty range.
    let min = rng.gen_range(lo..hi);
    let width = rng.gen_range(0.0..(hi - min));
    let (acc_lo, acc_hi) = params.accesses_per_block;
    let count = if params.footprint_lines == 0 {
        0
    } else {
        rng.gen_range(acc_lo..=acc_hi)
    };
    let accesses: Vec<u64> = (0..count)
        .map(|_| DATA_BASE + rng.gen_range(0..params.footprint_lines) * DATA_STRIDE)
        .collect();
    let label = format!("b{labels}");
    *labels += 1;
    Stmt::basic_accessing(label, min, min + width, accesses)
}

fn gen_region<R: Rng>(
    rng: &mut R,
    params: &ProgramGenParams,
    depth: usize,
    labels: &mut usize,
) -> Stmt {
    if depth == 0 {
        return gen_basic(rng, params, labels);
    }
    let roll: f64 = rng.gen();
    if roll < params.branch_probability {
        Stmt::branch(
            gen_region(rng, params, depth - 1, labels),
            gen_region(rng, params, depth - 1, labels),
        )
    } else if roll < params.branch_probability + params.loop_probability {
        let max_iter = rng.gen_range(1..=params.max_loop_iterations);
        let min_iter = rng.gen_range(0..=max_iter);
        Stmt::loop_between(
            min_iter,
            max_iter,
            gen_region(rng, params, depth - 1, labels),
        )
    } else {
        let count = rng.gen_range(1..=params.max_sequence.max(1));
        Stmt::seq((0..count).map(|_| gen_region(rng, params, depth - 1, labels)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnpr_cfg::{reduce_loops, StartOffsets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_compile_and_reduce() {
        let params = ProgramGenParams::default();
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let generated = random_program(&mut rng, &params).unwrap();
            let compiled = &generated.compiled;
            assert_eq!(compiled.accesses.len(), compiled.cfg.len());
            let reduced = reduce_loops(&compiled.cfg, &compiled.loop_bounds)
                .unwrap_or_else(|e| panic!("seed {seed}: reduction failed: {e}"));
            assert!(reduced.cfg.is_acyclic());
            assert!(StartOffsets::analyze(&reduced.cfg).is_ok());
        }
    }

    #[test]
    fn accesses_stay_inside_the_footprint_pool() {
        let params = ProgramGenParams {
            footprint_lines: 4,
            ..ProgramGenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let generated = random_program(&mut rng, &params).unwrap();
        let mut any = false;
        for addrs in &generated.compiled.accesses {
            for &a in addrs {
                any = true;
                assert!(a >= DATA_BASE);
                assert_eq!((a - DATA_BASE) % DATA_STRIDE, 0);
                assert!((a - DATA_BASE) / DATA_STRIDE < 4);
            }
        }
        assert!(any, "default access rate should touch data somewhere");
    }

    #[test]
    fn block_costs_stay_inside_the_configured_range() {
        let params = ProgramGenParams {
            cost_range: (2.0, 9.0),
            ..ProgramGenParams::default()
        };
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let generated = random_program(&mut rng, &params).unwrap();
            for block in generated.compiled.cfg.blocks() {
                if block.exec.max == 0.0 {
                    continue; // structural glue
                }
                assert!(
                    block.exec.min >= 2.0 && block.exec.max < 9.0,
                    "seed {seed}: block cost [{}, {}] escaped [2, 9)",
                    block.exec.min,
                    block.exec.max
                );
            }
        }
    }

    #[test]
    fn zero_footprint_means_no_data_accesses() {
        let params = ProgramGenParams {
            footprint_lines: 0,
            ..ProgramGenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let generated = random_program(&mut rng, &params).unwrap();
        assert!(generated.compiled.accesses.iter().all(Vec::is_empty));
    }

    #[test]
    fn determinism_per_seed() {
        let params = ProgramGenParams::default();
        let a = random_program(&mut StdRng::seed_from_u64(9), &params).unwrap();
        let b = random_program(&mut StdRng::seed_from_u64(9), &params).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn depth_zero_gives_a_single_leaf() {
        let params = ProgramGenParams {
            max_depth: 0,
            ..ProgramGenParams::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let generated = random_program(&mut rng, &params).unwrap();
        // Synthetic entry + one leaf.
        assert_eq!(generated.compiled.cfg.len(), 2);
        assert!(generated.compiled.loop_bounds.is_empty());
    }
}
