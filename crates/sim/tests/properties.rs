//! Property-based validation of the simulator against the analyses.
//!
//! The headline property is the empirical side of **Theorem 1**: for random
//! delay curves, random region lengths and random higher-priority
//! interference patterns, no simulated job ever pays more cumulative
//! preemption delay than Algorithm 1's bound. A second property drives the
//! *exact adversary* of `fnpr-core` through the simulator and checks the
//! run realises the planned delay — i.e. the worst case is achievable, not
//! just bounded.

use fnpr_core::{algorithm1, algorithm1_capped, exact_worst_case, naive_bound, DelayCurve};
use fnpr_sim::{
    check_against_algorithm1, per_task_metrics, simulate, PreemptionMode, PriorityPolicy, Scenario,
    SimConfig, SimTask,
};
use proptest::prelude::*;

fn arb_curve() -> impl Strategy<Value = DelayCurve> {
    prop::collection::vec((5.0f64..40.0, 0.0f64..6.0), 1..10).prop_map(|pieces| {
        let mut points = Vec::with_capacity(pieces.len());
        let mut at = 0.0;
        for &(len, value) in &pieces {
            points.push((at, value));
            at += len;
        }
        DelayCurve::from_breakpoints(points, at).expect("valid curve")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 1, empirically: random sporadic interference never makes the
    /// victim pay more than Algorithm 1's bound.
    #[test]
    fn random_interference_respects_algorithm1(
        curve in arb_curve(),
        q_slack in 0.5f64..10.0,
        spike_cost in 0.01f64..2.0,
        min_gap in 0.1f64..5.0,
        gap_spread in 0.1f64..20.0,
        seed in 0u64..1_000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let q = curve.max_value() + q_slack;
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = curve.domain_end() * 4.0 + 200.0;
        let scenario = Scenario::random_interference(
            curve.domain_end(),
            q,
            &curve,
            spike_cost,
            min_gap,
            min_gap + gap_spread,
            horizon,
            &mut rng,
        );
        let result = simulate(&scenario, &SimConfig::floating_npr_fp(horizon));
        let check = check_against_algorithm1(&result, 1, &curve, q).unwrap();
        prop_assert!(
            check.holds,
            "observed {} > bound {:?}",
            check.observed_max,
            check.bound
        );
        // The victim finishes (the interference is finite).
        let victim = result.of_task(1).next().expect("victim simulated");
        prop_assert!(victim.completion.is_some());
    }

    /// The exact adversary is realisable: simulating its plan produces
    /// exactly the planned cumulative delay, which dominates the naive
    /// bound and respects Algorithm 1.
    #[test]
    fn exact_adversary_is_realisable(
        curve in arb_curve(),
        q_slack in 0.5f64..10.0,
        spike_cost in 0.01f64..1.0,
    ) {
        let q = curve.max_value() + q_slack;
        let exact = exact_worst_case(&curve, q)
            .unwrap()
            .expect("finite: q > max f");
        let points: Vec<f64> = exact.preemptions.iter().map(|&(p, _)| p).collect();
        prop_assume!(!points.is_empty());
        // Epsilon small enough not to push the last point past the end.
        let margin = curve.domain_end() - points.last().unwrap();
        let epsilon = (1e-7f64).min(margin / (2.0 * points.len() as f64));
        prop_assume!(epsilon > 0.0);
        let plan = Scenario::adversary(
            curve.domain_end(),
            q,
            &curve,
            &points,
            spike_cost,
            epsilon,
        );
        let result = simulate(&plan.scenario, &SimConfig::floating_npr_fp(1e9));
        let victim = result.of_task(1).next().expect("victim simulated");
        prop_assert!(
            (victim.cumulative_delay - plan.expected_delay).abs() < 1e-6,
            "simulated {} != planned {}",
            victim.cumulative_delay,
            plan.expected_delay
        );
        prop_assert_eq!(victim.preemptions as usize, points.len());
        // Plan delay sandwiched: naive <= plan <= algorithm1 (the epsilon
        // shift may move a sample across a breakpoint, so compare the plan,
        // not the un-shifted exact total).
        let alg1 = algorithm1(&curve, q).unwrap().expect_converged().total_delay;
        prop_assert!(plan.expected_delay <= alg1 + 1e-6);
        let naive = naive_bound(&curve, q).unwrap().total_delay;
        // The un-shifted exact dominates naive (Figure 2's lesson).
        prop_assert!(naive <= exact.total_delay + 1e-9);
    }

    /// Collation: under floating NPR the victim never suffers more
    /// preemptions than under fully-preemptive scheduling, and at least as
    /// much useful deferral (delay totals never higher).
    #[test]
    fn floating_npr_never_worse_than_preemptive(
        curve in arb_curve(),
        q_slack in 0.5f64..10.0,
        spike_cost in 0.01f64..2.0,
        seed in 0u64..1_000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let q = curve.max_value() + q_slack;
        let horizon = curve.domain_end() * 4.0 + 200.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let scenario = Scenario::random_interference(
            curve.domain_end(), q, &curve, spike_cost, 0.5, 10.0, horizon, &mut rng,
        );
        let npr = simulate(&scenario, &SimConfig::floating_npr_fp(horizon));
        let preemptive = simulate(&scenario, &SimConfig::preemptive_fp(horizon));
        let npr_m = &per_task_metrics(&npr, 2)[1];
        let pre_m = &per_task_metrics(&preemptive, 2)[1];
        prop_assert!(
            npr_m.preemptions <= pre_m.preemptions,
            "floating NPR suffered more preemptions ({} > {})",
            npr_m.preemptions,
            pre_m.preemptions
        );
    }

    /// Conservation: total useful work equals the sum of execution times;
    /// completion times are consistent with work + delay.
    #[test]
    fn work_conservation(
        curve in arb_curve(),
        q_slack in 0.5f64..8.0,
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let q = curve.max_value() + q_slack;
        let horizon = curve.domain_end() * 3.0 + 100.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let scenario = Scenario::random_interference(
            curve.domain_end(), q, &curve, 0.5, 1.0, 8.0, horizon, &mut rng,
        );
        let result = simulate(&scenario, &SimConfig::floating_npr_fp(horizon));
        for job in &result.jobs {
            if let (Some(start), Some(completion)) = (job.start, job.completion) {
                // A job occupies the CPU for exec + delay, possibly spread
                // over a longer wall interval.
                let busy = job.exec_time + job.cumulative_delay;
                prop_assert!(
                    completion - start >= busy - 1e-6,
                    "job finished faster than its own work: {} < {}",
                    completion - start,
                    busy
                );
            }
        }
    }

    /// The arrival-capped refinement (future work (ii)): a run with `n`
    /// preemptions pays at most the sum of the `n` largest window charges.
    #[test]
    fn capped_bound_covers_runs_with_few_preemptions(
        curve in arb_curve(),
        q_slack in 0.5f64..10.0,
        spike_cost in 0.01f64..2.0,
        min_gap in 0.5f64..10.0,
        gap_spread in 1.0f64..40.0,
        seed in 0u64..1_000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let q = curve.max_value() + q_slack;
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = curve.domain_end() * 4.0 + 200.0;
        let scenario = Scenario::random_interference(
            curve.domain_end(),
            q,
            &curve,
            spike_cost,
            min_gap,
            min_gap + gap_spread,
            horizon,
            &mut rng,
        );
        let result = simulate(&scenario, &SimConfig::floating_npr_fp(horizon));
        let victim = result.of_task(1).next().expect("victim simulated");
        let n = victim.preemptions as usize;
        let capped = algorithm1_capped(&curve, q, n)
            .unwrap()
            .expect("q > max f: convergent");
        prop_assert!(
            victim.cumulative_delay <= capped.total_delay + 1e-6,
            "run with {} preemptions paid {} > capped bound {}",
            n,
            victim.cumulative_delay,
            capped.total_delay
        );
    }

    /// Robustness: jobs running below their WCET under sporadic (minimum
    /// inter-arrival respected) interference still never exceed the
    /// Algorithm 1 bound computed for the full WCET curve.
    #[test]
    fn shorter_jobs_still_respect_bound(
        curve in arb_curve(),
        q_slack in 0.5f64..10.0,
        scale in 0.3f64..1.0,
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let q = curve.max_value() + q_slack;
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = curve.domain_end() * 4.0 + 200.0;
        let mut scenario = Scenario::random_interference(
            curve.domain_end(), q, &curve, 0.5, 1.0, 15.0, horizon, &mut rng,
        );
        // Shrink the victim's execution requirement: it completes earlier
        // and sees a prefix of the preemption pattern.
        scenario.tasks[1].exec_time *= scale;
        let result = simulate(&scenario, &SimConfig::floating_npr_fp(horizon));
        let check = check_against_algorithm1(&result, 1, &curve, q).unwrap();
        prop_assert!(
            check.holds,
            "short job paid {} > bound {:?}",
            check.observed_max,
            check.bound
        );
    }

    /// Non-preemptive runs never pay preemption delay, and the victim's
    /// response is minimal among the three modes (it is never interrupted).
    #[test]
    fn non_preemptive_pays_nothing(
        curve in arb_curve(),
        q_slack in 0.5f64..10.0,
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let q = curve.max_value() + q_slack;
        let horizon = curve.domain_end() * 4.0 + 200.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let scenario = Scenario::random_interference(
            curve.domain_end(), q, &curve, 0.5, 1.0, 10.0, horizon, &mut rng,
        );
        let np_config = SimConfig {
            policy: PriorityPolicy::FixedPriority,
            mode: PreemptionMode::NonPreemptive,
            horizon,
            collect_trace: false,
        };
        let np = simulate(&scenario, &np_config);
        let npr = simulate(&scenario, &SimConfig::floating_npr_fp(horizon));
        let victim_np = np.of_task(1).next().expect("ran");
        let victim_npr = npr.of_task(1).next().expect("ran");
        prop_assert_eq!(victim_np.preemptions, 0);
        prop_assert_eq!(victim_np.cumulative_delay, 0.0);
        // Released at 0 and never interrupted: response == exec time.
        prop_assert!((victim_np.response().unwrap() - victim_np.exec_time).abs() < 1e-9);
        prop_assert!(
            victim_npr.response().unwrap() >= victim_np.response().unwrap() - 1e-9
        );
    }

    /// EDF with all-equal deadlines degenerates to FP order on ties.
    #[test]
    fn edf_tie_break_is_deterministic(exec in 1.0f64..5.0) {
        let t = |e: f64| SimTask {
            exec_time: e,
            deadline: 100.0,
            q: None,
            delay_curve: None,
        };
        let scenario = Scenario {
            tasks: vec![t(exec), t(exec)],
            releases: vec![(0, 0.0), (1, 0.0)],
        };
        let config = SimConfig {
            policy: PriorityPolicy::Edf,
            mode: PreemptionMode::Preemptive,
            horizon: 1000.0,
            collect_trace: false,
        };
        let result = simulate(&scenario, &config);
        let c0 = result.of_task(0).next().unwrap().completion.unwrap();
        let c1 = result.of_task(1).next().unwrap().completion.unwrap();
        prop_assert!(c0 < c1, "task 0 should win the deadline tie");
    }
}
