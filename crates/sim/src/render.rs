//! ASCII rendering of simulation traces — one lane per task, useful for
//! demos, debugging and the Figure 2 harness.

use crate::engine::SimResult;
use crate::trace::TraceEvent;

/// Renders the trace as one text lane per task.
///
/// Symbols: `#` running, `!` preemption instant (delay charged), `|`
/// completion, `.` otherwise. Time is scaled to `width` columns over
/// `[0, until]`. Returns an empty string if the result carries no trace
/// (run with [`SimConfig::with_trace`]).
///
/// [`SimConfig::with_trace`]: crate::SimConfig::with_trace
///
/// # Panics
///
/// Panics if `until` is not finite and positive or `width` is zero
/// (programming errors in test/demo code, where this is used).
#[must_use]
pub fn render_timeline(result: &SimResult, tasks: usize, until: f64, width: usize) -> String {
    assert!(until.is_finite() && until > 0.0, "bad horizon");
    assert!(width > 0, "bad width");
    if result.trace.is_empty() {
        return String::new();
    }
    let column = |t: f64| -> usize { (((t / until) * width as f64) as usize).min(width - 1) };
    let mut lanes: Vec<Vec<char>> = vec![vec!['.'; width]; tasks];
    // Running intervals: from each Dispatched to the next event that stops
    // that job (Preempted or Completed).
    let mut running: Option<(usize, f64)> = None; // (task, since)
    let mark_run = |lanes: &mut Vec<Vec<char>>, task: usize, from: f64, to: f64| {
        if task >= lanes.len() {
            return;
        }
        let (lo, hi) = (column(from), column(to));
        for cell in &mut lanes[task][lo..=hi] {
            if *cell == '.' {
                *cell = '#';
            }
        }
    };
    for event in &result.trace {
        match *event {
            TraceEvent::Dispatched { at, task, .. } => {
                if let Some((t, since)) = running.take() {
                    mark_run(&mut lanes, t, since, at);
                }
                running = Some((task, at));
            }
            TraceEvent::Preempted { at, task, .. } => {
                if let Some((t, since)) = running.take() {
                    mark_run(&mut lanes, t, since, at);
                }
                if task < lanes.len() {
                    let c = column(at);
                    lanes[task][c] = '!';
                }
            }
            TraceEvent::Completed { at, task, .. } => {
                if let Some((t, since)) = running.take() {
                    mark_run(&mut lanes, t, since, at);
                }
                if task < lanes.len() {
                    let c = column(at);
                    lanes[task][c] = '|';
                }
            }
            TraceEvent::Released { .. }
            | TraceEvent::NprStarted { .. }
            | TraceEvent::NprExpired { .. } => {}
        }
    }
    let mut out = String::new();
    for (task, lane) in lanes.iter().enumerate() {
        out.push_str(&format!("task {task} |"));
        out.extend(lane.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "        0{:>width$}\n",
        format!("{until:.0}"),
        width = width
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::policy::{PreemptionMode, SimConfig};
    use crate::scenario::{Scenario, SimTask};
    use fnpr_core::DelayCurve;

    fn traced_run() -> SimResult {
        let curve = DelayCurve::constant(2.0, 10.0).unwrap();
        let s = Scenario {
            tasks: vec![
                SimTask {
                    exec_time: 1.0,
                    deadline: 100.0,
                    q: None,
                    delay_curve: None,
                },
                SimTask {
                    exec_time: 10.0,
                    deadline: 100.0,
                    q: Some(4.0),
                    delay_curve: Some(curve),
                },
            ],
            releases: vec![(1, 0.0), (0, 3.0)],
        };
        let config = SimConfig {
            policy: crate::policy::PriorityPolicy::FixedPriority,
            mode: PreemptionMode::FloatingNpr,
            horizon: 100.0,
            collect_trace: true,
        };
        simulate(&s, &config)
    }

    #[test]
    fn timeline_shows_lanes_and_events() {
        let result = traced_run();
        let rendered = render_timeline(&result, 2, 15.0, 60);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3); // two lanes + axis
        assert!(lines[0].starts_with("task 0 |"));
        assert!(lines[1].contains('#'), "victim lane shows execution");
        assert!(lines[1].contains('!'), "victim lane shows the preemption");
        assert!(
            lines[0].contains('|') || lines[1].contains('|'),
            "completions marked"
        );
    }

    #[test]
    fn empty_trace_renders_empty() {
        let curve = DelayCurve::constant(1.0, 5.0).unwrap();
        let s = Scenario {
            tasks: vec![SimTask {
                exec_time: 5.0,
                deadline: 100.0,
                q: None,
                delay_curve: Some(curve),
            }],
            releases: vec![(0, 0.0)],
        };
        let result = simulate(&s, &SimConfig::floating_npr_fp(100.0)); // no trace
        assert_eq!(render_timeline(&result, 1, 10.0, 40), "");
    }
}
