//! Scheduling policy configuration.

use serde::{Deserialize, Serialize};

/// How job priorities are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PriorityPolicy {
    /// Fixed task priorities: lower task index = higher priority.
    FixedPriority,
    /// Earliest deadline first: earlier absolute deadline = higher priority
    /// (ties broken by task index, then release time).
    Edf,
}

/// How preemptions are handled — the three categories of the paper's
/// introduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreemptionMode {
    /// Fully preemptive: the highest-priority ready job always gets the
    /// processor immediately.
    Preemptive,
    /// Non-preemptive: a dispatched job runs to completion.
    NonPreemptive,
    /// Floating non-preemptive regions: a higher-priority release while a
    /// lower-priority job runs opens a region of the *running* task's `Q`;
    /// at expiry the highest-priority ready job is dispatched. Releases
    /// during an active region neither extend nor restart it.
    FloatingNpr,
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Priority ordering.
    pub policy: PriorityPolicy,
    /// Preemption handling.
    pub mode: PreemptionMode,
    /// Simulation horizon: releases beyond it are ignored, and the run stops
    /// once the queue drains after it.
    pub horizon: f64,
    /// Record a full event trace (costs memory on long runs).
    pub collect_trace: bool,
}

impl SimConfig {
    /// Floating-NPR fixed-priority configuration (the paper's setting).
    #[must_use]
    pub fn floating_npr_fp(horizon: f64) -> Self {
        Self {
            policy: PriorityPolicy::FixedPriority,
            mode: PreemptionMode::FloatingNpr,
            horizon,
            collect_trace: false,
        }
    }

    /// Fully preemptive fixed-priority configuration.
    #[must_use]
    pub fn preemptive_fp(horizon: f64) -> Self {
        Self {
            policy: PriorityPolicy::FixedPriority,
            mode: PreemptionMode::Preemptive,
            horizon,
            collect_trace: false,
        }
    }

    /// Enables trace collection, builder-style.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let c = SimConfig::floating_npr_fp(100.0);
        assert_eq!(c.mode, PreemptionMode::FloatingNpr);
        assert_eq!(c.policy, PriorityPolicy::FixedPriority);
        assert_eq!(c.horizon, 100.0);
        assert!(!c.collect_trace);
        assert!(c.with_trace().collect_trace);
        let p = SimConfig::preemptive_fp(50.0);
        assert_eq!(p.mode, PreemptionMode::Preemptive);
    }
}
