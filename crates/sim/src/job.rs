//! Per-job simulation state and the exported records.

use serde::{Deserialize, Serialize};

use crate::scenario::SimTask;

/// Mutable job state inside the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct JobState {
    /// Dense id in release order.
    pub id: usize,
    /// Owning task index.
    pub task: usize,
    /// Release time.
    pub release: f64,
    /// Absolute deadline (`release + D`).
    pub abs_deadline: f64,
    /// Useful work required.
    pub exec_time: f64,
    /// Useful work performed so far.
    pub progress: f64,
    /// Preemption delay charged but not yet serviced.
    pub pending_delay: f64,
    /// Total preemption delay charged.
    pub cumulative_delay: f64,
    /// Number of preemptions suffered.
    pub preemptions: u32,
    /// First dispatch time.
    pub start: Option<f64>,
    /// Completion time.
    pub completion: Option<f64>,
}

impl JobState {
    pub(crate) fn new(id: usize, task: usize, release: f64, spec: &SimTask) -> Self {
        Self {
            id,
            task,
            release,
            abs_deadline: release + spec.deadline,
            exec_time: spec.exec_time,
            progress: 0.0,
            pending_delay: 0.0,
            cumulative_delay: 0.0,
            preemptions: 0,
            start: None,
            completion: None,
        }
    }

    /// Outstanding processor time: pending delay first, then useful work.
    pub(crate) fn remaining(&self) -> f64 {
        self.pending_delay + (self.exec_time - self.progress)
    }

    /// Consumes `dt` of processor time: services delay, then progresses.
    pub(crate) fn advance(&mut self, dt: f64) {
        let serviced = dt.min(self.pending_delay);
        self.pending_delay -= serviced;
        self.progress += dt - serviced;
    }

    /// Charges one preemption of `delay` units.
    pub(crate) fn charge_preemption(&mut self, delay: f64) {
        self.pending_delay += delay;
        self.cumulative_delay += delay;
        self.preemptions += 1;
    }

    /// Marks completion, snapping the state exactly.
    pub(crate) fn finish(&mut self, at: f64) {
        self.progress = self.exec_time;
        self.pending_delay = 0.0;
        self.completion = Some(at);
    }

    /// Snapshot for the result set. Migrations are a multicore concept; the
    /// unicore engine leaves them 0 and [`crate::simulate_multicore`] fills
    /// them in from its per-core bookkeeping.
    pub(crate) fn record(&self) -> JobRecord {
        JobRecord {
            id: self.id,
            task: self.task,
            release: self.release,
            abs_deadline: self.abs_deadline,
            exec_time: self.exec_time,
            start: self.start,
            completion: self.completion,
            preemptions: self.preemptions,
            cumulative_delay: self.cumulative_delay,
            migrations: 0,
        }
    }
}

/// Immutable per-job outcome exported by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Dense id in release order.
    pub id: usize,
    /// Owning task index.
    pub task: usize,
    /// Release time.
    pub release: f64,
    /// Absolute deadline.
    pub abs_deadline: f64,
    /// Useful work required.
    pub exec_time: f64,
    /// First dispatch time (`None` if never ran).
    pub start: Option<f64>,
    /// Completion time (`None` if unfinished at horizon drain).
    pub completion: Option<f64>,
    /// Preemptions suffered.
    pub preemptions: u32,
    /// Total preemption delay charged.
    pub cumulative_delay: f64,
    /// Times the job resumed on a different core than it last ran on
    /// (always 0 on the unicore engine).
    pub migrations: u32,
}

impl JobRecord {
    /// Response time (`completion − release`), when completed.
    #[must_use]
    pub fn response(&self) -> Option<f64> {
        self.completion.map(|c| c - self.release)
    }

    /// `true` when the job completed by its absolute deadline.
    #[must_use]
    pub fn deadline_met(&self) -> bool {
        match self.completion {
            Some(c) => c <= self.abs_deadline + 1e-9,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(exec: f64) -> SimTask {
        SimTask {
            exec_time: exec,
            deadline: 10.0,
            q: None,
            delay_curve: None,
        }
    }

    #[test]
    fn advance_services_delay_first() {
        let mut job = JobState::new(0, 0, 0.0, &spec(10.0));
        job.charge_preemption(3.0);
        assert_eq!(job.remaining(), 13.0);
        job.advance(2.0);
        assert_eq!(job.pending_delay, 1.0);
        assert_eq!(job.progress, 0.0);
        job.advance(4.0);
        assert_eq!(job.pending_delay, 0.0);
        assert_eq!(job.progress, 3.0);
        assert_eq!(job.cumulative_delay, 3.0);
        assert_eq!(job.preemptions, 1);
    }

    #[test]
    fn record_round_trip() {
        let mut job = JobState::new(3, 1, 5.0, &spec(2.0));
        job.start = Some(6.0);
        job.finish(9.0);
        let rec = job.record();
        assert_eq!(rec.response(), Some(4.0));
        assert!(rec.deadline_met()); // 9 <= 5 + 10
        assert_eq!(rec.task, 1);
        assert_eq!(rec.id, 3);
    }

    #[test]
    fn missed_deadline_and_unfinished() {
        let mut job = JobState::new(0, 0, 0.0, &spec(2.0));
        assert!(!job.record().deadline_met()); // never finished
        job.finish(100.0);
        assert!(!job.record().deadline_met()); // too late
    }
}
