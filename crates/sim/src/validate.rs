//! Bridges between simulation and analysis: run a scenario, compare the
//! observed cumulative delays against the static bounds.

use fnpr_core::{algorithm1, AnalysisError, BoundOutcome, DelayCurve};
use serde::{Deserialize, Serialize};

use crate::engine::SimResult;
use crate::job::JobRecord;
use crate::multi::MultiSimResult;

/// Outcome of checking one task's simulated delays against a bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundCheck {
    /// The static bound compared against (`None` = divergent analysis, i.e.
    /// an infinite bound that trivially holds).
    pub bound: Option<f64>,
    /// Largest cumulative delay observed for a single job.
    pub observed_max: f64,
    /// `true` when every observed job respected the bound.
    pub holds: bool,
}

/// Checks Theorem 1 empirically: every simulated job of `task` must pay at
/// most the Algorithm 1 bound for its curve and region length.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the bound computation.
pub fn check_against_algorithm1(
    result: &SimResult,
    task: usize,
    curve: &DelayCurve,
    q: f64,
) -> Result<BoundCheck, AnalysisError> {
    check_jobs_against_algorithm1(&result.jobs, task, curve, q)
}

/// [`check_against_algorithm1`] for multicore runs: the per-job bound is
/// unchanged, because the m-core engine preserves the floating-NPR
/// progression (a job is only preempted at the expiry of a region armed at
/// least `Q` of its own execution earlier).
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the bound computation.
pub fn check_multicore_against_algorithm1(
    result: &MultiSimResult,
    task: usize,
    curve: &DelayCurve,
    q: f64,
) -> Result<BoundCheck, AnalysisError> {
    check_jobs_against_algorithm1(&result.jobs, task, curve, q)
}

/// The shared core of the Theorem 1 check over a raw job slice.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the bound computation.
pub fn check_jobs_against_algorithm1(
    jobs: &[JobRecord],
    task: usize,
    curve: &DelayCurve,
    q: f64,
) -> Result<BoundCheck, AnalysisError> {
    let outcome = algorithm1(curve, q)?;
    let observed_max = jobs
        .iter()
        .filter(|j| j.task == task)
        .map(|j| j.cumulative_delay)
        .fold(0.0f64, f64::max);
    let (bound, holds) = match outcome {
        BoundOutcome::Converged(b) => (Some(b.total_delay), observed_max <= b.total_delay + 1e-6),
        BoundOutcome::Divergent { .. } => (None, true),
    };
    Ok(BoundCheck {
        bound,
        observed_max,
        holds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::policy::SimConfig;
    use crate::scenario::Scenario;
    use fnpr_core::exact_worst_case;

    #[test]
    fn adversary_run_meets_bound_with_equality_on_constant_curves() {
        // Constant curve: Algorithm 1 is tight, and the adversary realises
        // the exact worst case in simulation.
        let curve = DelayCurve::constant(2.0, 10.0).unwrap();
        let q = 4.0;
        let exact = exact_worst_case(&curve, q).unwrap().expect("finite");
        let points: Vec<f64> = exact.preemptions.iter().map(|&(p, _)| p).collect();
        let plan = Scenario::adversary(10.0, q, &curve, &points, 0.25, 1e-7);
        let result = simulate(&plan.scenario, &SimConfig::floating_npr_fp(1_000.0));
        let victim_delay = result
            .of_task(1)
            .next()
            .expect("victim ran")
            .cumulative_delay;
        assert!(
            (victim_delay - plan.expected_delay).abs() < 1e-6,
            "simulated {victim_delay} != planned {}",
            plan.expected_delay
        );
        let check = check_against_algorithm1(&result, 1, &curve, q).unwrap();
        assert!(check.holds);
        // Tightness: the adversary achieves the bound on constant curves.
        assert!((check.observed_max - check.bound.unwrap()).abs() < 1e-6);
    }

    #[test]
    fn divergent_bound_trivially_holds() {
        let curve = DelayCurve::constant(5.0, 10.0).unwrap();
        let plan = Scenario::adversary(10.0, 6.0, &curve, &[6.0], 0.25, 1e-7);
        let result = simulate(&plan.scenario, &SimConfig::floating_npr_fp(1_000.0));
        // Against a smaller q the analysis diverges; the check still holds.
        let check = check_against_algorithm1(&result, 1, &curve, 4.0).unwrap();
        assert_eq!(check.bound, None);
        assert!(check.holds);
    }
}
