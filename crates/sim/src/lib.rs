//! # fnpr-sim — discrete-event scheduler simulator
//!
//! An executable model of the paper's system: a unicore processor running
//! sporadic jobs under fixed-priority or EDF scheduling, with fully
//! preemptive, non-preemptive or **floating non-preemptive region**
//! preemption handling, and preemption delays drawn from each task's
//! `fi(t)` at the *actual progress point* of each preemption. The
//! [`simulate_multicore`] engine extends the model to `m` identical cores
//! under global dispatching, with per-core floating-NPR state and
//! migration accounting (and reproduces the unicore engine exactly at
//! `m = 1`).
//!
//! Its purpose is validation and demonstration:
//!
//! * Theorem 1 empirically — no run's cumulative delay exceeds the
//!   Algorithm 1 bound ([`check_against_algorithm1`], plus property tests);
//! * the Figure 2 phenomenon constructively — [`Scenario::adversary`]
//!   builds a legal run that beats the naive point-selection bound;
//! * policy comparisons — preemption counts and delay totals across
//!   fully-preemptive vs. floating-NPR runs ([`per_task_metrics`]).
//!
//! # Example
//!
//! ```
//! use fnpr_core::DelayCurve;
//! use fnpr_sim::{simulate, Scenario, SimConfig, SimTask};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let curve = DelayCurve::constant(2.0, 10.0)?;
//! let scenario = Scenario {
//!     tasks: vec![
//!         SimTask { exec_time: 1.0, deadline: 10.0, q: None, delay_curve: None },
//!         SimTask { exec_time: 10.0, deadline: 50.0, q: Some(4.0),
//!                   delay_curve: Some(curve) },
//!     ],
//!     releases: vec![(1, 0.0), (0, 3.0)],
//! };
//! let result = simulate(&scenario, &SimConfig::floating_npr_fp(100.0));
//! // The spike at t=3 is deferred to the region end at t=7.
//! let victim = result.of_task(1).next().expect("ran");
//! assert_eq!(victim.preemptions, 1);
//! assert_eq!(victim.cumulative_delay, 2.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

mod engine;
mod job;
mod metrics;
mod multi;
mod policy;
mod render;
mod scenario;
mod trace;
mod validate;

pub use engine::{simulate, SimResult};
pub use job::JobRecord;
pub use metrics::{
    per_task_metrics, per_task_metrics_jobs, run_metrics, run_metrics_jobs, RunMetrics, TaskMetrics,
};
pub use multi::{simulate_multicore, MultiSimConfig, MultiSimResult, MultiTraceEvent};
pub use policy::{PreemptionMode, PriorityPolicy, SimConfig};
pub use render::render_timeline;
pub use scenario::{AdversaryPlan, Scenario, SimTask};
pub use trace::TraceEvent;
pub use validate::{
    check_against_algorithm1, check_jobs_against_algorithm1, check_multicore_against_algorithm1,
    BoundCheck,
};
