//! The discrete-event unicore scheduler.
//!
//! Semantics (matching the paper's Section III):
//!
//! * a job's *execution clock* advances only while it holds the processor;
//!   outstanding preemption delay is serviced before useful progress
//!   resumes;
//! * a preemption of job `J` at progress `p` charges `fJ(p)` extra execution
//!   (added to `J`'s outstanding delay at the preemption instant);
//! * under [`PreemptionMode::FloatingNpr`], a higher-priority release while
//!   `J` runs arms a region ending `QJ` later (on `J`'s execution clock —
//!   equivalently wall clock, since `J` runs throughout); releases during an
//!   active region are collated into the single preemption at its expiry;
//!   the region dies if `J` completes first;
//! * event ordering within one instant: completions, then releases, then
//!   region expiry. A release coinciding with a dispatch is seen by the
//!   dispatcher (the worst-case "release at the exact start" of the paper is
//!   approached by releases strictly inside the running interval).

use serde::{Deserialize, Serialize};

use crate::job::{JobRecord, JobState};
use crate::policy::{PreemptionMode, PriorityPolicy, SimConfig};
use crate::scenario::Scenario;
use crate::trace::TraceEvent;

/// Hard cap on processed events (defensive against degenerate scenarios).
const MAX_EVENTS: usize = 50_000_000;

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// One record per job, in release order.
    pub jobs: Vec<JobRecord>,
    /// Event trace (empty unless [`SimConfig::collect_trace`] was set).
    pub trace: Vec<TraceEvent>,
}

impl SimResult {
    /// Records of one task's jobs.
    pub fn of_task(&self, task: usize) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(move |j| j.task == task)
    }

    /// `true` when every completed job met its deadline and all jobs
    /// completed.
    #[must_use]
    pub fn all_deadlines_met(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| j.completion.is_some() && j.deadline_met())
    }
}

/// Runs a scenario under a configuration.
///
/// # Panics
///
/// Panics if the scenario references a task index out of range, a release
/// time is not finite, or the event cap is exceeded (all indicate malformed
/// generated input rather than recoverable conditions).
#[must_use]
pub fn simulate(scenario: &Scenario, config: &SimConfig) -> SimResult {
    for &(task, at) in &scenario.releases {
        assert!(task < scenario.tasks.len(), "release for unknown task");
        assert!(at.is_finite() && at >= 0.0, "bad release time {at}");
    }
    let mut jobs: Vec<JobState> = Vec::with_capacity(scenario.releases.len());
    for &(task, at) in &scenario.releases {
        if at < config.horizon {
            let spec = &scenario.tasks[task];
            jobs.push(JobState::new(jobs.len(), task, at, spec));
        }
    }
    // Release order (already sorted by scenario contract; enforce anyway).
    jobs.sort_by(|a, b| a.release.total_cmp(&b.release));
    for (k, job) in jobs.iter_mut().enumerate() {
        job.id = k;
    }

    let mut engine = Engine {
        scenario,
        config,
        jobs,
        ready: Vec::new(),
        running: None,
        npr_expiry: None,
        next_release: 0,
        now: 0.0,
        trace: Vec::new(),
        events: 0,
    };
    engine.run();
    SimResult {
        jobs: engine.jobs.iter().map(JobState::record).collect(),
        trace: engine.trace,
    }
}

struct Engine<'a> {
    scenario: &'a Scenario,
    config: &'a SimConfig,
    jobs: Vec<JobState>,
    ready: Vec<usize>,
    running: Option<usize>,
    npr_expiry: Option<f64>,
    next_release: usize, // index into jobs (release-sorted)
    now: f64,
    trace: Vec<TraceEvent>,
    events: usize,
}

impl Engine<'_> {
    fn run(&mut self) {
        loop {
            self.events += 1;
            assert!(self.events < MAX_EVENTS, "event cap exceeded");
            self.ingest_releases();
            if self.running.is_none() {
                if let Some(job) = self.pop_highest_ready() {
                    self.dispatch(job);
                } else if self.next_release < self.jobs.len() {
                    self.now = self.jobs[self.next_release].release;
                    continue;
                } else {
                    return; // drained
                }
            }
            let running = self.running.expect("dispatched above");
            let remaining = self.jobs[running].remaining();
            let completion_t = self.now + remaining;
            let release_t = self
                .jobs
                .get(self.next_release)
                .map(|j| j.release)
                .filter(|&t| t < completion_t);
            let expiry_t = self.npr_expiry.filter(|&t| t < completion_t);
            let t = [Some(completion_t), release_t, expiry_t]
                .into_iter()
                .flatten()
                .fold(f64::INFINITY, f64::min);
            self.advance_running(t - self.now);
            self.now = t;
            if release_t.is_none() && expiry_t.is_none() {
                self.complete_running();
                continue;
            }
            // Releases at t are ingested at the top of the loop; they may
            // arm a region or preempt immediately depending on the mode.
            self.ingest_releases();
            if let Some(expiry) = self.npr_expiry {
                if expiry <= self.now {
                    self.npr_expiry = None;
                    self.trace(TraceEvent::NprExpired { at: self.now });
                    self.preempt_if_outranked();
                }
            }
        }
    }

    /// Moves all jobs released at or before `now` into the ready queue,
    /// applying the preemption-mode reaction for each.
    fn ingest_releases(&mut self) {
        while self.next_release < self.jobs.len()
            && self.jobs[self.next_release].release <= self.now
        {
            let id = self.next_release;
            self.next_release += 1;
            self.ready.push(id);
            self.trace(TraceEvent::Released {
                at: self.jobs[id].release,
                job: id,
                task: self.jobs[id].task,
            });
            let Some(running) = self.running else {
                continue;
            };
            if !self.outranks(id, running) {
                continue;
            }
            match self.config.mode {
                PreemptionMode::Preemptive => self.preempt(running),
                PreemptionMode::NonPreemptive => {}
                PreemptionMode::FloatingNpr => {
                    if self.npr_expiry.is_none() {
                        match self.scenario.tasks[self.jobs[running].task].q {
                            Some(q) => {
                                self.npr_expiry = Some(self.now + q);
                                self.trace(TraceEvent::NprStarted {
                                    at: self.now,
                                    job: running,
                                    until: self.now + q,
                                });
                            }
                            // No region length: behave preemptively.
                            None => self.preempt(running),
                        }
                    }
                }
            }
        }
    }

    /// Job `a` strictly outranks job `b` (total order; ties broken by task
    /// index, then release order, so same-task jobs run FIFO even after the
    /// ready queue has been shuffled by preemptions).
    fn outranks(&self, a: usize, b: usize) -> bool {
        let ja = &self.jobs[a];
        let jb = &self.jobs[b];
        let key_a = match self.config.policy {
            PriorityPolicy::FixedPriority => (0.0, ja.task, ja.id),
            PriorityPolicy::Edf => (ja.abs_deadline, ja.task, ja.id),
        };
        let key_b = match self.config.policy {
            PriorityPolicy::FixedPriority => (0.0, jb.task, jb.id),
            PriorityPolicy::Edf => (jb.abs_deadline, jb.task, jb.id),
        };
        key_a < key_b
    }

    fn pop_highest_ready(&mut self) -> Option<usize> {
        if self.ready.is_empty() {
            return None;
        }
        let mut best = 0;
        for k in 1..self.ready.len() {
            if self.outranks(self.ready[k], self.ready[best]) {
                best = k;
            }
        }
        Some(self.ready.swap_remove(best))
    }

    fn dispatch(&mut self, job: usize) {
        fnpr_obs::counter!("sim.dispatches").incr();
        self.running = Some(job);
        let state = &mut self.jobs[job];
        if state.start.is_none() {
            state.start = Some(self.now);
        }
        self.trace(TraceEvent::Dispatched {
            at: self.now,
            job,
            task: self.jobs[job].task,
        });
    }

    fn advance_running(&mut self, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        let job = self.running.expect("advance without a running job");
        self.jobs[job].advance(dt);
    }

    fn complete_running(&mut self) {
        let job = self.running.take().expect("completion without running");
        self.jobs[job].finish(self.now);
        self.npr_expiry = None; // a region dies with its job
        self.trace(TraceEvent::Completed {
            at: self.now,
            job,
            task: self.jobs[job].task,
        });
    }

    /// Preempts the running job if some ready job outranks it.
    fn preempt_if_outranked(&mut self) {
        let Some(running) = self.running else { return };
        let outranked = self
            .ready
            .iter()
            .any(|&candidate| self.outranks(candidate, running));
        if outranked {
            self.preempt(running);
        }
    }

    /// Charges the preemption delay and returns the job to the ready queue.
    fn preempt(&mut self, job: usize) {
        debug_assert_eq!(self.running, Some(job));
        fnpr_obs::counter!("sim.preemptions").incr();
        let task = self.jobs[job].task;
        let progress = self.jobs[job].progress;
        let delay = self.scenario.tasks[task]
            .delay_curve
            .as_ref()
            .map_or(0.0, |curve| curve.value_at(progress));
        self.jobs[job].charge_preemption(delay);
        self.trace(TraceEvent::Preempted {
            at: self.now,
            job,
            task,
            progress,
            delay,
        });
        self.ready.push(job);
        self.running = None;
        self.npr_expiry = None;
    }

    fn trace(&mut self, event: TraceEvent) {
        if self.config.collect_trace {
            self.trace.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SimTask;
    use fnpr_core::DelayCurve;

    fn task(exec: f64, q: Option<f64>, curve: Option<DelayCurve>) -> SimTask {
        SimTask {
            exec_time: exec,
            deadline: f64::INFINITY,
            q,
            delay_curve: curve,
        }
    }

    fn fp(mode: PreemptionMode) -> SimConfig {
        SimConfig {
            policy: PriorityPolicy::FixedPriority,
            mode,
            horizon: 1_000.0,
            collect_trace: true,
        }
    }

    #[test]
    fn single_job_runs_to_completion() {
        let s = Scenario {
            tasks: vec![task(10.0, None, None)],
            releases: vec![(0, 0.0)],
        };
        let r = simulate(&s, &fp(PreemptionMode::Preemptive));
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].completion, Some(10.0));
        assert_eq!(r.jobs[0].preemptions, 0);
        assert_eq!(r.jobs[0].cumulative_delay, 0.0);
        assert_eq!(r.jobs[0].response(), Some(10.0));
    }

    #[test]
    fn preemptive_mode_preempts_immediately() {
        // Victim (low prio) starts at 0; spike at 3 preempts instantly.
        let curve = DelayCurve::constant(2.0, 10.0).unwrap();
        let s = Scenario {
            tasks: vec![task(1.0, None, None), task(10.0, None, Some(curve))],
            releases: vec![(1, 0.0), (0, 3.0)],
        };
        let r = simulate(&s, &fp(PreemptionMode::Preemptive));
        let victim = &r.jobs[0]; // release-sorted: victim released first
        assert_eq!(victim.task, 1);
        assert_eq!(victim.preemptions, 1);
        assert_eq!(victim.cumulative_delay, 2.0);
        // Timeline: victim 0..3 (progress 3), spike 3..4, victim pays 2 and
        // finishes remaining 7: 4 + 2 + 7 = 13.
        assert_eq!(victim.completion, Some(13.0));
        let spike = &r.jobs[1];
        assert_eq!(spike.completion, Some(4.0));
    }

    #[test]
    fn non_preemptive_mode_never_preempts() {
        let curve = DelayCurve::constant(2.0, 10.0).unwrap();
        let s = Scenario {
            tasks: vec![task(1.0, None, None), task(10.0, None, Some(curve))],
            releases: vec![(1, 0.0), (0, 3.0)],
        };
        let r = simulate(&s, &fp(PreemptionMode::NonPreemptive));
        let victim = &r.jobs[0];
        assert_eq!(victim.preemptions, 0);
        assert_eq!(victim.completion, Some(10.0));
        let spike = &r.jobs[1];
        assert_eq!(spike.completion, Some(11.0)); // waits for the victim
    }

    #[test]
    fn floating_npr_defers_preemption_by_q() {
        // Victim q=4: spike released at 3 -> region until 7, preemption at
        // progress 7 (not 3).
        let curve = DelayCurve::constant(2.0, 10.0).unwrap();
        let s = Scenario {
            tasks: vec![task(1.0, None, None), task(10.0, Some(4.0), Some(curve))],
            releases: vec![(1, 0.0), (0, 3.0)],
        };
        let r = simulate(&s, &fp(PreemptionMode::FloatingNpr));
        let victim = &r.jobs[0];
        assert_eq!(victim.preemptions, 1);
        assert_eq!(victim.cumulative_delay, 2.0);
        // Timeline: victim 0..7 (progress 7), spike 7..8, victim pays 2,
        // remaining 3: completes 8 + 2 + 3 = 13.
        assert_eq!(victim.completion, Some(13.0));
        // The trace shows the region.
        assert!(r
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::NprStarted { until, .. } if *until == 7.0)));
        // The preemption progress is 7.
        assert!(r
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Preempted { progress, .. } if *progress == 7.0)));
    }

    #[test]
    fn releases_during_active_region_are_collated() {
        // Two spikes released at 3 and 5, region 3..7: a single preemption
        // at 7 services both.
        let curve = DelayCurve::constant(2.0, 20.0).unwrap();
        let s = Scenario {
            tasks: vec![task(1.0, None, None), task(20.0, Some(4.0), Some(curve))],
            releases: vec![(1, 0.0), (0, 3.0), (0, 5.0)],
        };
        let r = simulate(&s, &fp(PreemptionMode::FloatingNpr));
        let victim = &r.jobs[0];
        assert_eq!(victim.preemptions, 1, "collation failed");
        assert_eq!(victim.cumulative_delay, 2.0);
        // victim 0..7; spikes 7..8, 8..9; victim resumes, pays 2 and the
        // remaining 13: 9 + 2 + 13 = 24.
        assert_eq!(victim.completion, Some(24.0));
    }

    #[test]
    fn region_dies_with_completing_job() {
        // Victim has only 2 left when the spike arrives; region would end at
        // 6 but the victim completes at 5; the spike runs right away.
        let curve = DelayCurve::constant(2.0, 5.0).unwrap();
        let s = Scenario {
            tasks: vec![task(1.0, None, None), task(5.0, Some(3.0), Some(curve))],
            releases: vec![(1, 0.0), (0, 3.0)],
        };
        let r = simulate(&s, &fp(PreemptionMode::FloatingNpr));
        let victim = &r.jobs[0];
        assert_eq!(victim.preemptions, 0);
        assert_eq!(victim.completion, Some(5.0));
        let spike = &r.jobs[1];
        assert_eq!(spike.completion, Some(6.0));
    }

    #[test]
    fn lower_priority_release_never_triggers_region() {
        // A *lower* priority release while the high-priority job runs does
        // nothing.
        let s = Scenario {
            tasks: vec![task(10.0, Some(2.0), None), task(1.0, None, None)],
            releases: vec![(0, 0.0), (1, 3.0)],
        };
        let r = simulate(&s, &fp(PreemptionMode::FloatingNpr));
        assert_eq!(r.jobs[0].completion, Some(10.0));
        assert_eq!(r.jobs[0].preemptions, 0);
        assert_eq!(r.jobs[1].completion, Some(11.0));
        assert!(!r
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::NprStarted { .. })));
    }

    #[test]
    fn edf_orders_by_absolute_deadline() {
        // Task 0 (would win under FP) has a later absolute deadline than
        // task 1: EDF runs task 1 first.
        let mut t0 = task(2.0, None, None);
        t0.deadline = 100.0;
        let mut t1 = task(2.0, None, None);
        t1.deadline = 10.0;
        let s = Scenario {
            tasks: vec![t0, t1],
            releases: vec![(0, 0.0), (1, 0.0)],
        };
        let config = SimConfig {
            policy: PriorityPolicy::Edf,
            mode: PreemptionMode::Preemptive,
            horizon: 1000.0,
            collect_trace: false,
        };
        let r = simulate(&s, &config);
        let t1_completion = r.of_task(1).next().unwrap().completion.unwrap();
        let t0_completion = r.of_task(0).next().unwrap().completion.unwrap();
        assert!(t1_completion < t0_completion);
    }

    #[test]
    fn edf_floating_npr_defers_by_running_tasks_region() {
        // EDF priorities: the later-released job has the earlier absolute
        // deadline and would preempt; the running task's region defers it.
        let mut victim = task(
            10.0,
            Some(4.0),
            Some(DelayCurve::constant(1.0, 10.0).unwrap()),
        );
        victim.deadline = 100.0;
        let mut urgent = task(1.0, None, None);
        urgent.deadline = 5.0; // released at 3 -> absolute 8 < 100
        let s = Scenario {
            tasks: vec![victim, urgent],
            releases: vec![(0, 0.0), (1, 3.0)],
        };
        let config = SimConfig {
            policy: PriorityPolicy::Edf,
            mode: PreemptionMode::FloatingNpr,
            horizon: 1000.0,
            collect_trace: true,
        };
        let r = simulate(&s, &config);
        let victim_rec = r.of_task(0).next().unwrap();
        assert_eq!(victim_rec.preemptions, 1);
        // Region 3..7; urgent runs 7..8; victim pays 1, finishes 8+1+3=12.
        assert_eq!(victim_rec.completion, Some(12.0));
        let urgent_rec = r.of_task(1).next().unwrap();
        assert_eq!(urgent_rec.completion, Some(8.0));
        assert!(urgent_rec.deadline_met());
    }

    #[test]
    fn same_task_jobs_run_fifo() {
        // Two queued jobs of one task must complete in release order, even
        // after the ready queue has been reshuffled by a preemption.
        let s = Scenario {
            tasks: vec![task(1.0, None, None), task(6.0, None, None)],
            releases: vec![(1, 0.0), (1, 1.0), (0, 2.0)],
        };
        let r = simulate(&s, &fp(PreemptionMode::Preemptive));
        let completions: Vec<(f64, f64)> = r
            .of_task(1)
            .map(|j| (j.release, j.completion.unwrap()))
            .collect();
        assert_eq!(completions.len(), 2);
        assert!(completions[0].0 < completions[1].0);
        assert!(
            completions[0].1 < completions[1].1,
            "same-task jobs completed out of release order: {completions:?}"
        );
    }

    #[test]
    fn deadline_miss_is_reported() {
        let mut t = task(10.0, None, None);
        t.deadline = 5.0;
        let s = Scenario {
            tasks: vec![t],
            releases: vec![(0, 0.0)],
        };
        let r = simulate(&s, &fp(PreemptionMode::Preemptive));
        assert!(!r.jobs[0].deadline_met());
        assert!(!r.all_deadlines_met());
    }

    #[test]
    fn horizon_truncates_releases() {
        let s = Scenario {
            tasks: vec![task(1.0, None, None)],
            releases: vec![(0, 0.0), (0, 5.0), (0, 2000.0)],
        };
        let r = simulate(&s, &fp(PreemptionMode::Preemptive));
        assert_eq!(r.jobs.len(), 2);
    }
}
