//! Simulation scenarios: tasks, release patterns and builders.

use fnpr_core::DelayCurve;
use fnpr_sched::TaskSet;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A task as the simulator sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimTask {
    /// Execution requirement of each job (useful work, excluding preemption
    /// delay).
    pub exec_time: f64,
    /// Relative deadline (for EDF ordering and miss detection).
    pub deadline: f64,
    /// Floating non-preemptive region length; `None` means the task is
    /// preempted immediately under [`PreemptionMode::FloatingNpr`].
    ///
    /// [`PreemptionMode::FloatingNpr`]: crate::PreemptionMode::FloatingNpr
    pub q: Option<f64>,
    /// Preemption-delay function; `None` means preemptions are free.
    pub delay_curve: Option<DelayCurve>,
}

/// A complete scenario: tasks plus an explicit, time-sorted release list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The tasks, index = fixed priority (0 highest).
    pub tasks: Vec<SimTask>,
    /// `(task index, release time)` pairs, sorted by time.
    pub releases: Vec<(usize, f64)>,
}

/// Output of [`Scenario::adversary`]: the scenario plus the exact delay the
/// constructed run pays, for equality assertions in tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// The runnable scenario (task 0 = spike, task 1 = victim).
    pub scenario: Scenario,
    /// The cumulative preemption delay the victim pays in this run.
    pub expected_delay: f64,
    /// The epsilon-shifted progress points at which preemptions land.
    pub points: Vec<f64>,
}

impl Scenario {
    /// Builds a periodic scenario from a task set: task `i` releases at
    /// `phase[i] + k·T_i` for all `k` with release `< horizon`.
    ///
    /// Tasks keep their index order (fixed-priority order), and their `Qi`
    /// and delay curves carry over.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is non-empty and shorter than the task set.
    #[must_use]
    pub fn periodic(tasks: &TaskSet, phases: &[f64], horizon: f64) -> Self {
        assert!(
            phases.is_empty() || phases.len() >= tasks.len(),
            "phase vector shorter than task set"
        );
        let sim_tasks = tasks
            .iter()
            .map(|t| SimTask {
                exec_time: t.wcet(),
                deadline: t.deadline(),
                q: t.q(),
                delay_curve: t.delay_curve().cloned(),
            })
            .collect();
        let mut releases = Vec::new();
        for (i, t) in tasks.iter().enumerate() {
            let phase = phases.get(i).copied().unwrap_or(0.0);
            let mut at = phase;
            while at < horizon {
                releases.push((i, at));
                at += t.period();
            }
        }
        releases.sort_by(|a, b| a.1.total_cmp(&b.1));
        Self {
            tasks: sim_tasks,
            releases,
        }
    }

    /// Builds a periodic scenario with random phases in `[0, T_i)`.
    #[must_use]
    pub fn periodic_random_phases<R: Rng>(tasks: &TaskSet, horizon: f64, rng: &mut R) -> Self {
        let phases: Vec<f64> = tasks
            .iter()
            .map(|t| rng.gen_range(0.0..t.period()))
            .collect();
        Self::periodic(tasks, &phases, horizon)
    }

    /// Builds a *sporadic* scenario: task `i` releases with gaps drawn
    /// uniformly from `[T_i, (1 + spread) · T_i)` — the minimum inter-arrival
    /// time is respected, so every fixed-priority/EDF analysis for the
    /// periodic task set remains a valid bound on these runs.
    ///
    /// # Panics
    ///
    /// Panics if `spread` is negative or not finite.
    #[must_use]
    pub fn sporadic<R: Rng>(tasks: &TaskSet, spread: f64, horizon: f64, rng: &mut R) -> Self {
        assert!(spread.is_finite() && spread >= 0.0, "bad spread");
        let sim_tasks = tasks
            .iter()
            .map(|t| SimTask {
                exec_time: t.wcet(),
                deadline: t.deadline(),
                q: t.q(),
                delay_curve: t.delay_curve().cloned(),
            })
            .collect();
        let mut releases = Vec::new();
        for (i, t) in tasks.iter().enumerate() {
            let mut at = rng.gen_range(0.0..t.period());
            while at < horizon {
                releases.push((i, at));
                at += t.period() * (1.0 + rng.gen_range(0.0..=spread));
            }
        }
        releases.sort_by(|a, b| a.1.total_cmp(&b.1));
        Self {
            tasks: sim_tasks,
            releases,
        }
    }

    /// Returns a copy with every job's execution requirement scaled by a
    /// per-release factor drawn uniformly from `[lo, hi] ⊆ (0, 1]` — jobs
    /// usually run *below* their WCET; the analyses must still cover such
    /// runs.
    ///
    /// Scaling is modelled per task (all jobs of a task share the drawn
    /// factor, keeping the delay curve's progress axis meaningful).
    ///
    /// # Panics
    ///
    /// Panics if the range is not within `(0, 1]` or `lo > hi`.
    #[must_use]
    pub fn with_execution_scale<R: Rng>(mut self, lo: f64, hi: f64, rng: &mut R) -> Self {
        assert!(0.0 < lo && lo <= hi && hi <= 1.0, "bad scale range");
        for task in &mut self.tasks {
            task.exec_time *= rng.gen_range(lo..=hi);
        }
        self
    }

    /// The single-victim adversary scenario used to validate Theorem 1
    /// constructively (and to reproduce the Figure 2 demonstration):
    ///
    /// * task 1 (low priority) is the *victim*: execution time `C`, region
    ///   length `q`, delay function `curve`; released at time 0;
    /// * task 0 (high priority) is a *spike* of execution time
    ///   `spike_cost`, released so that the victim is preempted when its
    ///   execution clock (progress + serviced delay) reaches
    ///   `x_k ≈ p_k + Σ_{j<k} f(p_j)` for each requested progress point
    ///   `p_k` — i.e. the release fires `q` before the preemption, while the
    ///   victim is running.
    ///
    /// Tight chains (`p_{k+1} = p_k + q − f(p_k)`, exactly what
    /// `fnpr_core::exact_worst_case` produces) would place a release at the
    /// very instant the victim resumes; the dispatcher would then pick the
    /// spike instead of letting the victim open a region. Each release is
    /// therefore shifted `epsilon` later, preempting at `p_k + k·epsilon`;
    /// the returned [`AdversaryPlan::expected_delay`] accounts for the
    /// shifted sampling, so it is exact even if a shift crosses a curve
    /// breakpoint.
    ///
    /// # Panics
    ///
    /// Panics if a requested point lies outside `[q, C)` or violates the
    /// spacing constraint (malformed adversary input), or if `epsilon` is
    /// too large for the requested points to stay feasible.
    #[must_use]
    pub fn adversary(
        exec_time: f64,
        q: f64,
        curve: &DelayCurve,
        preemption_points: &[f64],
        spike_cost: f64,
        epsilon: f64,
    ) -> AdversaryPlan {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "bad epsilon");
        let victim = SimTask {
            exec_time,
            deadline: f64::INFINITY,
            q: Some(q),
            delay_curve: Some(curve.clone()),
        };
        let spike = SimTask {
            exec_time: spike_cost,
            deadline: f64::INFINITY,
            q: None,
            delay_curve: None,
        };
        let mut releases = vec![(1usize, 0.0)];
        let mut exec_clock_offset = 0.0; // Σ f(p'_j) for j before current
        let mut wall_extra = 0.0; // Σ spike costs completed before release k
        let mut previous: Option<(f64, f64)> = None;
        let mut expected_delay = 0.0;
        let mut shifted_points = Vec::with_capacity(preemption_points.len());
        for (k, &p) in preemption_points.iter().enumerate() {
            let p = p + (k + 1) as f64 * epsilon;
            assert!(p >= q - 1e-9, "first preemption before q: {p} < {q}");
            assert!(p < exec_time, "preemption past completion: {p}");
            if let Some((pp, pd)) = previous {
                assert!(
                    p >= pp + q - pd - 1e-9,
                    "spacing violated: {p} < {pp} + {q} - {pd}"
                );
            }
            // Victim execution clock at the preemption: progress + delays
            // serviced so far.
            let x = p + exec_clock_offset;
            // The triggering release happens q earlier on the victim's
            // execution clock; convert to wall time by adding the spike
            // executions that happened before that instant.
            let release_wall = (x - q) + wall_extra;
            releases.push((0, release_wall));
            let d = curve.value_at(p);
            expected_delay += d;
            exec_clock_offset += d;
            wall_extra += spike_cost;
            previous = Some((p, d));
            shifted_points.push(p);
        }
        releases.sort_by(|a, b| a.1.total_cmp(&b.1));
        AdversaryPlan {
            scenario: Scenario {
                tasks: vec![spike, victim],
                releases,
            },
            expected_delay,
            points: shifted_points,
        }
    }

    /// Random sporadic interference for one victim task: spikes released
    /// with i.i.d. uniform gaps in `[min_gap, max_gap)`.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // flat parameter list mirrors the experiment grids
    pub fn random_interference<R: Rng>(
        exec_time: f64,
        q: f64,
        curve: &DelayCurve,
        spike_cost: f64,
        min_gap: f64,
        max_gap: f64,
        horizon: f64,
        rng: &mut R,
    ) -> Self {
        let victim = SimTask {
            exec_time,
            deadline: f64::INFINITY,
            q: Some(q),
            delay_curve: Some(curve.clone()),
        };
        let spike = SimTask {
            exec_time: spike_cost,
            deadline: f64::INFINITY,
            q: None,
            delay_curve: None,
        };
        let mut releases = vec![(1usize, 0.0)];
        let mut at = rng.gen_range(0.0..max_gap);
        while at < horizon {
            releases.push((0, at));
            at += rng.gen_range(min_gap..max_gap);
        }
        releases.sort_by(|a, b| a.1.total_cmp(&b.1));
        Self {
            tasks: vec![spike, victim],
            releases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnpr_sched::{Task, TaskSet};

    #[test]
    fn periodic_release_pattern() {
        let ts = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 6.0).unwrap(),
        ])
        .unwrap();
        let s = Scenario::periodic(&ts, &[], 12.0);
        let of_task = |i: usize| -> Vec<f64> {
            s.releases
                .iter()
                .filter(|&&(t, _)| t == i)
                .map(|&(_, at)| at)
                .collect()
        };
        assert_eq!(of_task(0), vec![0.0, 4.0, 8.0]);
        assert_eq!(of_task(1), vec![0.0, 6.0]);
        // Sorted by time overall.
        assert!(s.releases.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn periodic_with_phases() {
        let ts = TaskSet::new(vec![Task::new(1.0, 5.0).unwrap()]).unwrap();
        let s = Scenario::periodic(&ts, &[2.0], 12.0);
        let times: Vec<f64> = s.releases.iter().map(|&(_, at)| at).collect();
        assert_eq!(times, vec![2.0, 7.0]);
    }

    #[test]
    fn sporadic_respects_minimum_gaps() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let ts = TaskSet::new(vec![
            Task::new(1.0, 10.0).unwrap(),
            Task::new(2.0, 25.0).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let s = Scenario::sporadic(&ts, 0.5, 300.0, &mut rng);
        for task in 0..2 {
            let times: Vec<f64> = s
                .releases
                .iter()
                .filter(|&&(t, _)| t == task)
                .map(|&(_, at)| at)
                .collect();
            let period = ts.task(task).period();
            for pair in times.windows(2) {
                let gap = pair[1] - pair[0];
                assert!(gap >= period - 1e-9, "gap {gap} below period {period}");
                assert!(gap <= period * 1.5 + 1e-9);
            }
        }
    }

    #[test]
    fn execution_scale_shrinks_jobs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let ts = TaskSet::new(vec![Task::new(10.0, 100.0).unwrap()]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = Scenario::periodic(&ts, &[], 200.0).with_execution_scale(0.4, 0.8, &mut rng);
        assert!(s.tasks[0].exec_time >= 4.0 && s.tasks[0].exec_time <= 8.0);
    }

    #[test]
    fn adversary_release_times_constant_curve() {
        // f == 2, C = 10, q = 4, points 4, 6, 8 (the worked example).
        let curve = DelayCurve::constant(2.0, 10.0).unwrap();
        let eps = 1e-6;
        let plan = Scenario::adversary(10.0, 4.0, &curve, &[4.0, 6.0, 8.0], 0.5, eps);
        assert!((plan.expected_delay - 6.0).abs() < 1e-9);
        // x_1 = 4+ε: release ~ε; x_2 = 6+2ε+2: release ~4.5+2ε;
        // x_3 = 8+3ε+4: release ~9+3ε.
        let spikes: Vec<f64> = plan
            .scenario
            .releases
            .iter()
            .filter(|&&(t, _)| t == 0)
            .map(|&(_, at)| at)
            .collect();
        assert_eq!(spikes.len(), 3);
        assert!((spikes[0] - eps).abs() < 1e-9);
        assert!((spikes[1] - (4.5 + 2.0 * eps)).abs() < 1e-9);
        assert!((spikes[2] - (9.0 + 3.0 * eps)).abs() < 1e-9);
        // Shifted points recorded.
        assert!((plan.points[0] - (4.0 + eps)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "spacing violated")]
    fn adversary_rejects_infeasible_points() {
        let curve = DelayCurve::constant(2.0, 10.0).unwrap();
        // 5 < 4 + 4 - 2 = 6: too close.
        let _ = Scenario::adversary(10.0, 4.0, &curve, &[4.0, 5.0], 0.1, 1e-6);
    }
}
