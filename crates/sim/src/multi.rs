//! The discrete-event **multicore** scheduler: `m` identical cores under
//! global fixed-priority or global EDF dispatching, with the same three
//! preemption modes as the unicore engine.
//!
//! Semantics (extending the unicore engine's, which this reproduces exactly
//! at `cores = 1`):
//!
//! * the dispatcher keeps the `m` highest-eligibility ready jobs running;
//!   an idle core always takes the best ready job (migrating it if it last
//!   ran elsewhere — migrations are counted per job and traced);
//! * preemption pressure is an *invariant*, re-established after every
//!   event: under [`PreemptionMode::Preemptive`], while a ready job
//!   outranks the lowest-eligibility running job that job is preempted;
//!   under [`PreemptionMode::FloatingNpr`], every ready job outranking a
//!   running job has a preemption scheduled — an already-active region
//!   covers one waiter (best first; further waiters are collated, exactly
//!   like the unicore engine), and each uncovered waiter arms a region of
//!   the running task's `Q` on the lowest-eligibility region-free core it
//!   outranks;
//! * at region expiry the core's job is preempted only if some ready job
//!   outranks it; the freed core is then refilled by the dispatcher (with
//!   the globally best ready job, which may differ from the waiter that
//!   armed the region);
//! * event ordering within one instant: completions, then releases, then
//!   region expiries — the unicore contract.
//!
//! Because a region only arms while its job runs, lives `Q` of that job's
//! execution clock, and dies at preemption or completion, every job's
//! delay progression satisfies the same spacing as on one core — so the
//! paper's Theorem 1 bound applies per job unchanged, and
//! [`crate::check_multicore_against_algorithm1`] validates it empirically.

use serde::{Deserialize, Serialize};

use crate::job::{JobRecord, JobState};
use crate::policy::{PreemptionMode, PriorityPolicy};
use crate::scenario::Scenario;

/// Hard cap on processed events (defensive against degenerate scenarios).
const MAX_EVENTS: usize = 50_000_000;

/// Configuration of a multicore run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiSimConfig {
    /// Number of identical cores (`m >= 1`).
    pub cores: usize,
    /// Priority ordering.
    pub policy: PriorityPolicy,
    /// Preemption handling.
    pub mode: PreemptionMode,
    /// Simulation horizon: releases beyond it are ignored.
    pub horizon: f64,
    /// Record a full event trace (costs memory on long runs).
    pub collect_trace: bool,
}

impl MultiSimConfig {
    /// Global floating-NPR fixed-priority configuration on `m` cores.
    #[must_use]
    pub fn floating_npr_fp(cores: usize, horizon: f64) -> Self {
        Self {
            cores,
            policy: PriorityPolicy::FixedPriority,
            mode: PreemptionMode::FloatingNpr,
            horizon,
            collect_trace: false,
        }
    }

    /// Global floating-NPR EDF configuration on `m` cores.
    #[must_use]
    pub fn floating_npr_edf(cores: usize, horizon: f64) -> Self {
        Self {
            cores,
            policy: PriorityPolicy::Edf,
            mode: PreemptionMode::FloatingNpr,
            horizon,
            collect_trace: false,
        }
    }

    /// Enables trace collection, builder-style.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }
}

/// One event of a multicore trace (core-annotated variants of the unicore
/// [`crate::TraceEvent`], plus explicit migration marking on dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MultiTraceEvent {
    /// A job entered the ready queue.
    Released {
        /// Event time.
        at: f64,
        /// Job id.
        job: usize,
        /// Owning task.
        task: usize,
    },
    /// A job took a core.
    Dispatched {
        /// Event time.
        at: f64,
        /// Job id.
        job: usize,
        /// Owning task.
        task: usize,
        /// Core the job now runs on.
        core: usize,
        /// `true` when the job last ran on a different core.
        migrated: bool,
    },
    /// A release armed a floating non-preemptive region.
    NprStarted {
        /// Event time.
        at: f64,
        /// Job holding the region.
        job: usize,
        /// Core the region protects.
        core: usize,
        /// Expiry time.
        until: f64,
    },
    /// A region expired (its core may or may not lose its job).
    NprExpired {
        /// Event time.
        at: f64,
        /// Core whose region expired.
        core: usize,
    },
    /// A job lost its core and was charged its preemption delay.
    Preempted {
        /// Event time.
        at: f64,
        /// Job id.
        job: usize,
        /// Owning task.
        task: usize,
        /// Core the job lost.
        core: usize,
        /// Execution progress at preemption.
        progress: f64,
        /// Delay charged (`fJ(progress)`).
        delay: f64,
    },
    /// A job completed.
    Completed {
        /// Event time.
        at: f64,
        /// Job id.
        job: usize,
        /// Owning task.
        task: usize,
        /// Core the job completed on.
        core: usize,
    },
}

/// Result of one multicore run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSimResult {
    /// One record per job, in release order (migration counts filled in).
    pub jobs: Vec<JobRecord>,
    /// Event trace (empty unless [`MultiSimConfig::collect_trace`]).
    pub trace: Vec<MultiTraceEvent>,
    /// Number of cores simulated.
    pub cores: usize,
}

impl MultiSimResult {
    /// Records of one task's jobs.
    pub fn of_task(&self, task: usize) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(move |j| j.task == task)
    }

    /// `true` when every job completed by its deadline.
    #[must_use]
    pub fn all_deadlines_met(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| j.completion.is_some() && j.deadline_met())
    }

    /// Total migrations across all jobs.
    #[must_use]
    pub fn total_migrations(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.migrations)).sum()
    }
}

/// Runs a scenario on `config.cores` identical cores.
///
/// # Panics
///
/// Panics if `cores == 0`, the scenario references a task index out of
/// range, a release time is not finite, or the event cap is exceeded (all
/// indicate malformed generated input rather than recoverable conditions).
#[must_use]
pub fn simulate_multicore(scenario: &Scenario, config: &MultiSimConfig) -> MultiSimResult {
    assert!(config.cores >= 1, "need at least one core");
    for &(task, at) in &scenario.releases {
        assert!(task < scenario.tasks.len(), "release for unknown task");
        assert!(at.is_finite() && at >= 0.0, "bad release time {at}");
    }
    let mut jobs: Vec<JobState> = Vec::with_capacity(scenario.releases.len());
    for &(task, at) in &scenario.releases {
        if at < config.horizon {
            let spec = &scenario.tasks[task];
            jobs.push(JobState::new(jobs.len(), task, at, spec));
        }
    }
    jobs.sort_by(|a, b| a.release.total_cmp(&b.release));
    for (k, job) in jobs.iter_mut().enumerate() {
        job.id = k;
    }
    let job_count = jobs.len();

    let mut engine = MultiEngine {
        scenario,
        config,
        jobs,
        last_core: vec![None; job_count],
        migrations: vec![0; job_count],
        ready: Vec::new(),
        running: vec![None; config.cores],
        npr_expiry: vec![None; config.cores],
        next_release: 0,
        now: 0.0,
        trace: Vec::new(),
        events: 0,
    };
    engine.run();
    let MultiEngine {
        jobs,
        migrations,
        trace,
        ..
    } = engine;
    let jobs = jobs
        .iter()
        .zip(&migrations)
        .map(|(j, &m)| {
            let mut record = j.record();
            record.migrations = m;
            record
        })
        .collect();
    MultiSimResult {
        jobs,
        trace,
        cores: config.cores,
    }
}

struct MultiEngine<'a> {
    scenario: &'a Scenario,
    config: &'a MultiSimConfig,
    jobs: Vec<JobState>,
    last_core: Vec<Option<usize>>,
    migrations: Vec<u32>,
    ready: Vec<usize>,
    running: Vec<Option<usize>>,
    npr_expiry: Vec<Option<f64>>,
    next_release: usize, // index into jobs (release-sorted)
    now: f64,
    trace: Vec<MultiTraceEvent>,
    events: usize,
}

impl MultiEngine<'_> {
    fn run(&mut self) {
        loop {
            self.events += 1;
            assert!(self.events < MAX_EVENTS, "event cap exceeded");
            self.ingest_releases();
            self.fill_idle_cores();
            self.enforce_preemptive();
            self.arm_regions();
            if self.running.iter().all(Option::is_none) {
                if self.next_release < self.jobs.len() {
                    self.now = self.jobs[self.next_release].release;
                    continue;
                }
                return; // drained
            }
            // Candidate event times, all >= now.
            let completion_times: Vec<Option<f64>> = self
                .running
                .iter()
                .map(|r| r.map(|job| self.now + self.jobs[job].remaining()))
                .collect();
            let next_completion = completion_times
                .iter()
                .flatten()
                .fold(f64::INFINITY, |a, &b| a.min(b));
            let release_t = self
                .jobs
                .get(self.next_release)
                .map(|j| j.release)
                .unwrap_or(f64::INFINITY);
            let expiry_t = self
                .npr_expiry
                .iter()
                .flatten()
                .fold(f64::INFINITY, |a, &b| a.min(b));
            let t = next_completion.min(release_t).min(expiry_t);
            debug_assert!(t.is_finite() && t >= self.now, "no next event");
            for core in 0..self.config.cores {
                if let Some(job) = self.running[core] {
                    self.jobs[job].advance(t - self.now);
                }
            }
            self.now = t;
            // Completions first (exact comparison: same f64 values as the
            // minimum candidates above).
            for (core, completion) in completion_times.iter().enumerate() {
                if completion.is_some_and(|c| c <= t) {
                    self.complete(core);
                }
            }
            // Then releases at t, then expiries.
            self.ingest_releases();
            for core in 0..self.config.cores {
                if self.npr_expiry[core].is_some_and(|e| e <= self.now) {
                    self.npr_expiry[core] = None;
                    self.trace(MultiTraceEvent::NprExpired { at: self.now, core });
                    self.preempt_if_outranked(core);
                }
            }
        }
    }

    /// Moves all jobs released at or before `now` into the ready queue.
    /// Preemption pressure is not applied here: both preemptive dispatch
    /// and floating-NPR region arming are *invariants* re-established
    /// after every ingest+dispatch step ([`Self::enforce_preemptive`] /
    /// [`Self::arm_regions`]) — per-release reactions miss revisions
    /// within one instant, e.g. an idle core absorbing one of two
    /// same-instant releases while the other goes unserved, or a freed
    /// core going to a higher-priority *waiter* instead of the release
    /// that looked absorbed.
    fn ingest_releases(&mut self) {
        while self.next_release < self.jobs.len()
            && self.jobs[self.next_release].release <= self.now
        {
            let id = self.next_release;
            self.next_release += 1;
            self.ready.push(id);
            self.trace(MultiTraceEvent::Released {
                at: self.jobs[id].release,
                job: id,
                task: self.jobs[id].task,
            });
        }
    }

    /// Fully-preemptive dispatching as an invariant: while any ready job
    /// outranks the lowest-eligibility running job, that job is preempted
    /// and the freed core refilled with the best ready job.
    fn enforce_preemptive(&mut self) {
        if self.config.mode != PreemptionMode::Preemptive {
            return;
        }
        loop {
            let Some(&best) = self
                .ready
                .iter()
                .reduce(|a, b| if self.outranks(*b, *a) { b } else { a })
            else {
                return;
            };
            let Some(core) = self.victim_core(best, false) else {
                return;
            };
            self.preempt(core);
            self.fill_idle_cores();
        }
    }

    /// Floating-NPR pressure as an invariant: every ready job that still
    /// outranks a running job must have a preemption *scheduled* for it —
    /// either an already-active region (whose expiry will free a core for
    /// the then-best waiter; one region covers one waiter, best first) or
    /// a region armed now on the lowest-eligibility region-free core it
    /// outranks. Waiters beyond the available victims are collated into
    /// the active regions, matching the unicore engine's collation rule.
    /// A victim task without a `Q` is preempted immediately (the unicore
    /// "no region length: behave preemptively" rule).
    fn arm_regions(&mut self) {
        if self.config.mode != PreemptionMode::FloatingNpr {
            return;
        }
        'restart: loop {
            let mut waiting = self.ready.clone();
            waiting.sort_by(|&a, &b| {
                if self.outranks(a, b) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            let mut covered = self.npr_expiry.iter().flatten().count();
            for &job in &waiting {
                if covered > 0 {
                    covered -= 1;
                    continue;
                }
                // No region-free outranked core: every lower-ranked waiter
                // outranks a subset of what this one does, so stop.
                let Some(core) = self.victim_core(job, true) else {
                    return;
                };
                let victim = self.running[core].expect("victim runs");
                match self.scenario.tasks[self.jobs[victim].task].q {
                    Some(q) => {
                        self.npr_expiry[core] = Some(self.now + q);
                        self.trace(MultiTraceEvent::NprStarted {
                            at: self.now,
                            job: victim,
                            core,
                            until: self.now + q,
                        });
                    }
                    None => {
                        self.preempt(core);
                        self.fill_idle_cores();
                        continue 'restart;
                    }
                }
            }
            return;
        }
    }

    /// The core whose running job is the lowest-eligibility one that `id`
    /// outranks; with `region_free` set, cores with an active region are
    /// excluded (their preemption is already scheduled).
    fn victim_core(&self, id: usize, region_free: bool) -> Option<usize> {
        let mut victim: Option<usize> = None;
        for core in 0..self.config.cores {
            if region_free && self.npr_expiry[core].is_some() {
                continue;
            }
            let Some(running) = self.running[core] else {
                continue;
            };
            if !self.outranks(id, running) {
                continue;
            }
            victim = match victim {
                Some(current) if self.outranks(running, self.running[current].expect("runs")) => {
                    Some(current)
                }
                _ => Some(core),
            };
        }
        victim
    }

    /// Job `a` strictly outranks job `b` (same total order as the unicore
    /// engine: policy key, then task index, then release order).
    fn outranks(&self, a: usize, b: usize) -> bool {
        let ja = &self.jobs[a];
        let jb = &self.jobs[b];
        let key = |j: &JobState| match self.config.policy {
            PriorityPolicy::FixedPriority => (0.0, j.task, j.id),
            PriorityPolicy::Edf => (j.abs_deadline, j.task, j.id),
        };
        key(ja) < key(jb)
    }

    fn pop_highest_ready(&mut self) -> Option<usize> {
        if self.ready.is_empty() {
            return None;
        }
        let mut best = 0;
        for k in 1..self.ready.len() {
            if self.outranks(self.ready[k], self.ready[best]) {
                best = k;
            }
        }
        Some(self.ready.swap_remove(best))
    }

    /// Dispatches the best ready jobs onto idle cores, preferring each
    /// job's previous core (counting a migration when it lands elsewhere).
    fn fill_idle_cores(&mut self) {
        while self.running.iter().any(Option::is_none) {
            let Some(job) = self.pop_highest_ready() else {
                return;
            };
            let core = match self.last_core[job] {
                Some(c) if self.running[c].is_none() => c,
                _ => self
                    .running
                    .iter()
                    .position(Option::is_none)
                    .expect("idle core exists"),
            };
            let migrated = self.last_core[job].is_some_and(|c| c != core);
            if migrated {
                self.migrations[job] += 1;
                fnpr_obs::counter!("sim.migrations").incr();
            }
            fnpr_obs::counter!("sim.dispatches").incr();
            self.last_core[job] = Some(core);
            self.running[core] = Some(job);
            debug_assert!(self.npr_expiry[core].is_none(), "stale region");
            if self.jobs[job].start.is_none() {
                self.jobs[job].start = Some(self.now);
            }
            self.trace(MultiTraceEvent::Dispatched {
                at: self.now,
                job,
                task: self.jobs[job].task,
                core,
                migrated,
            });
        }
    }

    fn complete(&mut self, core: usize) {
        let job = self.running[core].take().expect("completion without job");
        self.jobs[job].finish(self.now);
        self.npr_expiry[core] = None; // a region dies with its job
        self.trace(MultiTraceEvent::Completed {
            at: self.now,
            job,
            task: self.jobs[job].task,
            core,
        });
    }

    /// Preempts `core`'s job if some ready job outranks it.
    fn preempt_if_outranked(&mut self, core: usize) {
        let Some(running) = self.running[core] else {
            return;
        };
        let outranked = self
            .ready
            .iter()
            .any(|&candidate| self.outranks(candidate, running));
        if outranked {
            self.preempt(core);
        }
    }

    /// Charges the preemption delay and returns `core`'s job to the ready
    /// queue.
    fn preempt(&mut self, core: usize) {
        let job = self.running[core].take().expect("preempt without job");
        let task = self.jobs[job].task;
        let progress = self.jobs[job].progress;
        let delay = self.scenario.tasks[task]
            .delay_curve
            .as_ref()
            .map_or(0.0, |curve| curve.value_at(progress));
        self.jobs[job].charge_preemption(delay);
        fnpr_obs::counter!("sim.preemptions").incr();
        self.trace(MultiTraceEvent::Preempted {
            at: self.now,
            job,
            task,
            core,
            progress,
            delay,
        });
        self.ready.push(job);
        self.npr_expiry[core] = None;
    }

    fn trace(&mut self, event: MultiTraceEvent) {
        if self.config.collect_trace {
            self.trace.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::policy::SimConfig;
    use crate::scenario::SimTask;
    use fnpr_core::DelayCurve;

    fn task(exec: f64, q: Option<f64>, curve: Option<DelayCurve>) -> SimTask {
        SimTask {
            exec_time: exec,
            deadline: f64::INFINITY,
            q,
            delay_curve: curve,
        }
    }

    fn fnpr(cores: usize) -> MultiSimConfig {
        MultiSimConfig::floating_npr_fp(cores, 1_000.0).with_trace()
    }

    #[test]
    fn two_jobs_run_in_parallel_on_two_cores() {
        let s = Scenario {
            tasks: vec![task(10.0, None, None), task(10.0, None, None)],
            releases: vec![(0, 0.0), (1, 0.0)],
        };
        let r = simulate_multicore(&s, &fnpr(2));
        assert_eq!(r.jobs.len(), 2);
        for job in &r.jobs {
            assert_eq!(job.completion, Some(10.0));
            assert_eq!(job.preemptions, 0);
            assert_eq!(job.migrations, 0);
        }
        assert_eq!(r.total_migrations(), 0);
    }

    #[test]
    fn release_with_idle_core_never_arms_a_region() {
        // One busy core, one idle: the spike takes the idle core instantly.
        let curve = DelayCurve::constant(2.0, 10.0).unwrap();
        let s = Scenario {
            tasks: vec![task(1.0, None, None), task(10.0, Some(4.0), Some(curve))],
            releases: vec![(1, 0.0), (0, 3.0)],
        };
        let r = simulate_multicore(&s, &fnpr(2));
        let victim = &r.jobs[0];
        assert_eq!(victim.preemptions, 0);
        assert_eq!(victim.completion, Some(10.0));
        let spike = &r.jobs[1];
        assert_eq!(spike.completion, Some(4.0));
        assert!(!r
            .trace
            .iter()
            .any(|e| matches!(e, MultiTraceEvent::NprStarted { .. })));
    }

    #[test]
    fn saturated_cores_defer_preemption_by_q() {
        // Both cores busy; the spike at 3 outranks both and must wait for
        // the lowest-eligibility victim's region (task 2, q = 4): region
        // 3..7, preemption at 7.
        let curve = DelayCurve::constant(2.0, 20.0).unwrap();
        let s = Scenario {
            tasks: vec![
                task(1.0, None, None),
                task(20.0, Some(9.0), Some(curve.clone())),
                task(20.0, Some(4.0), Some(curve)),
            ],
            releases: vec![(1, 0.0), (2, 0.0), (0, 3.0)],
        };
        let r = simulate_multicore(&s, &fnpr(2));
        let victim = r.of_task(2).next().unwrap();
        assert_eq!(victim.preemptions, 1);
        assert_eq!(victim.cumulative_delay, 2.0);
        // Victim runs 0..7, spike 7..8, victim resumes: 8 + 2 + 13 = 23.
        assert_eq!(victim.completion, Some(23.0));
        // The higher-eligibility running job is untouched.
        let other = r.of_task(1).next().unwrap();
        assert_eq!(other.preemptions, 0);
        assert_eq!(other.completion, Some(20.0));
        assert!(r
            .trace
            .iter()
            .any(|e| matches!(e, MultiTraceEvent::NprStarted { until, .. } if *until == 7.0)));
    }

    #[test]
    fn batch_release_beyond_idle_capacity_still_arms_a_region() {
        // One idle core, TWO same-instant releases: the first is absorbed
        // by the idle core, but the second must still arm the victim's
        // region — otherwise it waits unbounded by Q (priority inversion).
        let curve = DelayCurve::constant(0.5, 20.0).unwrap();
        let s = Scenario {
            tasks: vec![
                task(10.0, None, None),             // H1
                task(1.0, None, None),              // H2
                task(20.0, Some(1.0), Some(curve)), // victim L, q = 1
            ],
            releases: vec![(2, 0.0), (0, 3.0), (1, 3.0)],
        };
        let r = simulate_multicore(&s, &fnpr(2));
        // H1 takes the idle core at 3; the region for H2 runs 3..4; H2
        // preempts L at 4 and completes at 5.
        assert_eq!(r.of_task(0).next().unwrap().completion, Some(13.0));
        assert_eq!(r.of_task(1).next().unwrap().completion, Some(5.0));
        let victim = r.of_task(2).next().unwrap();
        assert_eq!(victim.preemptions, 1);
        assert_eq!(victim.cumulative_delay, 0.5);
        // victim: 4 done + H2 on its core 4..5 + 0.5 delay + 16 left.
        assert_eq!(victim.completion, Some(21.5));
        assert!(r
            .trace
            .iter()
            .any(|e| matches!(e, MultiTraceEvent::NprStarted { until, .. } if *until == 4.0)));
    }

    #[test]
    fn waiting_job_is_covered_by_an_active_region_not_a_second_one() {
        // H arrives at 5 while both cores are busy and arms the victim's
        // region (5..7). S completes at 6 and M arrives at the same
        // instant; the freed core goes to the better waiter H, and M is
        // *collated* into the active region (no second region) — its
        // expiry at 7 then serves M.
        let curve = DelayCurve::constant(0.5, 30.0).unwrap();
        let s = Scenario {
            tasks: vec![
                task(4.0, None, None),              // H
                task(4.0, None, None),              // M
                task(6.0, None, None),              // S
                task(30.0, Some(2.0), Some(curve)), // victim L, q = 2
            ],
            releases: vec![(2, 0.0), (3, 0.0), (0, 5.0), (1, 6.0)],
        };
        let r = simulate_multicore(&s, &fnpr(2));
        // Exactly one region was armed (at 5, until 7).
        let regions: Vec<f64> = r
            .trace
            .iter()
            .filter_map(|e| match e {
                MultiTraceEvent::NprStarted { until, .. } => Some(*until),
                _ => None,
            })
            .collect();
        assert_eq!(regions, vec![7.0]);
        // H took S's core at 6; M preempted L at the region expiry.
        assert_eq!(r.of_task(0).next().unwrap().completion, Some(10.0));
        assert_eq!(r.of_task(1).next().unwrap().completion, Some(11.0));
        let victim = r.of_task(3).next().unwrap();
        assert_eq!(victim.preemptions, 1);
        // L (7 done) migrates to the core H frees at 10, pays its 0.5
        // delay and finishes the remaining 23: 10 + 0.5 + 23 = 33.5.
        assert_eq!(victim.migrations, 1);
        assert_eq!(victim.completion, Some(33.5));
    }

    #[test]
    fn migration_is_counted_and_traced() {
        // t=0: short (task 2) takes core 0, victim (task 3) core 1. t=1:
        // spike + filler arrive and, being the two best jobs, displace
        // both. Spike finishes at 3 -> short resumes on core *1* (its old
        // core 0 is held by the filler until 4): one migration. Filler
        // finishes at 4 -> victim resumes on core *0*: another migration.
        let s = Scenario {
            tasks: vec![
                task(2.0, None, None),  // spike (highest priority)
                task(3.0, None, None),  // filler
                task(4.0, None, None),  // short
                task(10.0, None, None), // victim (lowest priority)
            ],
            releases: vec![(2, 0.0), (3, 0.0), (0, 1.0), (1, 1.0)],
        };
        let config = MultiSimConfig {
            cores: 2,
            policy: PriorityPolicy::FixedPriority,
            mode: PreemptionMode::Preemptive,
            horizon: 1_000.0,
            collect_trace: true,
        };
        let r = simulate_multicore(&s, &config);
        let of = |t: usize| r.of_task(t).next().unwrap();
        assert_eq!(of(0).completion, Some(3.0));
        assert_eq!(of(1).completion, Some(4.0));
        assert_eq!(of(2).completion, Some(6.0)); // 1 done + resumes 3..6
        assert_eq!(of(3).completion, Some(13.0)); // 1 done + resumes 4..13
        assert_eq!(of(2).preemptions, 1);
        assert_eq!(of(3).preemptions, 1);
        assert_eq!(of(2).migrations, 1);
        assert_eq!(of(3).migrations, 1);
        assert_eq!(r.total_migrations(), 2);
        assert_eq!(
            r.trace
                .iter()
                .filter(|e| matches!(e, MultiTraceEvent::Dispatched { migrated: true, .. }))
                .count(),
            2
        );
    }

    #[test]
    fn single_core_matches_unicore_engine() {
        // A scenario exercising regions, collation and same-task FIFO: the
        // m = 1 engine must reproduce the unicore engine job for job.
        let curve = DelayCurve::constant(2.0, 20.0).unwrap();
        let s = Scenario {
            tasks: vec![task(1.0, None, None), task(20.0, Some(4.0), Some(curve))],
            releases: vec![(1, 0.0), (0, 3.0), (0, 5.0), (0, 9.5), (1, 26.0)],
        };
        for policy in [PriorityPolicy::FixedPriority, PriorityPolicy::Edf] {
            for mode in [
                PreemptionMode::Preemptive,
                PreemptionMode::NonPreemptive,
                PreemptionMode::FloatingNpr,
            ] {
                let uni = simulate(
                    &s,
                    &SimConfig {
                        policy,
                        mode,
                        horizon: 1_000.0,
                        collect_trace: false,
                    },
                );
                let multi = simulate_multicore(
                    &s,
                    &MultiSimConfig {
                        cores: 1,
                        policy,
                        mode,
                        horizon: 1_000.0,
                        collect_trace: false,
                    },
                );
                assert_eq!(
                    uni.jobs, multi.jobs,
                    "divergence at policy {policy:?}, mode {mode:?}"
                );
            }
        }
    }

    #[test]
    fn edf_dispatches_m_earliest_deadlines() {
        // Three ready jobs, two cores: the two earliest deadlines run.
        let mut a = task(4.0, None, None);
        a.deadline = 30.0;
        let mut b = task(4.0, None, None);
        b.deadline = 10.0;
        let mut c = task(4.0, None, None);
        c.deadline = 20.0;
        let s = Scenario {
            tasks: vec![a, b, c],
            releases: vec![(0, 0.0), (1, 0.0), (2, 0.0)],
        };
        let config = MultiSimConfig::floating_npr_edf(2, 1_000.0);
        let r = simulate_multicore(&s, &config);
        let done = |t: usize| r.of_task(t).next().unwrap().completion.unwrap();
        assert_eq!(done(1), 4.0);
        assert_eq!(done(2), 4.0);
        assert_eq!(done(0), 8.0); // waited for a core
        assert!(r.all_deadlines_met());
    }

    #[test]
    fn more_cores_than_jobs_is_fine() {
        let s = Scenario {
            tasks: vec![task(5.0, None, None)],
            releases: vec![(0, 0.0), (0, 7.0)],
        };
        let r = simulate_multicore(&s, &fnpr(8));
        assert_eq!(r.jobs.len(), 2);
        assert!(r.jobs.iter().all(|j| j.completion.is_some()));
        assert_eq!(r.cores, 8);
    }

    #[test]
    fn horizon_truncates_releases() {
        let s = Scenario {
            tasks: vec![task(1.0, None, None)],
            releases: vec![(0, 0.0), (0, 5.0), (0, 2000.0)],
        };
        let r = simulate_multicore(&s, &fnpr(2));
        assert_eq!(r.jobs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let s = Scenario {
            tasks: vec![task(1.0, None, None)],
            releases: vec![(0, 0.0)],
        };
        let _ = simulate_multicore(&s, &fnpr(0));
    }
}
