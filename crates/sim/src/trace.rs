//! Simulation event traces.

use serde::{Deserialize, Serialize};

/// One scheduler event (recorded when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A job arrived in the ready queue.
    Released {
        /// Event time.
        at: f64,
        /// Job id.
        job: usize,
        /// Owning task.
        task: usize,
    },
    /// A job got the processor.
    Dispatched {
        /// Event time.
        at: f64,
        /// Job id.
        job: usize,
        /// Owning task.
        task: usize,
    },
    /// A floating non-preemptive region opened for the running job.
    NprStarted {
        /// Event time (the triggering release).
        at: f64,
        /// The protected (running) job.
        job: usize,
        /// When the region expires.
        until: f64,
    },
    /// A region expired (a preemption check follows).
    NprExpired {
        /// Event time.
        at: f64,
    },
    /// The running job was preempted and charged a delay.
    Preempted {
        /// Event time.
        at: f64,
        /// Job id.
        job: usize,
        /// Owning task.
        task: usize,
        /// Progress at the preemption (the `t` of `fi(t)`).
        progress: f64,
        /// The charged delay.
        delay: f64,
    },
    /// A job finished.
    Completed {
        /// Event time.
        at: f64,
        /// Job id.
        job: usize,
        /// Owning task.
        task: usize,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    #[must_use]
    pub fn at(&self) -> f64 {
        match *self {
            TraceEvent::Released { at, .. }
            | TraceEvent::Dispatched { at, .. }
            | TraceEvent::NprStarted { at, .. }
            | TraceEvent::NprExpired { at }
            | TraceEvent::Preempted { at, .. }
            | TraceEvent::Completed { at, .. } => at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_accessible() {
        let events = [
            TraceEvent::Released {
                at: 1.0,
                job: 0,
                task: 0,
            },
            TraceEvent::NprExpired { at: 2.5 },
            TraceEvent::Completed {
                at: 9.0,
                job: 0,
                task: 0,
            },
        ];
        let times: Vec<f64> = events.iter().map(TraceEvent::at).collect();
        assert_eq!(times, vec![1.0, 2.5, 9.0]);
    }
}
