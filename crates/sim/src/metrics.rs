//! Aggregate metrics over simulation results.

use serde::{Deserialize, Serialize};

use crate::engine::SimResult;
use crate::job::JobRecord;

/// Aggregates for one task across a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskMetrics {
    /// Task index.
    pub task: usize,
    /// Number of jobs released.
    pub jobs: usize,
    /// Number of completed jobs.
    pub completed: usize,
    /// Number of deadline misses (unfinished jobs count as misses).
    pub misses: usize,
    /// Total preemptions across all jobs.
    pub preemptions: u64,
    /// Total migrations across all jobs (0 on unicore runs).
    pub migrations: u64,
    /// Total preemption delay charged.
    pub total_delay: f64,
    /// Maximum cumulative delay of any single job.
    pub max_job_delay: f64,
    /// Maximum observed response time (`None` if no job completed).
    pub max_response: Option<f64>,
}

/// Computes per-task metrics for every task index present in the result.
#[must_use]
pub fn per_task_metrics(result: &SimResult, task_count: usize) -> Vec<TaskMetrics> {
    per_task_metrics_jobs(&result.jobs, task_count)
}

/// [`per_task_metrics`] over a raw job slice (shared by the unicore and
/// multicore result types).
#[must_use]
pub fn per_task_metrics_jobs(jobs: &[JobRecord], task_count: usize) -> Vec<TaskMetrics> {
    (0..task_count)
        .map(|task| {
            let mut m = TaskMetrics {
                task,
                jobs: 0,
                completed: 0,
                misses: 0,
                preemptions: 0,
                migrations: 0,
                total_delay: 0.0,
                max_job_delay: 0.0,
                max_response: None,
            };
            for job in jobs.iter().filter(|j| j.task == task) {
                m.jobs += 1;
                m.preemptions += u64::from(job.preemptions);
                m.migrations += u64::from(job.migrations);
                m.total_delay += job.cumulative_delay;
                m.max_job_delay = m.max_job_delay.max(job.cumulative_delay);
                match job.response() {
                    Some(r) => {
                        m.completed += 1;
                        m.max_response = Some(m.max_response.map_or(r, |x: f64| x.max(r)));
                        if !job.deadline_met() {
                            m.misses += 1;
                        }
                    }
                    None => m.misses += 1,
                }
            }
            m
        })
        .collect()
}

/// Whole-run summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Total jobs released.
    pub jobs: usize,
    /// Total preemptions.
    pub preemptions: u64,
    /// Total migrations (0 on unicore runs).
    pub migrations: u64,
    /// Total preemption delay.
    pub total_delay: f64,
    /// Total deadline misses.
    pub misses: usize,
}

/// Computes the whole-run summary.
#[must_use]
pub fn run_metrics(result: &SimResult) -> RunMetrics {
    run_metrics_jobs(&result.jobs)
}

/// [`run_metrics`] over a raw job slice (shared by the unicore and
/// multicore result types).
#[must_use]
pub fn run_metrics_jobs(jobs: &[JobRecord]) -> RunMetrics {
    let mut m = RunMetrics {
        jobs: jobs.len(),
        preemptions: 0,
        migrations: 0,
        total_delay: 0.0,
        misses: 0,
    };
    for job in jobs {
        m.preemptions += u64::from(job.preemptions);
        m.migrations += u64::from(job.migrations);
        m.total_delay += job.cumulative_delay;
        if !job.deadline_met() {
            m.misses += 1;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::policy::SimConfig;
    use crate::scenario::{Scenario, SimTask};
    use fnpr_core::DelayCurve;

    #[test]
    fn misses_and_unfinished_jobs_count() {
        // Task 1 has an impossible deadline; two jobs released.
        let s = Scenario {
            tasks: vec![SimTask {
                exec_time: 3.0,
                deadline: 1.0, // always missed
                q: None,
                delay_curve: None,
            }],
            releases: vec![(0, 0.0), (0, 10.0)],
        };
        let r = simulate(&s, &SimConfig::floating_npr_fp(1000.0));
        let m = &per_task_metrics(&r, 1)[0];
        assert_eq!(m.jobs, 2);
        assert_eq!(m.completed, 2);
        assert_eq!(m.misses, 2);
        assert_eq!(m.max_response, Some(3.0));
        let run = run_metrics(&r);
        assert_eq!(run.misses, 2);
    }

    #[test]
    fn task_without_jobs_has_empty_metrics() {
        let s = Scenario {
            tasks: vec![
                SimTask {
                    exec_time: 1.0,
                    deadline: 10.0,
                    q: None,
                    delay_curve: None,
                },
                SimTask {
                    exec_time: 1.0,
                    deadline: 10.0,
                    q: None,
                    delay_curve: None,
                },
            ],
            releases: vec![(0, 0.0)], // task 1 never releases
        };
        let r = simulate(&s, &SimConfig::floating_npr_fp(100.0));
        let m = &per_task_metrics(&r, 2)[1];
        assert_eq!(m.jobs, 0);
        assert_eq!(m.max_response, None);
        assert_eq!(m.misses, 0);
    }

    #[test]
    fn metrics_aggregate_correctly() {
        let curve = DelayCurve::constant(2.0, 10.0).unwrap();
        let s = Scenario {
            tasks: vec![
                SimTask {
                    exec_time: 1.0,
                    deadline: 100.0,
                    q: None,
                    delay_curve: None,
                },
                SimTask {
                    exec_time: 10.0,
                    deadline: 100.0,
                    q: Some(4.0),
                    delay_curve: Some(curve),
                },
            ],
            releases: vec![(1, 0.0), (0, 3.0)],
        };
        let r = simulate(&s, &SimConfig::floating_npr_fp(1000.0));
        let per_task = per_task_metrics(&r, 2);
        assert_eq!(per_task[0].jobs, 1);
        assert_eq!(per_task[0].preemptions, 0);
        assert_eq!(per_task[1].preemptions, 1);
        assert_eq!(per_task[1].total_delay, 2.0);
        assert_eq!(per_task[1].max_job_delay, 2.0);
        assert_eq!(per_task[1].misses, 0);
        let run = run_metrics(&r);
        assert_eq!(run.jobs, 2);
        assert_eq!(run.preemptions, 1);
        assert_eq!(run.total_delay, 2.0);
        assert_eq!(run.misses, 0);
    }
}
