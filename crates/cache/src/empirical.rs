//! Measurement-based CRPD estimation — the empirical counterpart of the
//! static [`CrpdAnalysis`].
//!
//! For every basic block, the estimator replays concrete entry-to-exit
//! paths on the executable cache, injects a worst-case (or per-preempter)
//! eviction at the block's entry, and records the largest observed reload
//! bill. The result *lower-bounds* the true worst case (only enumerated
//! paths are observed) while the static analysis *upper-bounds* it, so
//!
//! ```text
//! empirical_crpd(b) ≤ true worst case ≤ static crpd(b)
//! ```
//!
//! making the pair a self-checking bracket: the property tests assert the
//! inequality on random workloads, and the gap measures the static
//! analysis' pessimism (mostly the "whole block charged" granularity of
//! [3]).
//!
//! [`CrpdAnalysis`]: crate::CrpdAnalysis

use fnpr_cfg::{BlockId, Cfg};
use serde::{Deserialize, Serialize};

use crate::access::AccessMap;
use crate::concrete::{enumerate_paths, preemption_cost_on_path, PreemptionDamage};
use crate::config::CacheConfig;

/// Empirically observed per-block preemption costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCrpd {
    /// Worst observed reload bill per block (time units), index = block id.
    pub per_block: Vec<f64>,
    /// Number of paths replayed.
    pub paths: usize,
}

impl EmpiricalCrpd {
    /// Worst observed cost for one block.
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside the measured graph.
    #[must_use]
    pub fn crpd(&self, b: BlockId) -> f64 {
        self.per_block[b.index()]
    }

    /// The largest observed cost over all blocks.
    #[must_use]
    pub fn max_crpd(&self) -> f64 {
        self.per_block.iter().copied().fold(0.0, f64::max)
    }
}

/// Replays up to `max_paths` acyclic paths, preempting before every block
/// occurrence with the given damage, and records the worst reload bill per
/// block.
///
/// Blocks not on any enumerated path keep cost `0`. For cyclic graphs,
/// enumerate paths on the loop-reduced graph or supply representative
/// unrolled paths via [`empirical_crpd_on_paths`].
#[must_use]
pub fn empirical_crpd(
    cfg: &Cfg,
    accesses: &AccessMap,
    config: &CacheConfig,
    damage: &PreemptionDamage,
    max_paths: usize,
) -> EmpiricalCrpd {
    let paths = enumerate_paths(cfg, max_paths);
    empirical_crpd_on_paths(cfg, accesses, config, damage, &paths)
}

/// [`empirical_crpd`] over caller-supplied paths (e.g. unrolled loops).
///
/// # Panics
///
/// Panics if a path references a block outside `cfg` (malformed input).
#[must_use]
pub fn empirical_crpd_on_paths(
    cfg: &Cfg,
    accesses: &AccessMap,
    config: &CacheConfig,
    damage: &PreemptionDamage,
    paths: &[Vec<BlockId>],
) -> EmpiricalCrpd {
    let mut per_block = vec![0.0f64; cfg.len()];
    for path in paths {
        for k in 0..path.len() {
            let cost = preemption_cost_on_path(cfg, accesses, config, path, k, damage);
            let bill = cost.extra_misses() as f64 * config.reload_cost();
            let b = path[k].index();
            if bill > per_block[b] {
                per_block[b] = bill;
            }
        }
    }
    EmpiricalCrpd {
        per_block,
        paths: paths.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crpd::CrpdAnalysis;
    use crate::ecb::EcbSet;
    use fnpr_cfg::{CfgBuilder, ExecInterval};

    fn iv() -> ExecInterval {
        ExecInterval::new(1.0, 1.0).unwrap()
    }

    /// Diamond with a shared working set: entry loads, both arms diverge,
    /// join reuses.
    fn workload() -> (Cfg, AccessMap, CacheConfig) {
        let mut b = CfgBuilder::new();
        let entry = b.block(iv());
        let left = b.block(iv());
        let right = b.block(iv());
        let join = b.block(iv());
        b.edge(entry, left).unwrap();
        b.edge(entry, right).unwrap();
        b.edge(left, join).unwrap();
        b.edge(right, join).unwrap();
        let cfg = b.build().unwrap();
        let config = CacheConfig::new(8, 1, 16, 10.0).unwrap();
        let mut acc = AccessMap::new();
        acc.set(entry, vec![0, 16]);
        acc.set(left, vec![32]);
        acc.set(right, vec![48, 64]);
        acc.set(join, vec![0, 16]);
        (cfg, acc, config)
    }

    #[test]
    fn empirical_bracketed_by_static() {
        let (cfg, acc, config) = workload();
        let static_bound = CrpdAnalysis::analyze(&cfg, &acc, &config).unwrap();
        let damage = PreemptionDamage::EvictSets(EcbSet::full(&config));
        let empirical = empirical_crpd(&cfg, &acc, &config, &damage, 16);
        assert_eq!(empirical.paths, 2);
        for b in 0..cfg.len() {
            let block = BlockId(b);
            assert!(
                empirical.crpd(block) <= static_bound.crpd(block) + 1e-9,
                "block {block}: empirical {} > static {}",
                empirical.crpd(block),
                static_bound.crpd(block)
            );
        }
        assert!(empirical.max_crpd() <= static_bound.max_crpd() + 1e-9);
    }

    #[test]
    fn observes_real_costs_at_live_points() {
        let (cfg, acc, config) = workload();
        let damage = PreemptionDamage::EvictSets(EcbSet::full(&config));
        let empirical = empirical_crpd(&cfg, &acc, &config, &damage, 16);
        // Preempting before the arms loses the two entry lines that the
        // join will reuse: 2 reloads = 20.
        assert_eq!(empirical.crpd(BlockId(1)), 20.0);
        assert_eq!(empirical.crpd(BlockId(2)), 20.0);
        // Preempting before the join also loses them.
        assert_eq!(empirical.crpd(BlockId(3)), 20.0);
        // Before the entry the cache is cold: nothing to lose.
        assert_eq!(empirical.crpd(BlockId(0)), 0.0);
    }

    #[test]
    fn partial_damage_observes_less() {
        let (cfg, acc, config) = workload();
        let full = empirical_crpd(
            &cfg,
            &acc,
            &config,
            &PreemptionDamage::EvictSets(EcbSet::full(&config)),
            16,
        );
        // Lines 0 and 16 sit in sets 0 and 1; damage only set 0.
        let partial = empirical_crpd(
            &cfg,
            &acc,
            &config,
            &PreemptionDamage::EvictSets(EcbSet::from_sets([0])),
            16,
        );
        for b in 0..cfg.len() {
            assert!(partial.per_block[b] <= full.per_block[b] + 1e-9);
        }
        assert_eq!(partial.crpd(BlockId(3)), 10.0); // only line 0 lost
    }

    #[test]
    fn no_paths_means_zero_costs() {
        let (cfg, acc, config) = workload();
        let damage = PreemptionDamage::EvictSets(EcbSet::full(&config));
        let empirical = empirical_crpd_on_paths(&cfg, &acc, &config, &damage, &[]);
        assert_eq!(empirical.max_crpd(), 0.0);
        assert_eq!(empirical.paths, 0);
    }
}
