//! Useful-cache-block analysis (Lee et al. style).
//!
//! A memory block is *useful* at a program point `p` if it **may be cached**
//! at `p` (forward reaching analysis) and **may be referenced again after
//! `p` before being evicted** (backward live analysis). Evicting a useful
//! block costs one reload when the task resumes — the per-point CRPD is
//! bounded by the number of useful blocks the preempter may evict.
//!
//! Following [3]'s granularity, usefulness is computed *per basic block*:
//! the reported set for block `b` covers every point inside `b`
//! (entry-reaching ∪ in-block accesses intersected with in-block accesses ∪
//! exit-live), so the derived `CRPD_b` is constant across the block — which
//! is exactly the shape the paper's `fi(t) = max {CRPD_b : b ∈ BB(t)}`
//! composition consumes.
//!
//! Transfer functions are exact for direct-mapped caches. For `A`-way LRU
//! caches the may-analyses keep every possibly-cached block (no eviction in
//! the abstract transfer) and the per-set useful count is capped at `A`;
//! this over-approximates the age-based analyses of the later literature but
//! remains sound (see the concrete-simulator property tests).

use std::collections::BTreeSet;

use fnpr_cfg::{BlockId, Cfg};
use serde::{Deserialize, Serialize};

use crate::access::AccessMap;
use crate::config::CacheConfig;
use crate::error::CacheError;

/// Per-set contents abstraction: for each cache set, the memory blocks that
/// may occupy it.
type SetContents = Vec<BTreeSet<u64>>;

/// Result of the useful-cache-block dataflow over one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UcbAnalysis {
    /// Per basic block, per cache set: the useful memory blocks.
    useful: Vec<SetContents>,
    config: CacheConfig,
}

impl UcbAnalysis {
    /// Runs the reaching/live dataflow and intersects the results.
    ///
    /// Works on cyclic graphs directly (the fixpoint handles loops); no loop
    /// reduction is required before CRPD analysis.
    ///
    /// # Errors
    ///
    /// * [`CacheError::UnknownBlock`] if `accesses` references a block
    ///   outside `cfg`;
    /// * [`CacheError::FixpointLimit`] if the dataflow fails to stabilise
    ///   (cannot happen for well-formed graphs; the limit is a backstop).
    pub fn analyze(
        cfg: &Cfg,
        accesses: &AccessMap,
        config: &CacheConfig,
    ) -> Result<Self, CacheError> {
        accesses.validate(cfg)?;
        let n = cfg.len();
        let sets = config.sets();
        let empty = || vec![BTreeSet::new(); sets];

        // Per-block access summaries, per set: all touched blocks, the first
        // touched block, the last touched block.
        let mut touched: Vec<SetContents> = vec![empty(); n];
        let mut first: Vec<Vec<Option<u64>>> = vec![vec![None; sets]; n];
        let mut last: Vec<Vec<Option<u64>>> = vec![vec![None; sets]; n];
        for b in 0..n {
            for &addr in accesses.of(BlockId(b)) {
                let block = config.block_of(addr);
                let set = config.set_of_block(block);
                touched[b][set].insert(block);
                if first[b][set].is_none() {
                    first[b][set] = Some(block);
                }
                last[b][set] = Some(block);
            }
        }

        let limit = 4 * n + 8;

        // Forward may-reaching: IN = union of predecessor OUTs.
        let mut reach_in: Vec<SetContents> = vec![empty(); n];
        let mut reach_out: Vec<SetContents> = vec![empty(); n];
        let order = cfg.reverse_post_order();
        let mut stable = false;
        for _pass in 0..limit {
            let mut changed = false;
            for &b in &order {
                let bi = b.index();
                let mut incoming = empty();
                for &p in cfg.predecessors(b) {
                    for s in 0..sets {
                        incoming[s].extend(reach_out[p.index()][s].iter().copied());
                    }
                }
                let mut outgoing = empty();
                for s in 0..sets {
                    if config.is_direct_mapped() {
                        match last[bi][s] {
                            Some(m) => {
                                outgoing[s].insert(m);
                            }
                            None => outgoing[s] = incoming[s].clone(),
                        }
                    } else {
                        outgoing[s] = incoming[s].clone();
                        outgoing[s].extend(touched[bi][s].iter().copied());
                    }
                }
                if incoming != reach_in[bi] || outgoing != reach_out[bi] {
                    changed = true;
                    reach_in[bi] = incoming;
                    reach_out[bi] = outgoing;
                }
            }
            if !changed {
                stable = true;
                break;
            }
        }
        if !stable {
            return Err(CacheError::FixpointLimit { limit });
        }

        // Backward may-live: OUT = union of successor INs.
        let mut live_in: Vec<SetContents> = vec![empty(); n];
        let mut live_out: Vec<SetContents> = vec![empty(); n];
        stable = false;
        for _pass in 0..limit {
            let mut changed = false;
            for &b in order.iter().rev() {
                let bi = b.index();
                let mut outgoing = empty();
                for &succ in cfg.successors(b) {
                    for s in 0..sets {
                        outgoing[s].extend(live_in[succ.index()][s].iter().copied());
                    }
                }
                let mut incoming = empty();
                for s in 0..sets {
                    if config.is_direct_mapped() {
                        match first[bi][s] {
                            Some(m) => {
                                incoming[s].insert(m);
                            }
                            None => incoming[s] = outgoing[s].clone(),
                        }
                    } else {
                        incoming[s] = outgoing[s].clone();
                        incoming[s].extend(touched[bi][s].iter().copied());
                    }
                }
                if outgoing != live_out[bi] || incoming != live_in[bi] {
                    changed = true;
                    live_out[bi] = outgoing;
                    live_in[bi] = incoming;
                }
            }
            if !changed {
                stable = true;
                break;
            }
        }
        if !stable {
            return Err(CacheError::FixpointLimit { limit });
        }

        // Useful at any point of b, per set:
        // (reach_in ∪ touched) ∩ (live_out ∪ touched).
        let mut useful: Vec<SetContents> = Vec::with_capacity(n);
        for b in 0..n {
            let mut per_set = empty();
            for s in 0..sets {
                let mut cached: BTreeSet<u64> = reach_in[b][s].clone();
                cached.extend(touched[b][s].iter().copied());
                let mut needed: BTreeSet<u64> = live_out[b][s].clone();
                needed.extend(touched[b][s].iter().copied());
                per_set[s] = cached.intersection(&needed).copied().collect();
            }
            useful.push(per_set);
        }
        Ok(Self {
            useful,
            config: *config,
        })
    }

    /// The useful memory blocks of basic block `b`, per cache set.
    ///
    /// # Panics
    ///
    /// Panics if `b` does not belong to the analysed graph.
    #[must_use]
    pub fn useful_blocks(&self, b: BlockId) -> &[BTreeSet<u64>] {
        &self.useful[b.index()]
    }

    /// Per-set useful counts capped at the associativity (at most `A` lines
    /// of one set can be resident simultaneously).
    #[must_use]
    pub fn capped_counts(&self, b: BlockId) -> Vec<usize> {
        self.useful[b.index()]
            .iter()
            .map(|s| s.len().min(self.config.associativity()))
            .collect()
    }

    /// Total useful-block count of a block (sum of capped per-set counts) —
    /// the `|UCB|` figure of the literature.
    #[must_use]
    pub fn ucb_count(&self, b: BlockId) -> usize {
        self.capped_counts(b).iter().sum()
    }

    /// The cache configuration the analysis ran under.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnpr_cfg::{CfgBuilder, ExecInterval};

    fn iv() -> ExecInterval {
        ExecInterval::new(1.0, 1.0).unwrap()
    }

    fn chain(n: usize) -> (Cfg, Vec<BlockId>) {
        let mut b = CfgBuilder::new();
        let ids: Vec<BlockId> = (0..n).map(|_| b.block(iv())).collect();
        for pair in ids.windows(2) {
            b.edge(pair[0], pair[1]).unwrap();
        }
        (b.build().unwrap(), ids)
    }

    /// 4-set direct-mapped, 16-byte lines: address 16*k is line k, set k%4.
    fn config() -> CacheConfig {
        CacheConfig::new(4, 1, 16, 10.0).unwrap()
    }

    #[test]
    fn loaded_then_reused_block_is_useful_in_between() {
        // b0 loads line 0; b1 does unrelated work (line 1); b2 reuses line 0.
        let (cfg, ids) = chain(3);
        let mut acc = AccessMap::new();
        acc.set(ids[0], vec![0]);
        acc.set(ids[1], vec![16]);
        acc.set(ids[2], vec![0]);
        let ucb = UcbAnalysis::analyze(&cfg, &acc, &config()).unwrap();
        // During b1, line 0 is cached (reaching) and will be reused (live).
        assert!(ucb.useful_blocks(ids[1])[0].contains(&0));
        assert_eq!(ucb.ucb_count(ids[1]), 2); // line 0 useful + line 1 in-block
                                              // During b2 the reuse happens within the block itself.
        assert!(ucb.useful_blocks(ids[2])[0].contains(&0));
    }

    #[test]
    fn dead_block_is_not_useful() {
        // b0 loads line 0, never used again.
        let (cfg, ids) = chain(2);
        let mut acc = AccessMap::new();
        acc.set(ids[0], vec![0]);
        acc.set(ids[1], vec![16]);
        let ucb = UcbAnalysis::analyze(&cfg, &acc, &config()).unwrap();
        assert!(!ucb.useful_blocks(ids[1])[0].contains(&0));
        assert_eq!(ucb.ucb_count(ids[1]), 1); // only its own line 1
    }

    #[test]
    fn conflicting_access_kills_usefulness_direct_mapped() {
        // Lines 0 and 4 share set 0 (4 sets). b0 loads line 0; b1 loads
        // line 4 (evicts 0); b2 reuses line 0. During b1, line 0 is not
        // useful at exit (evicted), but the reaching-in ∪ touched covers it;
        // the intersection with live-out ∪ touched keeps line 4 only...
        let (cfg, ids) = chain(3);
        let mut acc = AccessMap::new();
        acc.set(ids[0], vec![0]);
        acc.set(ids[1], vec![64]); // line 4, set 0
        acc.set(ids[2], vec![0]);
        let ucb = UcbAnalysis::analyze(&cfg, &acc, &config()).unwrap();
        // In b2, line 0 is accessed in-block: useful there.
        assert!(ucb.useful_blocks(ids[2])[0].contains(&0));
        // In b1: reaching-in {0}, touched {4}: cached = {0,4};
        // live-out: b2's first access to set 0 is line 0 -> live {0};
        // needed = {0,4}; useful = {0,4} ∩ ... = both. Capped at A=1.
        assert_eq!(ucb.capped_counts(ids[1])[0], 1);
        // In b0: live-out of b0 = live-in of b1 = first access {4}? No:
        // direct-mapped live-in of b1 = {4} (its first access). So line 0 is
        // not live after b0 (it will be evicted before reuse): not useful.
        assert!(!ucb
            .useful_blocks(ids[0])
            .iter()
            .any(|s| s.contains(&0) && s.len() > 1));
        assert_eq!(ucb.capped_counts(ids[0])[0], 1); // its own access only
    }

    #[test]
    fn loop_reuse_is_useful_across_back_edge() {
        // entry -> header -> body -> header; header -> exit.
        // The body accesses line 2 every iteration: useful at the header.
        let mut b = CfgBuilder::new();
        let entry = b.block(iv());
        let header = b.block(iv());
        let body = b.block(iv());
        let exit = b.block(iv());
        b.edge(entry, header).unwrap();
        b.edge(header, body).unwrap();
        b.edge(body, header).unwrap();
        b.edge(header, exit).unwrap();
        let cfg = b.build().unwrap();
        let mut acc = AccessMap::new();
        acc.set(body, vec![32]); // line 2, set 2
        let ucb = UcbAnalysis::analyze(&cfg, &acc, &config()).unwrap();
        // At the header, line 2 may be cached (previous iteration) and will
        // be referenced again (next iteration): useful.
        assert!(ucb.useful_blocks(header)[2].contains(&2));
        // At the exit it is dead.
        assert_eq!(ucb.ucb_count(exit), 0);
    }

    #[test]
    fn set_associative_caps_per_set() {
        // 1 set, 2-way: three blocks all in the same set, all reused.
        let cache = CacheConfig::new(1, 2, 16, 10.0).unwrap();
        let (cfg, ids) = chain(2);
        let mut acc = AccessMap::new();
        acc.set(ids[0], vec![0, 16, 32]);
        acc.set(ids[1], vec![0, 16, 32]);
        let ucb = UcbAnalysis::analyze(&cfg, &acc, &cache).unwrap();
        // Three useful blocks but only 2 ways: capped at 2.
        assert_eq!(ucb.useful_blocks(ids[0])[0].len(), 3);
        assert_eq!(ucb.ucb_count(ids[0]), 2);
    }

    #[test]
    fn associativity_rescues_conflicting_working_set() {
        // Lines 0 and 4 conflict in a 4-set direct-mapped cache; both are
        // reused after block b1. Direct-mapped: the set thrashes — the
        // resident line 4 is evicted by b2's first access (line 0) before
        // its own reuse, so *nothing* is useful during b1. 2-way: both stay
        // cached and useful.
        let (cfg, ids) = chain(3);
        let mut acc = AccessMap::new();
        acc.set(ids[0], vec![0, 64]); // lines 0 and 4, both set 0
        acc.set(ids[1], vec![16]); // unrelated
        acc.set(ids[2], vec![0, 64]); // reuse both
        let dm = CacheConfig::new(4, 1, 16, 10.0).unwrap();
        let ucb_dm = UcbAnalysis::analyze(&cfg, &acc, &dm).unwrap();
        assert_eq!(ucb_dm.capped_counts(ids[1])[0], 0);
        let a2 = CacheConfig::new(4, 2, 16, 10.0).unwrap();
        let ucb_a2 = UcbAnalysis::analyze(&cfg, &acc, &a2).unwrap();
        assert_eq!(ucb_a2.capped_counts(ids[1])[0], 2);
        assert!(ucb_a2.ucb_count(ids[1]) > ucb_dm.ucb_count(ids[1]));
    }

    #[test]
    fn lee_style_config_runs_realistic_layout() {
        // A 40-block straight-line task with a 25% shared buffer, under the
        // literature-standard 256-set direct-mapped i-cache.
        let (cfg, ids) = chain(40);
        let config = CacheConfig::lee_style();
        let layout: Vec<(BlockId, u64, u64)> = ids
            .iter()
            .map(|b| (*b, b.index() as u64 * 64, 64))
            .collect();
        let mut acc = AccessMap::from_code_layout(&layout, &config);
        for &b in ids.iter().step_by(4) {
            acc.push(b, 0x10000);
            acc.push(b, 0x10010);
        }
        let ucb = UcbAnalysis::analyze(&cfg, &acc, &config).unwrap();
        // The shared buffer is useful between its uses.
        let between = ids[1]; // between step-4 users 0 and 4
        let buffer_line = 0x10000 / 16;
        let set = config.set_of_block(buffer_line);
        assert!(ucb.useful_blocks(between)[set].contains(&buffer_line));
        // Straight-line code is never reused: only the buffer and the
        // block's own lines count.
        assert!(ucb.ucb_count(between) <= 4 + 2);
    }

    #[test]
    fn validates_access_map() {
        let (cfg, _) = chain(2);
        let mut acc = AccessMap::new();
        acc.set(BlockId(9), vec![0]);
        assert!(matches!(
            UcbAnalysis::analyze(&cfg, &acc, &config()),
            Err(CacheError::UnknownBlock { index: 9 })
        ));
    }

    #[test]
    fn empty_access_map_has_no_useful_blocks() {
        let (cfg, ids) = chain(3);
        let ucb = UcbAnalysis::analyze(&cfg, &AccessMap::new(), &config()).unwrap();
        for &b in &ids {
            assert_eq!(ucb.ucb_count(b), 0);
        }
    }

    #[test]
    fn diamond_merges_paths() {
        // entry loads line 0; branches b1 (reuses line 0) / b2 (loads
        // conflicting line 4); join reuses line 0.
        let mut b = CfgBuilder::new();
        let entry = b.block(iv());
        let left = b.block(iv());
        let right = b.block(iv());
        let join = b.block(iv());
        b.edge(entry, left).unwrap();
        b.edge(entry, right).unwrap();
        b.edge(left, join).unwrap();
        b.edge(right, join).unwrap();
        let cfg = b.build().unwrap();
        let mut acc = AccessMap::new();
        acc.set(entry, vec![0]);
        acc.set(left, vec![0]);
        acc.set(right, vec![64]); // line 4, conflicts with line 0
        acc.set(join, vec![0]);
        let ucb = UcbAnalysis::analyze(&cfg, &acc, &config()).unwrap();
        // On the left path line 0 stays cached and is reused at the join:
        // useful during left. May-analysis keeps it useful during right too
        // (it may be cached -- no: right's last access replaces set 0 ...)
        assert!(ucb.useful_blocks(left)[0].contains(&0));
        // At the join, line 0 may be cached (left path) and is accessed.
        assert!(ucb.useful_blocks(join)[0].contains(&0));
    }
}
