//! Per-basic-block cache-related preemption delay bounds.
//!
//! `CRPD_b = reload_cost × Σ_s min(A, |UCB_b,s ∩ damaged(s)|)` — the worst
//! reload bill if the task is preempted anywhere in block `b` and the
//! preempter damages the given cache sets. With an unknown preempter every
//! set is damaged (the conservative default used by the paper's pipeline).

use fnpr_cfg::{BlockId, Cfg};
use serde::{Deserialize, Serialize};

use crate::access::AccessMap;
use crate::config::CacheConfig;
use crate::ecb::EcbSet;
use crate::error::CacheError;
use crate::ucb::UcbAnalysis;

/// CRPD bounds for every basic block of one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrpdAnalysis {
    ucb: UcbAnalysis,
    blocks: usize,
}

impl CrpdAnalysis {
    /// Runs the UCB dataflow and wraps it for CRPD queries.
    ///
    /// # Errors
    ///
    /// As [`UcbAnalysis::analyze`].
    ///
    /// # Examples
    ///
    /// ```
    /// use fnpr_cache::{AccessMap, CacheConfig, CrpdAnalysis};
    /// use fnpr_cfg::{CfgBuilder, ExecInterval};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = CfgBuilder::new();
    /// let load = b.block(ExecInterval::new(10.0, 12.0)?);
    /// let compute = b.block(ExecInterval::new(50.0, 80.0)?);
    /// b.edge(load, compute)?;
    /// let cfg = b.build()?;
    ///
    /// let config = CacheConfig::new(8, 1, 16, 10.0)?;
    /// let mut acc = AccessMap::new();
    /// acc.set(load, vec![0, 16, 32]);      // build the working set
    /// acc.set(compute, vec![0, 16, 32]);   // reuse it
    /// let crpd = CrpdAnalysis::analyze(&cfg, &acc, &config)?;
    /// // Losing all three cached lines costs 3 reloads.
    /// assert_eq!(crpd.crpd(load), 30.0);
    /// assert_eq!(crpd.crpd(compute), 30.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn analyze(
        cfg: &Cfg,
        accesses: &AccessMap,
        config: &CacheConfig,
    ) -> Result<Self, CacheError> {
        fnpr_obs::counter!("cache.crpd.analyses").incr();
        let ucb = UcbAnalysis::analyze(cfg, accesses, config)?;
        Ok(Self {
            ucb,
            blocks: cfg.len(),
        })
    }

    /// CRPD of block `b` against an unknown preempter (full cache damage).
    #[must_use]
    pub fn crpd(&self, b: BlockId) -> f64 {
        self.ucb.ucb_count(b) as f64 * self.ucb.config().reload_cost()
    }

    /// CRPD of block `b` against a preempter with the given evicting set.
    #[must_use]
    pub fn crpd_against(&self, b: BlockId, ecb: &EcbSet) -> f64 {
        let config = self.ucb.config();
        let damage: usize = self
            .ucb
            .useful_blocks(b)
            .iter()
            .enumerate()
            .filter(|&(s, _)| ecb.contains(s))
            .map(|(_, blocks)| blocks.len().min(config.associativity()))
            .sum();
        damage as f64 * config.reload_cost()
    }

    /// CRPD of every block (index = block id), full damage.
    #[must_use]
    pub fn per_block(&self) -> Vec<f64> {
        (0..self.blocks).map(|b| self.crpd(BlockId(b))).collect()
    }

    /// The task's maximum CRPD over all blocks — the `max fi` figure the
    /// Eq. 4 baseline consumes.
    #[must_use]
    pub fn max_crpd(&self) -> f64 {
        (0..self.blocks)
            .map(|b| self.crpd(BlockId(b)))
            .fold(0.0, f64::max)
    }

    /// The underlying useful-cache-block analysis.
    #[must_use]
    pub fn ucb(&self) -> &UcbAnalysis {
        &self.ucb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnpr_cfg::{CfgBuilder, ExecInterval};

    fn iv() -> ExecInterval {
        ExecInterval::new(1.0, 1.0).unwrap()
    }

    /// load -> compute -> drain where compute reuses half the working set.
    fn pipeline() -> (Cfg, [BlockId; 3]) {
        let mut b = CfgBuilder::new();
        let load = b.block(iv());
        let compute = b.block(iv());
        let drain = b.block(iv());
        b.edge(load, compute).unwrap();
        b.edge(compute, drain).unwrap();
        (b.build().unwrap(), [load, compute, drain])
    }

    #[test]
    fn crpd_counts_reloads() {
        let (cfg, [load, compute, drain]) = pipeline();
        let config = CacheConfig::new(8, 1, 16, 10.0).unwrap();
        let mut acc = AccessMap::new();
        acc.set(load, vec![0, 16, 32, 48]); // lines 0..4
        acc.set(compute, vec![0, 16]); // reuses lines 0, 1
        acc.set(drain, vec![64]); // line 4
        let crpd = CrpdAnalysis::analyze(&cfg, &acc, &config).unwrap();
        // During load: lines 0,1 useful (reused later); lines 2,3 dead after
        // the block... but in-block conservatism counts all four.
        assert_eq!(crpd.crpd(load), 40.0);
        // During compute: its own two lines (touched, reused in-block
        // conservatism) plus line 4? Not yet loaded. 2 reloads.
        assert_eq!(crpd.crpd(compute), 20.0);
        assert_eq!(crpd.crpd(drain), 10.0);
        assert_eq!(crpd.max_crpd(), 40.0);
        assert_eq!(crpd.per_block(), vec![40.0, 20.0, 10.0]);
    }

    #[test]
    fn crpd_against_partial_ecb() {
        let (cfg, [load, compute, _]) = pipeline();
        let config = CacheConfig::new(8, 1, 16, 10.0).unwrap();
        let mut acc = AccessMap::new();
        acc.set(load, vec![0, 16]); // sets 0, 1
        acc.set(compute, vec![0, 16]);
        let crpd = CrpdAnalysis::analyze(&cfg, &acc, &config).unwrap();
        assert_eq!(crpd.crpd(load), 20.0);
        // Preempter only touching set 0: one reload.
        assert_eq!(crpd.crpd_against(load, &EcbSet::from_sets([0])), 10.0);
        // Preempter touching untouched sets: free.
        assert_eq!(crpd.crpd_against(load, &EcbSet::from_sets([5, 6])), 0.0);
        // Full ECB equals the unknown-preempter default.
        assert_eq!(
            crpd.crpd_against(load, &EcbSet::full(&config)),
            crpd.crpd(load)
        );
    }

    #[test]
    fn zero_reload_cost_gives_zero_crpd() {
        let (cfg, [load, compute, _]) = pipeline();
        let config = CacheConfig::new(8, 1, 16, 0.0).unwrap();
        let mut acc = AccessMap::new();
        acc.set(load, vec![0]);
        acc.set(compute, vec![0]);
        let crpd = CrpdAnalysis::analyze(&cfg, &acc, &config).unwrap();
        assert_eq!(crpd.max_crpd(), 0.0);
    }
}
