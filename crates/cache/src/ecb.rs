//! Evicting cache blocks of preempting tasks.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::access::AccessMap;
use crate::config::CacheConfig;

/// The cache sets a (set of) preempting task(s) may touch — anything the
/// preempted task had cached in those sets may be evicted during a
/// preemption.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcbSet {
    sets: BTreeSet<usize>,
}

impl EcbSet {
    /// An empty set (a preempter that touches nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from explicit cache-set indices.
    #[must_use]
    pub fn from_sets<I: IntoIterator<Item = usize>>(sets: I) -> Self {
        Self {
            sets: sets.into_iter().collect(),
        }
    }

    /// The full-damage ECB: every set of the cache (used when the preempter
    /// is unknown, the conservative default of the paper's Section IV).
    #[must_use]
    pub fn full(config: &CacheConfig) -> Self {
        Self {
            sets: (0..config.sets()).collect(),
        }
    }

    /// The sets touched by a task, from its access map.
    ///
    /// ```
    /// use fnpr_cache::{AccessMap, CacheConfig, EcbSet};
    /// use fnpr_cfg::BlockId;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let config = CacheConfig::new(4, 1, 16, 10.0)?;
    /// let mut acc = AccessMap::new();
    /// acc.set(BlockId(0), vec![0, 16, 64]); // sets 0, 1, 0
    /// let ecb = EcbSet::of_task(&acc, &config);
    /// assert_eq!(ecb.len(), 2);
    /// assert!(ecb.contains(0) && ecb.contains(1));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn of_task(accesses: &AccessMap, config: &CacheConfig) -> Self {
        let sets = accesses
            .iter()
            .flat_map(|(_, addrs)| addrs.iter().map(|&a| config.set_of(a)))
            .collect();
        Self { sets }
    }

    /// Union with another ECB set (several potential preempters).
    #[must_use]
    pub fn union(&self, other: &EcbSet) -> EcbSet {
        EcbSet {
            sets: self.sets.union(&other.sets).copied().collect(),
        }
    }

    /// Returns `true` if cache set `s` may be damaged.
    #[must_use]
    pub fn contains(&self, s: usize) -> bool {
        self.sets.contains(&s)
    }

    /// Number of damaged sets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if no set is damaged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Iterates over the damaged set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.sets.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnpr_cfg::BlockId;

    #[test]
    fn of_task_collects_sets() {
        let config = CacheConfig::new(8, 1, 16, 10.0).unwrap();
        let mut acc = AccessMap::new();
        acc.set(BlockId(0), vec![0, 16]);
        acc.set(BlockId(1), vec![128]); // line 8 -> set 0
        let ecb = EcbSet::of_task(&acc, &config);
        assert_eq!(ecb.len(), 2);
        assert!(ecb.contains(0));
        assert!(ecb.contains(1));
        assert!(!ecb.contains(2));
    }

    #[test]
    fn union_and_full() {
        let config = CacheConfig::new(4, 1, 16, 10.0).unwrap();
        let a = EcbSet::from_sets([0, 1]);
        let b = EcbSet::from_sets([1, 3]);
        let u = a.union(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
        let full = EcbSet::full(&config);
        assert_eq!(full.len(), 4);
        assert!(EcbSet::new().is_empty());
        assert!(!full.is_empty());
    }
}
