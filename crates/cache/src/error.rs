//! Error types for the cache substrate.

use std::error::Error;
use std::fmt;

/// Errors raised while configuring the cache model or running analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// The number of cache sets must be at least 1.
    NoSets,
    /// The associativity must be at least 1.
    NoWays,
    /// The line size must be at least 1 byte.
    NoLineBytes,
    /// The reload cost is negative or not finite.
    BadReloadCost {
        /// The offending cost.
        cost: f64,
    },
    /// An access list references a basic block outside the analysed graph.
    UnknownBlock {
        /// Index of the offending block.
        index: usize,
    },
    /// The dataflow iteration failed to stabilise within the budget.
    FixpointLimit {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::NoSets => write!(f, "cache must have at least one set"),
            CacheError::NoWays => write!(f, "cache must have at least one way"),
            CacheError::NoLineBytes => write!(f, "cache line size must be at least one byte"),
            CacheError::BadReloadCost { cost } => {
                write!(f, "reload cost {cost} is negative or not finite")
            }
            CacheError::UnknownBlock { index } => {
                write!(f, "access list references unknown basic block {index}")
            }
            CacheError::FixpointLimit { limit } => {
                write!(f, "dataflow did not stabilise within {limit} passes")
            }
        }
    }
}

impl Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CacheError::NoSets.to_string().contains("set"));
        assert!(CacheError::BadReloadCost { cost: -2.0 }
            .to_string()
            .contains("-2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CacheError>();
    }
}
