//! Cache geometry and cost model.

use serde::{Deserialize, Serialize};

use crate::error::CacheError;

/// Geometry and timing of one cache level.
///
/// Addresses are byte addresses; a *memory block* is an address range of one
/// cache line, identified by `address / line_bytes`; blocks map to sets by
/// `block % sets` (modulo placement, the standard hardware policy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    sets: usize,
    associativity: usize,
    line_bytes: u64,
    reload_cost: f64,
}

impl CacheConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] if any parameter is out of range (zero
    /// sets/ways/line bytes, negative or non-finite reload cost).
    ///
    /// ```
    /// use fnpr_cache::CacheConfig;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// // 64-set, direct-mapped, 32-byte lines, 10 cycles per reload.
    /// let config = CacheConfig::new(64, 1, 32, 10.0)?;
    /// assert_eq!(config.set_of(0x1000), (0x1000 / 32) % 64);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(
        sets: usize,
        associativity: usize,
        line_bytes: u64,
        reload_cost: f64,
    ) -> Result<Self, CacheError> {
        if sets == 0 {
            return Err(CacheError::NoSets);
        }
        if associativity == 0 {
            return Err(CacheError::NoWays);
        }
        if line_bytes == 0 {
            return Err(CacheError::NoLineBytes);
        }
        if !(reload_cost.is_finite() && reload_cost >= 0.0) {
            return Err(CacheError::BadReloadCost { cost: reload_cost });
        }
        Ok(Self {
            sets,
            associativity,
            line_bytes,
            reload_cost,
        })
    }

    /// A direct-mapped instruction cache typical of the CRPD literature:
    /// 256 sets, 16-byte lines, reload cost 10.
    #[must_use]
    pub fn lee_style() -> Self {
        Self::new(256, 1, 16, 10.0).expect("static configuration")
    }

    /// Number of cache sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Ways per set (1 = direct-mapped).
    #[must_use]
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Time to reload one evicted line.
    #[must_use]
    pub fn reload_cost(&self) -> f64 {
        self.reload_cost
    }

    /// Returns `true` for a direct-mapped cache.
    #[must_use]
    pub fn is_direct_mapped(&self) -> bool {
        self.associativity == 1
    }

    /// The memory block (line-granule id) containing a byte address.
    #[must_use]
    pub fn block_of(&self, address: u64) -> u64 {
        address / self.line_bytes
    }

    /// The cache set a byte address maps to.
    #[must_use]
    pub fn set_of(&self, address: u64) -> usize {
        (self.block_of(address) % self.sets as u64) as usize
    }

    /// The cache set a memory block maps to.
    #[must_use]
    pub fn set_of_block(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(CacheConfig::new(0, 1, 16, 1.0).is_err());
        assert!(CacheConfig::new(4, 0, 16, 1.0).is_err());
        assert!(CacheConfig::new(4, 1, 0, 1.0).is_err());
        assert!(CacheConfig::new(4, 1, 16, -1.0).is_err());
        assert!(CacheConfig::new(4, 1, 16, f64::NAN).is_err());
        assert!(CacheConfig::new(4, 2, 16, 0.0).is_ok());
    }

    #[test]
    fn address_mapping() {
        let c = CacheConfig::new(4, 1, 16, 10.0).unwrap();
        assert_eq!(c.block_of(0), 0);
        assert_eq!(c.block_of(15), 0);
        assert_eq!(c.block_of(16), 1);
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(16), 1);
        assert_eq!(c.set_of(64), 0); // wraps around 4 sets
        assert_eq!(c.set_of_block(7), 3);
    }

    #[test]
    fn accessors() {
        let c = CacheConfig::lee_style();
        assert_eq!(c.sets(), 256);
        assert!(c.is_direct_mapped());
        assert_eq!(c.line_bytes(), 16);
        assert_eq!(c.reload_cost(), 10.0);
        let a2 = CacheConfig::new(8, 2, 32, 5.0).unwrap();
        assert!(!a2.is_direct_mapped());
        assert_eq!(a2.associativity(), 2);
    }
}
