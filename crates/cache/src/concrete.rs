//! A concrete (executable) cache model for validating the static CRPD
//! bounds: simulate a real path through the task with and without a
//! preemption and count the *extra* misses the preemption caused. Soundness
//! of [`CrpdAnalysis`] means the extra reload bill never exceeds the static
//! per-block bound — exercised by unit and property tests.
//!
//! [`CrpdAnalysis`]: crate::CrpdAnalysis

use fnpr_cfg::{BlockId, Cfg};
use serde::{Deserialize, Serialize};

use crate::access::AccessMap;
use crate::config::CacheConfig;
use crate::ecb::EcbSet;

/// An executable set-associative LRU cache (direct-mapped when `A = 1`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConcreteCache {
    config_sets: usize,
    config_ways: usize,
    line_bytes: u64,
    /// Per set: resident memory blocks, most recently used first.
    sets: Vec<Vec<u64>>,
}

impl ConcreteCache {
    /// An empty (cold) cache with the given geometry.
    #[must_use]
    pub fn new(config: &CacheConfig) -> Self {
        Self {
            config_sets: config.sets(),
            config_ways: config.associativity(),
            line_bytes: config.line_bytes(),
            sets: vec![Vec::new(); config.sets()],
        }
    }

    /// Performs one access; returns `true` on a hit.
    pub fn access(&mut self, address: u64) -> bool {
        let block = address / self.line_bytes;
        let set = (block % self.config_sets as u64) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&m| m == block) {
            let hit = ways.remove(pos);
            ways.insert(0, hit);
            true
        } else {
            ways.insert(0, block);
            ways.truncate(self.config_ways);
            false
        }
    }

    /// Worst-case preemption damage: clears every set the preempter may
    /// touch.
    pub fn evict_sets(&mut self, ecb: &EcbSet) {
        for s in ecb.iter() {
            if s < self.sets.len() {
                self.sets[s].clear();
            }
        }
    }

    /// Simulates a preempting task running to completion (all its accesses,
    /// in block order) — a *realistic* (rather than worst-case) preemption.
    pub fn run_preempter(&mut self, accesses: &AccessMap) {
        for (_, addrs) in accesses.iter() {
            for &a in addrs {
                self.access(a);
            }
        }
    }

    /// Current residents of a set, most recently used first.
    #[must_use]
    pub fn contents(&self, set: usize) -> &[u64] {
        &self.sets[set]
    }

    /// Empties the whole cache.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

/// How a preemption damages the cache in [`preemption_cost_on_path`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreemptionDamage {
    /// Clear every set in the ECB (worst case).
    EvictSets(EcbSet),
    /// Run a concrete preempter's accesses through the cache (realistic).
    RunTask(AccessMap),
}

/// Result of one concrete preemption experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreemptionCost {
    /// Misses along the path without any preemption.
    pub baseline_misses: u64,
    /// Misses along the same path when preempted.
    pub preempted_misses: u64,
}

impl PreemptionCost {
    /// The misses attributable to the preemption (saturating: a preemption
    /// can accidentally *help* in pathological non-LRU cases; LRU never
    /// benefits, which the property tests confirm).
    #[must_use]
    pub fn extra_misses(&self) -> u64 {
        self.preempted_misses.saturating_sub(self.baseline_misses)
    }
}

/// Runs a concrete path through the task twice — cold-start, with and
/// without a preemption before executing `path[preempt_before]` — and
/// reports the miss counts.
///
/// The preemption point corresponds to the *entry* of block
/// `path[preempt_before]`, so the static bound to compare against is
/// `CrpdAnalysis::crpd*(path[preempt_before], ...)` (whose per-block window
/// covers the block entry).
///
/// # Panics
///
/// Panics if `path` is empty, `preempt_before >= path.len()`, or a path
/// block is outside the graph. Intended for tests and experiment harnesses
/// where paths are generated from the graph itself.
#[must_use]
pub fn preemption_cost_on_path(
    cfg: &Cfg,
    accesses: &AccessMap,
    config: &CacheConfig,
    path: &[BlockId],
    preempt_before: usize,
    damage: &PreemptionDamage,
) -> PreemptionCost {
    assert!(!path.is_empty(), "path must be non-empty");
    assert!(preempt_before < path.len(), "preemption point out of range");
    for &b in path {
        assert!(b.index() < cfg.len(), "path block outside graph");
    }
    let run = |preempt: bool| -> u64 {
        let mut cache = ConcreteCache::new(config);
        let mut misses = 0u64;
        for (k, &b) in path.iter().enumerate() {
            if preempt && k == preempt_before {
                match damage {
                    PreemptionDamage::EvictSets(ecb) => cache.evict_sets(ecb),
                    PreemptionDamage::RunTask(task) => cache.run_preempter(task),
                }
            }
            for &a in accesses.of(b) {
                if !cache.access(a) {
                    misses += 1;
                }
            }
        }
        misses
    };
    PreemptionCost {
        baseline_misses: run(false),
        preempted_misses: run(true),
    }
}

/// Enumerates up to `limit` entry-to-exit paths of an acyclic graph (DFS
/// order) — the workload generator for concrete validation.
#[must_use]
pub fn enumerate_paths(cfg: &Cfg, limit: usize) -> Vec<Vec<BlockId>> {
    let mut paths = Vec::new();
    let mut stack = vec![(vec![cfg.entry()], cfg.entry())];
    while let Some((path, at)) = stack.pop() {
        if paths.len() >= limit {
            break;
        }
        let succs = cfg.successors(at);
        if succs.is_empty() {
            paths.push(path);
            continue;
        }
        for &succ in succs {
            let mut next = path.clone();
            next.push(succ);
            stack.push((next, succ));
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crpd::CrpdAnalysis;
    use fnpr_cfg::{CfgBuilder, ExecInterval};

    fn iv() -> ExecInterval {
        ExecInterval::new(1.0, 1.0).unwrap()
    }

    #[test]
    fn lru_semantics() {
        let config = CacheConfig::new(1, 2, 16, 10.0).unwrap();
        let mut cache = ConcreteCache::new(&config);
        assert!(!cache.access(0)); // miss, [0]
        assert!(!cache.access(16)); // miss, [1,0]
        assert!(cache.access(0)); // hit, [0,1]
        assert!(!cache.access(32)); // miss, evicts LRU=1: [2,0]
        assert!(cache.access(0)); // hit, [0,2]
        assert!(!cache.access(16)); // miss again (was evicted), [1,0]
        assert_eq!(cache.contents(0), &[1, 0]);
    }

    #[test]
    fn direct_mapped_replaces() {
        let config = CacheConfig::new(2, 1, 16, 10.0).unwrap();
        let mut cache = ConcreteCache::new(&config);
        assert!(!cache.access(0)); // line 0, set 0
        assert!(!cache.access(32)); // line 2, set 0: replaces
        assert!(!cache.access(0)); // miss again
        assert!(cache.access(0));
        cache.flush();
        assert!(!cache.access(0));
    }

    #[test]
    fn evict_sets_only_touches_ecb() {
        let config = CacheConfig::new(4, 1, 16, 10.0).unwrap();
        let mut cache = ConcreteCache::new(&config);
        cache.access(0); // set 0
        cache.access(16); // set 1
        cache.evict_sets(&EcbSet::from_sets([0]));
        assert!(cache.contents(0).is_empty());
        assert_eq!(cache.contents(1), &[1]);
    }

    #[test]
    fn extra_misses_bounded_by_static_crpd() {
        // load -> compute -> reuse; preempt before each block; the concrete
        // reload bill never exceeds the static CRPD of that block.
        let mut b = CfgBuilder::new();
        let load = b.block(iv());
        let compute = b.block(iv());
        let reuse = b.block(iv());
        b.edge(load, compute).unwrap();
        b.edge(compute, reuse).unwrap();
        let cfg = b.build().unwrap();
        let config = CacheConfig::new(8, 1, 16, 10.0).unwrap();
        let mut acc = AccessMap::new();
        acc.set(load, vec![0, 16, 32]);
        acc.set(compute, vec![48]);
        acc.set(reuse, vec![0, 16, 32]);
        let crpd = CrpdAnalysis::analyze(&cfg, &acc, &config).unwrap();
        let path = [load, compute, reuse];
        for k in 0..path.len() {
            let cost = preemption_cost_on_path(
                &cfg,
                &acc,
                &config,
                &path,
                k,
                &PreemptionDamage::EvictSets(EcbSet::full(&config)),
            );
            let bound = crpd.crpd(path[k]);
            assert!(
                cost.extra_misses() as f64 * config.reload_cost() <= bound,
                "preempt before {:?}: {} reloads > bound {}",
                path[k],
                cost.extra_misses(),
                bound
            );
        }
        // Preempting before `compute` really costs something: lines 0,1,2
        // are cached and will be reused.
        let cost = preemption_cost_on_path(
            &cfg,
            &acc,
            &config,
            &path,
            1,
            &PreemptionDamage::EvictSets(EcbSet::full(&config)),
        );
        assert_eq!(cost.extra_misses(), 3);
    }

    #[test]
    fn realistic_preempter_damage() {
        let mut b = CfgBuilder::new();
        let load = b.block(iv());
        let reuse = b.block(iv());
        b.edge(load, reuse).unwrap();
        let cfg = b.build().unwrap();
        let config = CacheConfig::new(4, 1, 16, 10.0).unwrap();
        let mut acc = AccessMap::new();
        acc.set(load, vec![0, 16]); // sets 0, 1
        acc.set(reuse, vec![0, 16]);
        // Preempter touching only set 0.
        let mut preempter = AccessMap::new();
        preempter.set(BlockId(0), vec![64]); // line 4, set 0
        let cost = preemption_cost_on_path(
            &cfg,
            &acc,
            &config,
            &[load, reuse],
            1,
            &PreemptionDamage::RunTask(preempter.clone()),
        );
        assert_eq!(cost.extra_misses(), 1); // only line 0 lost
        let crpd = CrpdAnalysis::analyze(&cfg, &acc, &config).unwrap();
        let ecb = EcbSet::of_task(&preempter, &config);
        assert!(cost.extra_misses() as f64 * config.reload_cost() <= crpd.crpd_against(load, &ecb));
    }

    #[test]
    fn path_enumeration() {
        let mut b = CfgBuilder::new();
        let e = b.block(iv());
        let l = b.block(iv());
        let r = b.block(iv());
        let j = b.block(iv());
        b.edge(e, l).unwrap();
        b.edge(e, r).unwrap();
        b.edge(l, j).unwrap();
        b.edge(r, j).unwrap();
        let cfg = b.build().unwrap();
        let paths = enumerate_paths(&cfg, 10);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.first(), Some(&e));
            assert_eq!(p.last(), Some(&j));
        }
        assert_eq!(enumerate_paths(&cfg, 1).len(), 1);
    }
}
