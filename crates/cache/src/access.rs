//! Per-basic-block memory access sequences.

use std::collections::BTreeMap;

use fnpr_cfg::{BlockId, Cfg};
use serde::{Deserialize, Serialize};

use crate::config::CacheConfig;
use crate::error::CacheError;

/// Ordered memory accesses (byte addresses) of every basic block of one
/// task.
///
/// This is the cache-model view of the task: `fnpr-cfg` deliberately does
/// not store accesses, so the same graph can be analysed under different
/// memory layouts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessMap {
    accesses: BTreeMap<BlockId, Vec<u64>>,
}

impl AccessMap {
    /// Creates an empty map (blocks without entries access nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the ordered access list of a block, replacing any previous list.
    pub fn set(&mut self, block: BlockId, addresses: Vec<u64>) -> &mut Self {
        self.accesses.insert(block, addresses);
        self
    }

    /// Appends one access to a block's list.
    pub fn push(&mut self, block: BlockId, address: u64) -> &mut Self {
        self.accesses.entry(block).or_default().push(address);
        self
    }

    /// The ordered accesses of a block (empty if none registered).
    #[must_use]
    pub fn of(&self, block: BlockId) -> &[u64] {
        self.accesses.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over `(block, accesses)` pairs in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &[u64])> {
        self.accesses.iter().map(|(&b, v)| (b, v.as_slice()))
    }

    /// Checks that every referenced block exists in `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::UnknownBlock`] for the first out-of-range block.
    pub fn validate(&self, cfg: &Cfg) -> Result<(), CacheError> {
        for &block in self.accesses.keys() {
            if block.index() >= cfg.len() {
                return Err(CacheError::UnknownBlock {
                    index: block.index(),
                });
            }
        }
        Ok(())
    }

    /// Derives an access map for straight-line *instruction fetches*: block
    /// `b` occupies `sizes[b]` bytes starting at `base[b]`, and fetches one
    /// access per line it spans. A convenient generator for
    /// instruction-cache studies (the paper's \[3\] models i-caches).
    #[must_use]
    pub fn from_code_layout(layout: &[(BlockId, u64, u64)], config: &CacheConfig) -> Self {
        let mut map = Self::new();
        for &(block, base, size) in layout {
            let mut addresses = Vec::new();
            let mut at = base;
            let end = base + size.max(1);
            while at < end {
                addresses.push(at);
                at += config.line_bytes();
            }
            map.set(block, addresses);
        }
        map
    }

    /// Appends a strided array walk to a block: `count` element accesses of
    /// `elem_bytes` each, starting at `base`, `stride` elements apart — the
    /// standard data-cache workload (sequential scan with `stride = 1`,
    /// column walks with larger strides).
    ///
    /// ```
    /// use fnpr_cache::AccessMap;
    /// use fnpr_cfg::BlockId;
    /// let mut map = AccessMap::new();
    /// map.push_array_walk(BlockId(0), 0x1000, 4, 8, 2);
    /// assert_eq!(map.of(BlockId(0)), &[0x1000, 0x1010, 0x1020, 0x1030]);
    /// ```
    pub fn push_array_walk(
        &mut self,
        block: BlockId,
        base: u64,
        count: u64,
        elem_bytes: u64,
        stride: u64,
    ) -> &mut Self {
        for k in 0..count {
            self.push(block, base + k * stride * elem_bytes);
        }
        self
    }

    /// All distinct memory blocks (line-granule) touched by the whole task.
    #[must_use]
    pub fn touched_blocks(&self, config: &CacheConfig) -> Vec<u64> {
        let mut blocks: Vec<u64> = self
            .accesses
            .values()
            .flatten()
            .map(|&a| config.block_of(a))
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnpr_cfg::{CfgBuilder, ExecInterval};

    fn two_block_cfg() -> Cfg {
        let mut b = CfgBuilder::new();
        let x = b.block(ExecInterval::new(1.0, 1.0).unwrap());
        let y = b.block(ExecInterval::new(1.0, 1.0).unwrap());
        b.edge(x, y).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn set_push_and_query() {
        let mut map = AccessMap::new();
        map.set(BlockId(0), vec![0, 16]).push(BlockId(0), 32);
        assert_eq!(map.of(BlockId(0)), &[0, 16, 32]);
        assert!(map.of(BlockId(1)).is_empty());
        assert_eq!(map.iter().count(), 1);
    }

    #[test]
    fn validation_against_cfg() {
        let cfg = two_block_cfg();
        let mut map = AccessMap::new();
        map.set(BlockId(1), vec![0]);
        assert!(map.validate(&cfg).is_ok());
        map.set(BlockId(5), vec![0]);
        assert!(matches!(
            map.validate(&cfg),
            Err(CacheError::UnknownBlock { index: 5 })
        ));
    }

    #[test]
    fn code_layout_generates_line_fetches() {
        let config = CacheConfig::new(16, 1, 16, 10.0).unwrap();
        let map = AccessMap::from_code_layout(&[(BlockId(0), 0, 40), (BlockId(1), 40, 8)], &config);
        // 40 bytes from 0: lines at 0, 16, 32.
        assert_eq!(map.of(BlockId(0)), &[0, 16, 32]);
        // 8 bytes from 40: single access at 40.
        assert_eq!(map.of(BlockId(1)), &[40]);
    }

    #[test]
    fn array_walks_generate_strided_accesses() {
        let mut map = AccessMap::new();
        // Sequential scan: 4 x 4-byte elements from 0x100.
        map.push_array_walk(BlockId(0), 0x100, 4, 4, 1);
        assert_eq!(map.of(BlockId(0)), &[0x100, 0x104, 0x108, 0x10c]);
        // Column walk with stride 16 (e.g. row-major matrix column).
        let mut map2 = AccessMap::new();
        map2.push_array_walk(BlockId(0), 0, 3, 8, 16);
        assert_eq!(map2.of(BlockId(0)), &[0, 128, 256]);
        // A stride-16 walk with 16-byte lines touches a new line each time.
        let config = CacheConfig::new(8, 1, 16, 10.0).unwrap();
        assert_eq!(map2.touched_blocks(&config).len(), 3);
    }

    #[test]
    fn touched_blocks_dedup() {
        let config = CacheConfig::new(4, 1, 16, 10.0).unwrap();
        let mut map = AccessMap::new();
        map.set(BlockId(0), vec![0, 4, 8, 16]); // lines 0, 0, 0, 1
        map.set(BlockId(1), vec![16, 64]); // lines 1, 4
        assert_eq!(map.touched_blocks(&config), vec![0, 1, 4]);
    }
}
