//! # fnpr-cache — cache substrate and CRPD bounds
//!
//! The paper's Section IV delegates the per-basic-block preemption cost
//! `CRPD_b` to "state of the art methods like \[3\]" (Lee et al.'s useful
//! cache blocks). This crate implements that substrate from scratch:
//!
//! * [`CacheConfig`] — geometry (sets × ways × line size) and reload cost;
//! * [`AccessMap`] — ordered per-basic-block memory accesses;
//! * [`UcbAnalysis`] — useful-cache-block dataflow (exact transfer for
//!   direct-mapped caches, conservative may-analysis for LRU set-associative
//!   ones);
//! * [`EcbSet`] — evicting cache blocks of preempting tasks;
//! * [`CrpdAnalysis`] — `CRPD_b` per block, against full or per-preempter
//!   damage;
//! * [`ConcreteCache`] / [`preemption_cost_on_path`] — an executable cache
//!   for validating the static bounds against real runs.
//!
//! # From CRPD to the paper's delay function
//!
//! ```
//! use fnpr_cache::{AccessMap, CacheConfig, CrpdAnalysis};
//! use fnpr_cfg::{CfgBuilder, ExecInterval, Occupancy};
//! use fnpr_core::DelayCurve;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CfgBuilder::new();
//! let load = b.block(ExecInterval::new(10.0, 12.0)?);
//! let compute = b.block(ExecInterval::new(50.0, 80.0)?);
//! b.edge(load, compute)?;
//! let cfg = b.build()?;
//!
//! let config = CacheConfig::new(16, 1, 16, 10.0)?;
//! let mut acc = AccessMap::new();
//! acc.set(load, vec![0, 16, 32]);
//! acc.set(compute, vec![0, 16, 32]);
//!
//! let crpd = CrpdAnalysis::analyze(&cfg, &acc, &config)?;
//! let occ = Occupancy::analyze(&cfg)?;
//! // fi(t) = max {CRPD_b : b ∈ BB(t)} — Section IV's composition.
//! let fi = DelayCurve::from_windows(
//!     occ.value_windows(|b| crpd.crpd(b)),
//!     occ.wcet(),
//! )?;
//! assert_eq!(fi.max_value(), 30.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

mod access;
mod concrete;
mod config;
mod crpd;
mod ecb;
mod empirical;
mod error;
mod ucb;

pub use access::AccessMap;
pub use concrete::{
    enumerate_paths, preemption_cost_on_path, ConcreteCache, PreemptionCost, PreemptionDamage,
};
pub use config::CacheConfig;
pub use crpd::CrpdAnalysis;
pub use ecb::EcbSet;
pub use empirical::{empirical_crpd, empirical_crpd_on_paths, EmpiricalCrpd};
pub use error::CacheError;
pub use ucb::UcbAnalysis;
