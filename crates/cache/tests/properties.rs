//! Property-based soundness tests for the cache substrate.
//!
//! The headline property: for random graphs, random memory layouts, random
//! paths and random preemption points, the *concrete* reload bill of a
//! preemption never exceeds the *static* per-block CRPD bound — for
//! direct-mapped and LRU set-associative caches, against both worst-case
//! set eviction and realistic preempter runs.

use fnpr_cache::{
    empirical_crpd, enumerate_paths, preemption_cost_on_path, AccessMap, CacheConfig, CrpdAnalysis,
    EcbSet, PreemptionDamage, UcbAnalysis,
};
use fnpr_cfg::{BlockId, Cfg, CfgBuilder, ExecInterval};
use proptest::prelude::*;

/// Random layered DAG with random per-block access lists.
#[derive(Debug, Clone)]
struct Workload {
    layer_sizes: Vec<usize>,
    accesses: Vec<Vec<u64>>, // cycled over blocks
    sets: usize,
    ways: usize,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        prop::collection::vec(1usize..3, 1..5),
        prop::collection::vec(prop::collection::vec(0u64..24, 0..6), 16),
        1usize..8,
        1usize..4,
    )
        .prop_map(|(layer_sizes, raw, sets, ways)| Workload {
            layer_sizes,
            // Scale access ids to line addresses (16-byte lines).
            accesses: raw
                .into_iter()
                .map(|v| v.into_iter().map(|a| a * 16).collect())
                .collect(),
            sets,
            ways,
        })
}

fn build(w: &Workload) -> (Cfg, AccessMap, CacheConfig) {
    let config = CacheConfig::new(w.sets, w.ways, 16, 10.0).unwrap();
    let mut builder = CfgBuilder::new();
    let iv = ExecInterval::new(1.0, 1.0).unwrap();
    let mut layers: Vec<Vec<BlockId>> = vec![vec![builder.block(iv)]];
    for &size in &w.layer_sizes {
        let layer: Vec<BlockId> = (0..size).map(|_| builder.block(iv)).collect();
        layers.push(layer);
    }
    for k in 0..layers.len() - 1 {
        for &to in &layers[k + 1] {
            builder.edge(layers[k][0], to).unwrap();
        }
        for &from in &layers[k][1..] {
            builder.edge(from, layers[k + 1][0]).unwrap();
        }
    }
    let cfg = builder.build().unwrap();
    let mut acc = AccessMap::new();
    for b in 0..cfg.len() {
        let list = w.accesses[b % w.accesses.len()].clone();
        acc.set(BlockId(b), list);
    }
    (cfg, acc, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Concrete worst-case eviction never beats the static bound.
    #[test]
    fn concrete_cost_below_static_bound(
        w in arb_workload(),
        path_pick in 0usize..8,
        point_pick in 0usize..8,
    ) {
        let (cfg, acc, config) = build(&w);
        let crpd = CrpdAnalysis::analyze(&cfg, &acc, &config).unwrap();
        let paths = enumerate_paths(&cfg, 8);
        let path = &paths[path_pick % paths.len()];
        let k = point_pick % path.len();
        let cost = preemption_cost_on_path(
            &cfg,
            &acc,
            &config,
            path,
            k,
            &PreemptionDamage::EvictSets(EcbSet::full(&config)),
        );
        let bill = cost.extra_misses() as f64 * config.reload_cost();
        let bound = crpd.crpd(path[k]);
        prop_assert!(
            bill <= bound + 1e-9,
            "concrete bill {} exceeds static CRPD {} at block {:?}",
            bill, bound, path[k]
        );
    }

    /// Same with a realistic preempter and the per-preempter ECB bound.
    #[test]
    fn concrete_cost_below_ecb_bound(
        w in arb_workload(),
        preempter_lines in prop::collection::vec(0u64..24, 0..10),
        path_pick in 0usize..8,
        point_pick in 0usize..8,
    ) {
        let (cfg, acc, config) = build(&w);
        let crpd = CrpdAnalysis::analyze(&cfg, &acc, &config).unwrap();
        let mut preempter = AccessMap::new();
        preempter.set(
            BlockId(0),
            preempter_lines.iter().map(|&a| a * 16).collect(),
        );
        let ecb = EcbSet::of_task(&preempter, &config);
        let paths = enumerate_paths(&cfg, 8);
        let path = &paths[path_pick % paths.len()];
        let k = point_pick % path.len();
        let cost = preemption_cost_on_path(
            &cfg,
            &acc,
            &config,
            path,
            k,
            &PreemptionDamage::RunTask(preempter),
        );
        let bill = cost.extra_misses() as f64 * config.reload_cost();
        let bound = crpd.crpd_against(path[k], &ecb);
        prop_assert!(
            bill <= bound + 1e-9,
            "realistic bill {} exceeds ECB-aware CRPD {} at block {:?}",
            bill, bound, path[k]
        );
    }

    /// The ECB-aware bound is monotone: more damaged sets, larger bound;
    /// full damage equals the default bound.
    #[test]
    fn ecb_bound_monotonicity(w in arb_workload(), subset_mask in 0usize..256) {
        let (cfg, acc, config) = build(&w);
        let crpd = CrpdAnalysis::analyze(&cfg, &acc, &config).unwrap();
        let subset = EcbSet::from_sets(
            (0..config.sets()).filter(|s| subset_mask & (1 << (s % 8)) != 0),
        );
        let full = EcbSet::full(&config);
        for b in 0..cfg.len() {
            let block = BlockId(b);
            prop_assert!(crpd.crpd_against(block, &subset) <= crpd.crpd(block) + 1e-12);
            prop_assert!((crpd.crpd_against(block, &full) - crpd.crpd(block)).abs() < 1e-12);
            prop_assert_eq!(crpd.crpd_against(block, &EcbSet::new()), 0.0);
        }
    }

    /// UCB counts respect the structural caps: per set at most the
    /// associativity, in total at most sets x ways and at most the number of
    /// distinct blocks the task touches.
    #[test]
    fn ucb_structural_caps(w in arb_workload()) {
        let (cfg, acc, config) = build(&w);
        let ucb = UcbAnalysis::analyze(&cfg, &acc, &config).unwrap();
        let distinct = acc.touched_blocks(&config).len();
        for b in 0..cfg.len() {
            let block = BlockId(b);
            let counts = ucb.capped_counts(block);
            prop_assert_eq!(counts.len(), config.sets());
            for &c in &counts {
                prop_assert!(c <= config.associativity());
            }
            prop_assert!(ucb.ucb_count(block) <= config.sets() * config.associativity());
            prop_assert!(ucb.ucb_count(block) <= distinct);
        }
    }

    /// The empirical estimator is bracketed by the static analysis on every
    /// block, for both full and partial damage.
    #[test]
    fn empirical_below_static(w in arb_workload(), subset_mask in 0usize..256) {
        let (cfg, acc, config) = build(&w);
        let static_bound = CrpdAnalysis::analyze(&cfg, &acc, &config).unwrap();
        let subset = EcbSet::from_sets(
            (0..config.sets()).filter(|s| subset_mask & (1 << (s % 8)) != 0),
        );
        // Full damage vs. the default static bound.
        let full_damage = PreemptionDamage::EvictSets(EcbSet::full(&config));
        let empirical = empirical_crpd(&cfg, &acc, &config, &full_damage, 8);
        for b in 0..cfg.len() {
            let block = BlockId(b);
            prop_assert!(
                empirical.crpd(block) <= static_bound.crpd(block) + 1e-9,
                "block {}: empirical {} > static {}",
                block,
                empirical.crpd(block),
                static_bound.crpd(block)
            );
        }
        // Partial damage vs. the ECB-aware static bound.
        let partial_damage = PreemptionDamage::EvictSets(subset.clone());
        let empirical = empirical_crpd(&cfg, &acc, &config, &partial_damage, 8);
        for b in 0..cfg.len() {
            let block = BlockId(b);
            prop_assert!(
                empirical.crpd(block) <= static_bound.crpd_against(block, &subset) + 1e-9,
                "block {}: empirical {} > ecb-aware static {}",
                block,
                empirical.crpd(block),
                static_bound.crpd_against(block, &subset)
            );
        }
    }

    /// LRU never benefits from a preemption (extra misses are signed
    /// non-negative): baseline <= preempted.
    #[test]
    fn preemption_never_helps_lru(
        w in arb_workload(),
        path_pick in 0usize..8,
        point_pick in 0usize..8,
    ) {
        let (cfg, acc, config) = build(&w);
        let paths = enumerate_paths(&cfg, 8);
        let path = &paths[path_pick % paths.len()];
        let k = point_pick % path.len();
        let cost = preemption_cost_on_path(
            &cfg,
            &acc,
            &config,
            path,
            k,
            &PreemptionDamage::EvictSets(EcbSet::full(&config)),
        );
        prop_assert!(cost.preempted_misses >= cost.baseline_misses);
    }
}
