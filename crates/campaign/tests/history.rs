//! End-to-end regression-watch tests: real campaign runs append real
//! records to a real on-disk ledger, and `history`'s analysis detects a
//! synthetically degraded final row — the full `--ledger` →
//! `fnpr-campaign history --check` loop the CI gate relies on, minus the
//! process boundary.

use fnpr_campaign::history::{analyze, any_regression, render_html, render_table, HistoryOptions};
use fnpr_campaign::{ledger_record, run_campaign, CampaignSpec};

mod common;

fn smoke_spec() -> CampaignSpec {
    CampaignSpec::parse(
        r#"
name = "history-e2e"
seed = 2012
workload = "soundness"

[soundness]
trials = 6
trials_per_shard = 2
"#,
    )
    .expect("spec parses")
}

/// Runs the smoke campaign once and appends its ledger record unchanged.
fn append_run_raw(ledger: &std::path::Path, wall_seconds: f64) {
    fnpr_obs::set_enabled(true);
    let campaign = smoke_spec().validate().expect("spec validates");
    let outcome = run_campaign(&campaign, Some(2)).expect("campaign runs");
    let record = ledger_record(&campaign, &outcome, wall_seconds);
    fnpr_obs::append_record(ledger, &record).expect("ledger appends");
}

/// Runs the smoke campaign once and appends its ledger record with the
/// given (synthetic) wall time — the wall-clock knob is how the tests
/// fabricate fast and slow runs that are otherwise fully real. The
/// latency percentiles are pinned to constants: the process-global
/// timing histogram is shared with every other test in this binary, so
/// live values would make the trend verdicts racy.
fn append_run(ledger: &std::path::Path, wall_seconds: f64) {
    fnpr_obs::set_enabled(true);
    let campaign = smoke_spec().validate().expect("spec validates");
    let outcome = run_campaign(&campaign, Some(2)).expect("campaign runs");
    let mut record = ledger_record(&campaign, &outcome, wall_seconds);
    record.p50_us = 100.0;
    record.p90_us = 200.0;
    record.p99_us = 300.0;
    record.max_us = 400;
    fnpr_obs::append_record(ledger, &record).expect("ledger appends");
}

#[test]
fn healthy_ledger_passes_the_check() {
    let dir = common::scratch_dir("history_ok");
    let ledger = dir.join("LEDGER.jsonl");
    for wall in [0.100, 0.103, 0.098, 0.101] {
        append_run(&ledger, wall);
    }
    let view = fnpr_obs::read_ledger(&ledger).expect("ledger reads");
    assert_eq!(view.records.len(), 4);
    assert_eq!((view.invalid, view.stale), (0, 0));
    let trends = analyze(&view, &HistoryOptions::default());
    assert_eq!(trends.len(), 1, "one scenario");
    assert!(!any_regression(&trends));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degraded_final_run_fails_the_check_and_is_flagged_everywhere() {
    let dir = common::scratch_dir("history_bad");
    let ledger = dir.join("LEDGER.jsonl");
    // Three healthy runs, then one at a third of the throughput — the
    // synthetic-regression fixture.
    for wall in [0.100, 0.102, 0.099, 0.300] {
        append_run(&ledger, wall);
    }
    let view = fnpr_obs::read_ledger(&ledger).expect("ledger reads");
    let options = HistoryOptions::default();
    let trends = analyze(&view, &options);
    assert!(any_regression(&trends), "must flag the degraded final row");
    let regression = trends[0].regression.expect("regression verdict");
    let drop = regression.throughput_drop_pct.expect("throughput side");
    assert!((drop - 66.6).abs() < 2.0, "expected ~67% drop, got {drop}");
    // Both renderings surface it.
    assert!(render_table(&trends, &options).contains("REGRESSION"));
    assert!(render_html(&trends, &options).contains("REGRESSION"));
    // A generous allowance lets the same ledger pass — the --max-regression
    // escape hatch.
    let lenient = HistoryOptions {
        max_regression: 0.80,
        ..options
    };
    assert!(!any_regression(&analyze(&view, &lenient)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn records_survive_a_torn_tail_between_runs() {
    use std::io::Write;
    let dir = common::scratch_dir("history_torn");
    let ledger = dir.join("LEDGER.jsonl");
    append_run(&ledger, 0.1);
    // Simulate a crash mid-append: a partial, unterminated record.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&ledger)
            .unwrap();
        write!(f, "FNPRL1 0123456789abcdef 99 dead").unwrap();
    }
    // The next append heals the tail; the reader skips the torn line and
    // keeps both real records.
    append_run(&ledger, 0.1);
    let view = fnpr_obs::read_ledger(&ledger).expect("ledger reads");
    assert_eq!(view.records.len(), 2);
    assert_eq!(view.invalid, 1, "torn line counted, not fatal");
    assert!(!any_regression(&analyze(&view, &HistoryOptions::default())));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ledger_rows_carry_real_run_shape() {
    let dir = common::scratch_dir("history_shape");
    let ledger = dir.join("LEDGER.jsonl");
    append_run_raw(&ledger, 0.5);
    let view = fnpr_obs::read_ledger(&ledger).expect("ledger reads");
    let r = &view.records[0];
    assert_eq!(r.schema, fnpr_obs::LEDGER_SCHEMA_VERSION);
    assert_eq!(r.name, "history-e2e");
    assert_eq!(r.workload, "soundness");
    assert_eq!(r.grid_points, 3, "6 trials / 2 per shard");
    assert_eq!(r.threads, 2);
    assert_eq!(r.wall_seconds, 0.5);
    assert!((r.points_per_sec - 6.0).abs() < 1e-9);
    assert_eq!(r.scenario.len(), 16, "scenario hash is 16 hex chars");
    assert!(u64::from_str_radix(&r.scenario, 16).is_ok());
    assert!(r.p50_us <= r.p90_us && r.p90_us <= r.p99_us);
    assert!(r.p99_us <= r.max_us as f64);
    std::fs::remove_dir_all(&dir).ok();
}
