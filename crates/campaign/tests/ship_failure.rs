//! Job-ship failure: a worker that dies before reading its job (here,
//! `/bin/false`) makes the coordinator's `stdin.write_all` fail with a
//! broken pipe. That must not be fatal — the coordinator logs it, bumps
//! `campaign.backend.ship_failed`, reclaims the worker's shards and
//! finishes the campaign locally with clean-run bytes.
//!
//! This lives in its own test binary: it points `WORKER_EXE_ENV` at
//! `/bin/false` for the whole process, which would poison any process-
//! backend test sharing the binary.

use fnpr_campaign::{
    run_campaign_with_options, BackendChoice, CampaignSpec, ExecOptions, WORKER_EXE_ENV,
};

#[test]
fn failed_job_ship_falls_back_to_local_compute() {
    if !std::path::Path::new("/bin/false").exists() {
        eprintln!("skipping: /bin/false not available on this platform");
        return;
    }
    // A multi-megabyte campaign name makes the serialized job far larger
    // than any pipe buffer, so the ship cannot fit entirely in the kernel
    // buffer before the worker exits: write_all must observe the failure.
    let name = "x".repeat(2 * 1024 * 1024);
    let campaign = CampaignSpec::parse(&format!(
        "name = \"{name}\"\nseed = 9\nworkload = \"soundness\"\n[soundness]\ntrials = 4\n\
         simulate = false\n"
    ))
    .unwrap()
    .validate()
    .unwrap();

    let local = ExecOptions {
        threads: Some(1),
        backend: Some(BackendChoice::Local),
        ..ExecOptions::default()
    };
    let baseline = run_campaign_with_options(&campaign, &local, None).expect("local baseline");

    fnpr_obs::set_enabled(true);
    std::env::set_var(WORKER_EXE_ENV, "/bin/false");
    let shipped_failed = fnpr_obs::counter("campaign.backend.ship_failed").value();
    let options = ExecOptions {
        threads: Some(2),
        backend: Some(BackendChoice::Process),
        workers: Some(2),
        ..ExecOptions::default()
    };
    let outcome = run_campaign_with_options(&campaign, &options, None)
        .expect("ship failures must not fail the campaign");

    assert_eq!(
        (outcome.report.to_csv(), outcome.report.to_json()),
        (baseline.report.to_csv(), baseline.report.to_json()),
        "recovery from failed ships changed the aggregates"
    );
    assert!(
        fnpr_obs::counter("campaign.backend.ship_failed").value() > shipped_failed,
        "no ship failure recorded despite workers that never read their job"
    );
}
