//! End-to-end contract of the pluggable executor backends: the process
//! backend — real worker subprocesses, stdio frames, delta stores — must
//! be **observably indistinguishable** from the in-process thread pool.
//! Same CSV/JSON bytes at any worker count, same store counters once the
//! coordinator folds in the workers' delta shards, across workloads.

use fnpr_campaign::store::ResultStore;
use fnpr_campaign::{
    run_campaign_with_options, BackendChoice, Campaign, CampaignOutcome, CampaignSpec, ExecOptions,
    WORKER_EXE_ENV,
};

mod common;

/// Points the process backend at the real campaign binary. Cargo builds
/// it for integration tests and bakes the path in at compile time; every
/// test sets the same value, so concurrent setters cannot disagree.
fn use_real_worker_binary() {
    std::env::set_var(WORKER_EXE_ENV, env!("CARGO_BIN_EXE_fnpr-campaign"));
}

fn options(backend: BackendChoice, workers: usize) -> ExecOptions {
    ExecOptions {
        threads: Some(2),
        backend: Some(backend),
        workers: Some(workers),
        ..ExecOptions::default()
    }
}

fn run_with(
    campaign: &Campaign,
    opts: &ExecOptions,
    store: Option<&ResultStore>,
) -> CampaignOutcome {
    run_campaign_with_options(campaign, opts, store).expect("campaign runs")
}

fn renderings(outcome: &CampaignOutcome) -> (String, String) {
    (outcome.report.to_csv(), outcome.report.to_json())
}

fn acceptance_campaign() -> Campaign {
    CampaignSpec::parse(
        r#"
name = "backend-e2e"
seed = 23
workload = "acceptance"
[acceptance]
sets_per_point = 4
max_attempts_factor = 10
utilizations = { values = [0.5, 0.7] }
[acceptance.taskset]
n = 4
utilization = 0.0
period_range = [10.0, 1000.0]
deadline_factor = [1.0, 1.0]
"#,
    )
    .unwrap()
    .validate()
    .unwrap()
}

fn campaign_for(workload_toml: &str) -> Campaign {
    CampaignSpec::parse(workload_toml)
        .unwrap()
        .validate()
        .unwrap()
}

#[test]
fn process_backend_matches_local_byte_for_byte() {
    use_real_worker_binary();
    let campaign = acceptance_campaign();
    let local = run_with(&campaign, &options(BackendChoice::Local, 1), None);
    assert_eq!(local.backend, "local");
    let reference = renderings(&local);

    for workers in [1usize, 2, 4] {
        let outcome = run_with(&campaign, &options(BackendChoice::Process, workers), None);
        assert_eq!(outcome.backend, "process");
        assert_eq!(
            renderings(&outcome),
            reference,
            "process backend drifted at {workers} workers"
        );
    }
}

#[test]
fn every_workload_survives_the_process_boundary() {
    use_real_worker_binary();
    let specs = [
        "name = \"b-snd\"\nseed = 3\nworkload = \"soundness\"\n[soundness]\ntrials = 6\nsimulate = false\n",
        r#"
name = "b-multi"
seed = 5
workload = "multicore"
[multicore]
sets_per_point = 2
max_attempts_factor = 10
cores = [2]
tasks_per_core = 2
utilizations = { values = [0.4] }
sim_per_point = 1
simulate = false
[multicore.taskset]
n = 1
utilization = 0.0
period_range = [10.0, 100.0]
deadline_factor = [1.0, 1.0]
"#,
        r#"
name = "b-cfg"
seed = 11
workload = "cfg"
[cfg]
programs_per_point = 2
depths = [2]
loop_iterations = [3]
footprints = [4]
q_scales = { values = [0.5] }
sets = [16]
associativity = [1]
line_bytes = [16]
reload_cost = [10.0]
"#,
    ];
    for toml in specs {
        let campaign = campaign_for(toml);
        let reference = renderings(&run_with(
            &campaign,
            &options(BackendChoice::Local, 1),
            None,
        ));
        let process = run_with(&campaign, &options(BackendChoice::Process, 2), None);
        assert_eq!(
            renderings(&process),
            reference,
            "workload {:?} drifted across the process boundary",
            campaign.name
        );
    }
}

#[test]
fn worker_deltas_land_in_the_shared_store() {
    use_real_worker_binary();
    let campaign = acceptance_campaign();
    let reference = renderings(&run_with(
        &campaign,
        &options(BackendChoice::Local, 1),
        None,
    ));
    let path = common::scratch_dir("backend_e2e").join("delta.fnprstore");

    // Cold process run: every point computed in some worker, shipped back
    // as a delta shard, and merged into the canonical store.
    let cold_store = ResultStore::open(&path).unwrap();
    let cold = run_with(
        &campaign,
        &options(BackendChoice::Process, 2),
        Some(&cold_store),
    );
    assert_eq!(renderings(&cold), reference, "cold process run drifted");
    let stats = cold.store.unwrap();
    assert_eq!(stats.points_computed, 4, "2 policies x 2 utilizations");
    assert_eq!(stats.points_restored, 0);
    assert!(
        !path.join(".deltas").exists(),
        "worker delta shards must be cleaned up after the merge"
    );

    // Warm local run over the same store: the merged deltas serve it all.
    let warm_local_store = ResultStore::open(&path).unwrap();
    let warm_local = run_with(
        &campaign,
        &options(BackendChoice::Local, 1),
        Some(&warm_local_store),
    );
    assert_eq!(renderings(&warm_local), reference, "warm local run drifted");
    let stats = warm_local.store.unwrap();
    assert_eq!(stats.points_computed, 0, "worker deltas failed to merge");
    assert_eq!(stats.points_restored, 4);

    // Warm process run: workers restore from the canonical store, and the
    // coordinator's outcome reflects their folded counters.
    let warm_proc_store = ResultStore::open(&path).unwrap();
    let warm_proc = run_with(
        &campaign,
        &options(BackendChoice::Process, 2),
        Some(&warm_proc_store),
    );
    assert_eq!(
        renderings(&warm_proc),
        reference,
        "warm process run drifted"
    );
    let stats = warm_proc.store.unwrap();
    assert_eq!(stats.points_computed, 0, "warm workers recomputed points");
    assert_eq!(stats.points_restored, 4);
}

#[test]
fn spec_executor_table_selects_the_backend() {
    use_real_worker_binary();
    let campaign = campaign_for(
        "name = \"b-spec\"\nseed = 3\nworkload = \"soundness\"\n[soundness]\ntrials = 4\n\
         simulate = false\n[executor]\nbackend = \"process\"\nworkers = 2\n",
    );
    let reference = renderings(&run_with(
        &campaign,
        &options(BackendChoice::Local, 1),
        None,
    ));

    // No CLI override: the [executor] table drives the choice.
    let defaults = ExecOptions {
        threads: Some(2),
        ..Default::default()
    };
    let outcome = run_with(&campaign, &defaults, None);
    assert_eq!(outcome.backend, "process");
    assert_eq!(renderings(&outcome), reference);

    // A CLI override beats the spec.
    let overridden = run_with(&campaign, &options(BackendChoice::Local, 1), None);
    assert_eq!(overridden.backend, "local");
    assert_eq!(renderings(&overridden), reference);
}
