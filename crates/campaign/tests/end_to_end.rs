//! End-to-end: the checked-in smoke spec loads, validates, runs, and emits
//! coherent CSV and JSON aggregates — the same path `fnpr-campaign run
//! examples/campaign_smoke.toml` exercises.

use fnpr_campaign::{run_campaign, CampaignReport, CampaignSpec, WorkloadKind};
use std::path::Path;

fn smoke_spec_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/campaign_smoke.toml")
}

#[test]
fn smoke_spec_runs_and_exports() {
    let spec = CampaignSpec::load(&smoke_spec_path()).expect("smoke spec loads");
    // The checked-in spec names both output files; the binary honours them,
    // the test only renders in memory.
    assert_eq!(
        spec.output.as_ref().unwrap().csv.as_deref(),
        Some("campaign_smoke.csv")
    );
    assert_eq!(
        spec.output.as_ref().unwrap().json.as_deref(),
        Some("campaign_smoke.json")
    );

    let campaign = spec.validate().expect("smoke spec validates");
    assert_eq!(campaign.workload_kind(), WorkloadKind::Acceptance);
    let outcome = run_campaign(&campaign, Some(4)).expect("smoke campaign runs");
    let report = &outcome.report;

    // 2 policies x 4 utilizations.
    assert_eq!(report.acceptance.len(), 8);
    assert!(report.summary.instances > 0, "no task sets generated");
    assert_eq!(
        report.summary.dominance_violations, 0,
        "paper's ordering violated"
    );

    // CSV: header + one row per grid point, consistent column count.
    let csv = report.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 9);
    let columns = lines[0].split(',').count();
    assert_eq!(
        columns,
        4 + 4 + 2,
        "4 fixed + 4 methods + 2 pessimism columns"
    );
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), columns, "ragged CSV row: {line}");
    }

    // JSON: parses back into an identical report (true round-trip).
    let parsed: CampaignReport = serde_json::from_str(&report.to_json()).expect("JSON parses");
    assert_eq!(&parsed, report);

    // The scenario hash is stable for the checked-in spec + seed: it only
    // changes when someone edits the smoke scenario itself, which should be
    // a conscious, reviewed act.
    assert_eq!(report.scenario.len(), 16);
    let again = CampaignSpec::load(&smoke_spec_path())
        .unwrap()
        .validate()
        .unwrap();
    assert_eq!(report.scenario, format!("{:016x}", again.scenario_hash()));
}

#[test]
fn multicore_smoke_spec_runs_and_exports() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/multicore_smoke.toml");
    let spec = CampaignSpec::load(&path).expect("multicore smoke spec loads");
    let campaign = spec.validate().expect("multicore smoke spec validates");
    assert_eq!(campaign.workload_kind(), WorkloadKind::Multicore);
    let outcome = run_campaign(&campaign, Some(4)).expect("multicore smoke campaign runs");
    let report = &outcome.report;

    // 2 core counts x 2 policies x 4 allocations x 3 utilizations.
    assert_eq!(report.multicore.len(), 48);
    assert!(report.summary.instances > 0, "no task sets generated");
    assert_eq!(
        report.summary.dominance_violations, 0,
        "inflation dominance violated on the multicore grid"
    );
    assert_eq!(
        report.summary.sim_violations, 0,
        "m-core simulation exceeded an Algorithm 1 bound"
    );
    let checks: usize = report.multicore.iter().map(|p| p.sim_checks).sum();
    assert!(checks > 0, "no simulator soundness checks ran");

    // CSV: header + one row per grid point, consistent column count.
    let csv = report.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 49);
    let columns = lines[0].split(',').count();
    assert_eq!(
        columns,
        6 + 4 + 3,
        "6 fixed + 4 methods + 3 simulator columns"
    );
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), columns, "ragged CSV row: {line}");
    }
    assert!(lines[0].starts_with("m,policy,allocation,utilization"));

    // JSON round-trips.
    let parsed: CampaignReport = serde_json::from_str(&report.to_json()).expect("JSON parses");
    assert_eq!(&parsed, report);
}

#[test]
fn cfg_smoke_spec_runs_the_real_pipeline_end_to_end() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/cfg_smoke.toml");
    let spec = CampaignSpec::load(&path).expect("cfg smoke spec loads");
    let campaign = spec.validate().expect("cfg smoke spec validates");
    assert_eq!(campaign.workload_kind(), WorkloadKind::Cfg);
    let outcome = run_campaign(&campaign, Some(4)).expect("cfg smoke campaign runs");
    let report = &outcome.report;

    // 2 depths x 1 loop bound x 2 footprints x (2 set counts x 1 x 1 x 2
    // reload costs) x 2 q scales.
    assert_eq!(report.cfg.len(), 32);
    assert!(report.summary.instances > 0, "no programs analysed");
    assert_eq!(
        report.summary.dominance_violations, 0,
        "Algorithm 1 / Eq. 4 ordering violated on derived curves"
    );
    // The whole point of the workload: real program structure produces
    // real (nonzero) delay curves somewhere on the grid.
    assert!(
        report.cfg.iter().any(|p| p.curve_max_mean > 0.0),
        "no derived curve had CRPD — the pipeline is not being exercised"
    );
    // Pessimism data flowed into the summary.
    assert!(report.summary.pessimism_max >= report.summary.pessimism_mean);
    // The geometry/Q sweep separates schedulable from unschedulable
    // points: cheap reloads converge, expensive ones diverge.
    assert!(report.cfg.iter().any(|p| p.alg1_converged == p.programs));
    assert!(report.cfg.iter().any(|p| p.alg1_converged == 0));

    // (program, geometry) memoization is observable: the q axis must hit
    // the curve memo and the geometry axis the program memo.
    assert!(
        outcome.memo.hits > 0,
        "expected program/curve memo reuse, got {} hits / {} misses",
        outcome.memo.hits,
        outcome.memo.misses
    );

    // CSV: header + one row per grid point, consistent column count.
    let csv = report.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 33);
    assert!(lines[0].starts_with("shape,depth,loop_iterations,footprint"));
    let columns = lines[0].split(',').count();
    assert_eq!(columns, 19);
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), columns, "ragged CSV row: {line}");
    }

    // JSON round-trips.
    let parsed: CampaignReport = serde_json::from_str(&report.to_json()).expect("JSON parses");
    assert_eq!(&parsed, report);
}

/// The checked-in `--trace-out` sample (produced by `fnpr-campaign run
/// examples/campaign_smoke.toml --trace-out …`) validates as Chrome
/// trace-event JSON: a `traceEvents` array of `ph: "X"` complete events
/// with the fields Perfetto / `chrome://tracing` require.
#[test]
fn sample_trace_artifact_is_valid_chrome_trace_json() {
    use serde::Value;
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/trace_sample.json");
    let text = std::fs::read_to_string(&path).expect("sample trace artifact is checked in");
    let doc = serde_json::parse_value(&text).expect("sample trace parses as JSON");
    let Value::Map(entries) = doc else {
        panic!("trace document must be a JSON object");
    };
    let events = entries
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents key");
    let Value::Seq(events) = events else {
        panic!("traceEvents must be an array");
    };
    assert!(!events.is_empty(), "sample trace has no events");
    let mut saw_run_span = false;
    for event in events {
        let Value::Map(fields) = event else {
            panic!("each trace event must be an object");
        };
        let field = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        match field("ph") {
            Some(Value::Str(ph)) => assert_eq!(ph, "X", "shim emits complete events only"),
            other => panic!("bad ph field: {other:?}"),
        }
        for required in ["ts", "dur", "pid", "tid"] {
            assert!(
                matches!(field(required), Some(Value::Int(n)) if *n >= 0),
                "event missing integer {required}"
            );
        }
        if matches!(field("name"), Some(Value::Str(name)) if name == "campaign.run") {
            saw_run_span = true;
        }
    }
    assert!(saw_run_span, "sample trace lacks the campaign.run span");
}

#[test]
fn memoization_pays_on_the_smoke_grid() {
    let campaign = CampaignSpec::load(&smoke_spec_path())
        .unwrap()
        .validate()
        .unwrap();
    let outcome = run_campaign(&campaign, Some(2)).unwrap();
    // Both policies analyse the same base task sets; the second policy's
    // grid half must be answered from the memo.
    assert!(
        outcome.memo.hits >= outcome.memo.misses / 2,
        "expected substantial task-set reuse, got {} hits / {} misses",
        outcome.memo.hits,
        outcome.memo.misses
    );
}
