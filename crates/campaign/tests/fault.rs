//! Fault-tolerance contract, end to end: campaigns run under the seeded
//! fault harness — crashing, stalling, frame-mangling and delta-tearing
//! workers — must produce **byte-identical** aggregates to a clean run,
//! with recovery visible only in the `campaign.supervise.*` /
//! `campaign.backend.*` counters.
//!
//! Every test arms injection with `FNPR_FAULT=1` (use-the-spec-table
//! mode) and controls the schedule through each spec's own `[fault]`
//! table; specs without a table stay clean, so concurrently running
//! tests cannot leak faults into each other. The coordinator kill switch
//! (`kill_after`) is exercised only by the CI resume drill — aborting
//! the test process is not an option here.

use std::time::{Duration, Instant};

use fnpr_campaign::store::ResultStore;
use fnpr_campaign::{
    run_campaign_with_options, BackendChoice, Campaign, CampaignSpec, ExecOptions, FaultPlan,
    FaultSpec, FAULT_ENV, WORKER_EXE_ENV,
};
use proptest::prelude::*;

mod common;

/// Arms spec-table fault injection and points the process backend at the
/// real campaign binary. Every test sets the same values, so concurrent
/// setters cannot disagree.
fn arm_faults() {
    std::env::set_var(FAULT_ENV, "1");
    std::env::set_var(WORKER_EXE_ENV, env!("CARGO_BIN_EXE_fnpr-campaign"));
}

/// A small acceptance campaign (2 policies x 2 utilizations = 4 shards),
/// optionally carrying a `[fault]` table. The table is excluded from the
/// scenario hash, so the faulted and clean variants describe the same
/// computation.
fn campaign(seed: u64, fault_table: &str) -> Campaign {
    CampaignSpec::parse(&format!(
        r#"
name = "fault-e2e"
seed = {seed}
workload = "acceptance"

[acceptance]
sets_per_point = 3
max_attempts_factor = 10
utilizations = {{ values = [0.5, 0.7] }}

[acceptance.taskset]
n = 4
utilization = 0.0
period_range = [10.0, 1000.0]
deadline_factor = [1.0, 1.0]
{fault_table}
"#
    ))
    .expect("template parses")
    .validate()
    .expect("template validates")
}

fn render(campaign: &Campaign, options: &ExecOptions) -> (String, String) {
    let outcome = run_campaign_with_options(campaign, options, None).expect("campaign runs");
    (outcome.report.to_csv(), outcome.report.to_json())
}

fn process_options(workers: usize) -> ExecOptions {
    ExecOptions {
        threads: Some(2),
        backend: Some(BackendChoice::Process),
        workers: Some(workers),
        ..ExecOptions::default()
    }
}

fn local_options(threads: usize) -> ExecOptions {
    ExecOptions {
        threads: Some(threads),
        backend: Some(BackendChoice::Local),
        ..ExecOptions::default()
    }
}

#[test]
fn stalled_workers_are_reaped_by_the_watchdog() {
    arm_faults();
    fnpr_obs::set_enabled(true);
    let clean = render(&campaign(41, ""), &local_options(1));

    // Every worker stalls for 10s in front of every shard; the watchdog
    // must reap them at ~300ms and the run complete via redispatch plus
    // the parallel local fallback — long before any stall expires.
    let faulted = campaign(41, "[fault]\nstall = 1.0\nstall_ms = 10000\n");
    let options = ExecOptions {
        timeout_secs: Some(0.3),
        max_retries: Some(1),
        ..process_options(2)
    };
    let timeouts = fnpr_obs::counter("campaign.supervise.timeouts").value();
    let start = Instant::now();
    let outcome = render(&faulted, &options);
    let elapsed = start.elapsed();

    assert_eq!(
        outcome, clean,
        "recovery from stalls changed the aggregates"
    );
    assert!(
        fnpr_obs::counter("campaign.supervise.timeouts").value() > timeouts,
        "watchdog reaped no one despite certain stalls"
    );
    assert!(
        elapsed < Duration::from_secs(8),
        "run took {elapsed:?}: the watchdog did not unblock it (stalls are 10s)"
    );
}

#[test]
fn crashed_workers_are_redispatched_then_recovered_locally() {
    arm_faults();
    fnpr_obs::set_enabled(true);
    let clean = render(&campaign(42, ""), &local_options(1));

    // Every worker — including every replacement — crashes before its
    // first shard, so the retry wave fires and the parallel fallback
    // finishes the job.
    let faulted = campaign(42, "[fault]\ncrash = 1.0\n");
    let retries = fnpr_obs::counter("campaign.supervise.retries").value();
    let reclaimed = fnpr_obs::counter("campaign.supervise.reclaimed").value();
    assert_eq!(render(&faulted, &process_options(2)), clean);
    assert!(
        fnpr_obs::counter("campaign.supervise.retries").value() > retries,
        "certain crashes triggered no retry wave"
    );
    assert!(
        fnpr_obs::counter("campaign.supervise.reclaimed").value() >= reclaimed + 4,
        "all four shards should have been reclaimed at least once"
    );
}

#[test]
fn mangled_frames_are_rejected_and_recomputed() {
    arm_faults();
    fnpr_obs::set_enabled(true);
    let clean = render(&campaign(43, ""), &local_options(1));

    let table = "[fault]\nseed = 5\ncorrupt = 0.7\ntruncate = 0.5\n";
    let faulted = campaign(43, table);
    // The schedule is pure, so we can prove it is non-trivial before
    // running: at least one of the first wave's shards gets mangled.
    let plan = FaultPlan::from_spec(&FaultSpec {
        seed: Some(5),
        corrupt: Some(0.7),
        truncate: Some(0.5),
        ..FaultSpec::default()
    })
    .unwrap();
    assert!(
        (0..2u64).any(|w| (0..4u64).any(|s| plan.corrupts_at(w, s) || plan.truncates_at(w, s))),
        "chosen fault seed schedules no frame mangling; pick another"
    );

    let fallback = fnpr_obs::counter("campaign.backend.shards.fallback").value();
    assert_eq!(render(&faulted, &process_options(2)), clean);
    assert!(
        fnpr_obs::counter("campaign.backend.shards.fallback").value() > fallback,
        "mangled frames should force at least one local recompute"
    );
}

#[test]
fn torn_delta_tails_heal_in_the_shared_store() {
    arm_faults();
    let clean = render(&campaign(44, ""), &local_options(1));

    // Every worker tears the tail off its delta store after its last
    // shard. The shipped frames are intact (the report must not notice),
    // and the merge + torn-tail healing absorb the damage: a warm run
    // over the same store still renders the clean bytes.
    let faulted = campaign(44, "[fault]\ntorn_delta = 1.0\n");
    let path = common::scratch_dir("fault_torn").join("torn.fnprstore");

    let cold_store = ResultStore::open(&path).unwrap();
    let cold = run_campaign_with_options(&faulted, &process_options(2), Some(&cold_store))
        .expect("cold faulted run");
    assert_eq!(
        (cold.report.to_csv(), cold.report.to_json()),
        clean,
        "torn delta tails changed the cold aggregates"
    );
    drop(cold_store);

    let warm_store = ResultStore::open(&path).unwrap();
    let warm = run_campaign_with_options(&faulted, &local_options(2), Some(&warm_store))
        .expect("warm run over the healed store");
    assert_eq!(
        (warm.report.to_csv(), warm.report.to_json()),
        clean,
        "warm run over a torn store drifted"
    );
}

/// One fault class per proptest case, spanning every injection site.
fn arb_fault_table() -> impl Strategy<Value = String> {
    (0u64..64, 0usize..5).prop_map(|(fault_seed, class)| match class {
        0 => format!("[fault]\nseed = {fault_seed}\ncrash = 0.6\n"),
        1 => format!("[fault]\nseed = {fault_seed}\nstall = 0.7\nstall_ms = 40\n"),
        2 => format!("[fault]\nseed = {fault_seed}\ncorrupt = 0.7\ntruncate = 0.5\n"),
        3 => format!("[fault]\nseed = {fault_seed}\ntorn_delta = 1.0\n"),
        _ => format!(
            "[fault]\nseed = {fault_seed}\ncrash = 0.3\nstall = 0.3\nstall_ms = 30\n\
             corrupt = 0.3\ntruncate = 0.3\ntorn_delta = 0.5\n"
        ),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The robustness headline: under any seeded fault schedule, at any
    /// placement — local threads or real worker subprocesses, with or
    /// without a delta store in the line of fire — the aggregates are
    /// byte-identical to a clean single-threaded run.
    #[test]
    fn faulted_campaigns_never_change_aggregates(
        seed in 0u64..1000,
        fault_table in arb_fault_table(),
    ) {
        arm_faults();
        let clean = render(&campaign(seed, ""), &local_options(1));
        let faulted = campaign(seed, &fault_table);

        for threads in [1usize, 8] {
            prop_assert_eq!(
                &render(&faulted, &local_options(threads)),
                &clean,
                "local@{} drifted under {:?}", threads, fault_table
            );
        }
        // process@2 runs against a store so torn deltas hit real files.
        let path = common::scratch_dir("fault_prop").join("prop.fnprstore");
        let store = ResultStore::open(&path).unwrap();
        let outcome = run_campaign_with_options(&faulted, &process_options(2), Some(&store))
            .expect("faulted process run");
        prop_assert_eq!(
            &(outcome.report.to_csv(), outcome.report.to_json()),
            &clean,
            "process@2 (with store) drifted under {:?}", fault_table
        );
        drop(store);
        prop_assert_eq!(
            &render(&faulted, &process_options(4)),
            &clean,
            "process@4 drifted under {:?}", fault_table
        );
    }
}
