//! Shared integration-test support (not a test target itself: cargo only
//! builds `tests/*.rs` files as test crates, not subdirectories).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A fresh, unique scratch directory under the system temp dir — one
/// definition of the pid+counter uniqueness scheme for every test crate
/// that needs an on-disk store.
pub fn scratch_dir(label: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fnpr_{label}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
