//! Campaign-level contract of the persistent result store: warm re-runs
//! and grid extensions restore previously measured points with
//! **byte-identical** aggregates, corrupted or version-mismatched store
//! content degrades to a clean recompute (and the store heals), and the
//! `(curve, Q)` bounds table is genuinely shared across campaigns.

use std::path::PathBuf;

use fnpr_campaign::store::ResultStore;
use fnpr_campaign::{run_campaign_with_store, Campaign, CampaignOutcome, CampaignSpec};

mod common;

fn temp_store_path(name: &str) -> PathBuf {
    common::scratch_dir("store_e2e").join(name)
}

fn acceptance_campaign(utilizations: &str) -> Campaign {
    CampaignSpec::parse(&format!(
        r#"
name = "store-e2e"
seed = 41
workload = "acceptance"
[acceptance]
sets_per_point = 4
max_attempts_factor = 10
utilizations = {{ values = [{utilizations}] }}
[acceptance.taskset]
n = 4
utilization = 0.0
period_range = [10.0, 1000.0]
deadline_factor = [1.0, 1.0]
"#
    ))
    .unwrap()
    .validate()
    .unwrap()
}

fn soundness_campaign(trials: usize, simulate: bool) -> Campaign {
    CampaignSpec::parse(&format!(
        "name = \"store-snd\"\nseed = 17\nworkload = \"soundness\"\n\
         [soundness]\ntrials = {trials}\nsimulate = {simulate}\n"
    ))
    .unwrap()
    .validate()
    .unwrap()
}

fn run_with(campaign: &Campaign, store: Option<&ResultStore>, threads: usize) -> CampaignOutcome {
    run_campaign_with_store(campaign, Some(threads), store).expect("campaign runs")
}

fn renderings(outcome: &CampaignOutcome) -> (String, String) {
    (outcome.report.to_csv(), outcome.report.to_json())
}

#[test]
fn warm_rerun_computes_nothing_and_is_byte_identical() {
    let campaign = acceptance_campaign("0.5, 0.7");
    let reference = renderings(&run_with(&campaign, None, 2));

    let path = temp_store_path("warm.log");
    let cold_store = ResultStore::open(&path).unwrap();
    let cold = run_with(&campaign, Some(&cold_store), 2);
    assert_eq!(renderings(&cold), reference, "store changed cold results");
    let stats = cold.store.unwrap();
    assert_eq!(stats.points_computed, 4, "2 policies x 2 utilizations");
    assert_eq!(stats.points_restored, 0);

    // Fresh store handle = fresh counters; the file carries the results.
    let warm_store = ResultStore::open(&path).unwrap();
    let warm = run_with(&campaign, Some(&warm_store), 4);
    assert_eq!(renderings(&warm), reference, "warm aggregates drifted");
    let stats = warm.store.unwrap();
    assert_eq!(stats.points_computed, 0, "warm run recomputed points");
    assert_eq!(stats.points_restored, 4);
}

#[test]
fn grid_extension_computes_only_the_new_points() {
    let base = acceptance_campaign("0.5");
    let extended = acceptance_campaign("0.5, 0.7, 0.8");
    let reference = renderings(&run_with(&extended, None, 2));

    let path = temp_store_path("extend.log");
    run_with(&base, Some(&ResultStore::open(&path).unwrap()), 2);

    let store = ResultStore::open(&path).unwrap();
    let outcome = run_with(&extended, Some(&store), 2);
    assert_eq!(renderings(&outcome), reference, "extended warm run drifted");
    let stats = outcome.store.unwrap();
    assert_eq!(stats.points_restored, 2, "the base (policy x 0.5) points");
    assert_eq!(
        stats.points_computed, 4,
        "two new utilizations x 2 policies"
    );
}

#[test]
fn soundness_trial_extension_restores_complete_shards() {
    let base = soundness_campaign(6, false);
    let extended = soundness_campaign(10, false);
    let reference = renderings(&run_with(&extended, None, 2));

    let path = temp_store_path("trials.log");
    run_with(&base, Some(&ResultStore::open(&path).unwrap()), 2);
    let store = ResultStore::open(&path).unwrap();
    let outcome = run_with(&extended, Some(&store), 2);
    assert_eq!(renderings(&outcome), reference);
    let stats = outcome.store.unwrap();
    // trials_per_shard defaults to 1: all 6 base shards restore.
    assert_eq!(stats.points_restored, 6);
    assert_eq!(stats.points_computed, 4);
}

#[test]
fn bounds_table_is_shared_across_campaigns() {
    // Same trials, different `simulate`: every shard key changes (the sim
    // rows differ) but the (curve, Q) scenarios are identical — the second
    // campaign must restore every bound from the shared table.
    let path = temp_store_path("bounds.log");
    let first = run_with(
        &soundness_campaign(8, false),
        Some(&ResultStore::open(&path).unwrap()),
        2,
    );
    let stats = first.store.unwrap();
    assert_eq!(stats.bounds_computed, 8);
    assert_eq!(stats.bounds_restored, 0);

    let second = run_with(
        &soundness_campaign(8, true),
        Some(&ResultStore::open(&path).unwrap()),
        2,
    );
    let stats = second.store.unwrap();
    assert_eq!(stats.points_restored, 0, "simulate changes every shard");
    assert_eq!(stats.bounds_computed, 0, "bounds were in the shared table");
    assert_eq!(stats.bounds_restored, 8);
    // And the analytical columns agree between the two runs.
    let rows = |o: &CampaignOutcome| {
        o.report
            .soundness
            .iter()
            .flat_map(|s| s.rows.iter())
            .map(|r| (r.trial, r.naive, r.exact, r.algorithm1, r.eq4))
            .collect::<Vec<_>>()
    };
    assert_eq!(rows(&first), rows(&second));
}

#[test]
fn corrupted_store_content_recomputes_cleanly_and_heals() {
    let campaign = acceptance_campaign("0.5, 0.7");
    let reference = renderings(&run_with(&campaign, None, 2));
    let path = temp_store_path("corrupt.log");
    run_with(&campaign, Some(&ResultStore::open(&path).unwrap()), 2);

    // Maul the acceptance table's shard file: truncate mid-line, splice
    // garbage bytes, and flip one record to an unknown format version.
    let table = path.join(fnpr_campaign::store::StoreTable::AcceptancePoints.file_name());
    let mut bytes = std::fs::read(&table).unwrap();
    bytes.truncate(bytes.len() - 11);
    let mut mauled = b"\x00\xff garbage that is not a record\n".to_vec();
    mauled.extend_from_slice(&bytes);
    let mut text = String::from_utf8_lossy(&mauled).into_owned();
    text = text.replacen("FNPR2", "FNPR0", 1);
    std::fs::write(&table, text).unwrap();

    // The mauled store never crashes the run and never distorts results;
    // whatever was lost recomputes and is appended back.
    let store = ResultStore::open(&path).unwrap();
    let outcome = run_with(&campaign, Some(&store), 2);
    assert_eq!(
        renderings(&outcome),
        reference,
        "corruption leaked into results"
    );
    let stats = outcome.store.unwrap();
    assert!(stats.points_computed > 0, "mauled entries should recompute");
    assert!(stats.invalid_entries > 0, "corruption went undetected");

    // Fully healed: the next run restores everything.
    let healed = run_with(&campaign, Some(&ResultStore::open(&path).unwrap()), 2);
    assert_eq!(renderings(&healed), reference);
    assert_eq!(healed.store.unwrap().points_computed, 0);
}

#[test]
fn wrong_analysis_fingerprint_recomputes_never_serves() {
    let campaign = acceptance_campaign("0.6");
    let reference = renderings(&run_with(&campaign, None, 2));
    let path = temp_store_path("fingerprint.log");

    // Populate the store under a *different* analysis fingerprint — the
    // honest emulation of entries written by an older analysis version
    // (hand-editing the fp field in place would fail the record checksum,
    // which covers every header field, and read as corruption instead).
    let old_analysis = ResultStore::open_with_fingerprint(&path, 0xdead_beef).unwrap();
    run_with(&campaign, Some(&old_analysis), 2);

    let store = ResultStore::open(&path).unwrap();
    let outcome = run_with(&campaign, Some(&store), 2);
    assert_eq!(renderings(&outcome), reference);
    let stats = outcome.store.unwrap();
    assert_eq!(stats.points_restored, 0, "served a stale-analysis entry");
    assert_eq!(stats.points_computed, 2);
    assert!(stats.stale_entries > 0);

    // The recompute re-wrote current-fingerprint entries.
    let warm = run_with(&campaign, Some(&ResultStore::open(&path).unwrap()), 2);
    assert_eq!(warm.store.unwrap().points_computed, 0);
    assert_eq!(renderings(&warm), reference);
}

#[test]
fn spec_store_path_is_honoured_by_run_campaign() {
    // The [store] table alone (no explicit ResultStore) persists results.
    let path = temp_store_path("spec.log");
    let spec = format!(
        "seed = 9\nworkload = \"soundness\"\n[soundness]\ntrials = 3\nsimulate = false\n\
         [store]\npath = {path:?}\n",
        path = path.display().to_string(),
    );
    let campaign = CampaignSpec::parse(&spec).unwrap().validate().unwrap();
    let cold = fnpr_campaign::run_campaign(&campaign, Some(2)).unwrap();
    assert_eq!(cold.store.unwrap().points_computed, 3);
    let warm = fnpr_campaign::run_campaign(&campaign, Some(2)).unwrap();
    assert_eq!(warm.store.unwrap().points_computed, 0);
    assert_eq!(warm.report.to_csv(), cold.report.to_csv());
    assert_eq!(warm.report.to_json(), cold.report.to_json());
}
