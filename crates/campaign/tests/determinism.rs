//! The campaign engine's headline guarantee, property-tested: the same
//! validated spec produces **bit-identical** CSV and JSON aggregates at 1,
//! 2 and 8 worker threads, for randomly drawn specs of both workloads —
//! and, with a persistent result store attached, a warm re-run of an
//! *extended* grid computes only the new points while its aggregates stay
//! byte-identical to a cold full run.

use fnpr_campaign::store::ResultStore;
use fnpr_campaign::{run_campaign, run_campaign_with_store, CampaignSpec, WorkloadKind};
use proptest::prelude::*;

mod common;

fn render(spec: &CampaignSpec, threads: usize) -> (String, String) {
    let campaign = spec.validate().expect("generated specs are valid");
    let outcome = run_campaign(&campaign, Some(threads)).expect("campaign runs");
    (outcome.report.to_csv(), outcome.report.to_json())
}

fn assert_thread_invariant(spec: &CampaignSpec) {
    let baseline = render(spec, 1);
    for threads in [2, 8] {
        let other = render(spec, threads);
        assert_eq!(
            baseline, other,
            "aggregates changed between 1 and {threads} threads"
        );
    }
}

fn arb_acceptance_spec() -> impl Strategy<Value = CampaignSpec> {
    (
        0u64..1000,                                 // seed
        2usize..6,                                  // sets per point
        prop::collection::vec(0.35f64..0.85, 1..3), // utilization grid
        3usize..6,                                  // tasks per set
    )
        .prop_map(|(seed, sets, utilizations, n)| {
            CampaignSpec::parse(&format!(
                r#"
name = "prop-acceptance"
seed = {seed}
workload = "acceptance"

[acceptance]
sets_per_point = {sets}
max_attempts_factor = 10
utilizations = {{ values = [{us}] }}

[acceptance.taskset]
n = {n}
utilization = 0.0
period_range = [10.0, 1000.0]
deadline_factor = [1.0, 1.0]
"#,
                us = utilizations
                    .iter()
                    .map(|u| format!("{u:.4}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            ))
            .expect("template parses")
        })
}

fn arb_soundness_spec() -> impl Strategy<Value = CampaignSpec> {
    (0u64..1000, 3usize..12, 1usize..5, 0u64..2).prop_map(|(seed, trials, per_shard, simulate)| {
        CampaignSpec::parse(&format!(
            r#"
name = "prop-soundness"
seed = {seed}
workload = "soundness"

[soundness]
trials = {trials}
trials_per_shard = {per_shard}
simulate = {}
"#,
            simulate == 1
        ))
        .expect("template parses")
    })
}

fn arb_multicore_spec() -> impl Strategy<Value = CampaignSpec> {
    (0u64..1000, 2usize..5, 0.3f64..0.6, 0u64..2).prop_map(|(seed, sets, u, simulate)| {
        CampaignSpec::parse(&format!(
            r#"
name = "prop-multicore"
seed = {seed}
workload = "multicore"

[multicore]
sets_per_point = {sets}
max_attempts_factor = 10
cores = [2]
tasks_per_core = 2
utilizations = {{ values = [{u:.4}] }}
sim_per_point = 1
simulate = {}

[multicore.taskset]
n = 1
utilization = 0.0
period_range = [10.0, 100.0]
deadline_factor = [1.0, 1.0]
"#,
            simulate == 1
        ))
        .expect("template parses")
    })
}

fn arb_cfg_spec() -> impl Strategy<Value = CampaignSpec> {
    (0u64..1000, 2usize..5, 1usize..4, 0u64..17, 0.2f64..0.9).prop_map(
        |(seed, programs, depth, footprint, q)| {
            CampaignSpec::parse(&format!(
                r#"
name = "prop-cfg"
seed = {seed}
workload = "cfg"

[cfg]
programs_per_point = {programs}
depths = [{depth}]
loop_iterations = [3]
footprints = [{footprint}]
q_scales = {{ values = [{q:.4}] }}
sets = [16, 64]
associativity = [1]
line_bytes = [16]
reload_cost = [10.0]
"#
            ))
            .expect("template parses")
        },
    )
}

/// Builds the acceptance spec used by the store-extension property.
fn acceptance_spec_for(seed: u64, sets: usize, utilizations: &[f64]) -> CampaignSpec {
    CampaignSpec::parse(&format!(
        r#"
name = "prop-store"
seed = {seed}
workload = "acceptance"

[acceptance]
sets_per_point = {sets}
max_attempts_factor = 10
utilizations = {{ values = [{us}] }}

[acceptance.taskset]
n = 4
utilization = 0.0
period_range = [10.0, 1000.0]
deadline_factor = [1.0, 1.0]
"#,
        us = utilizations
            .iter()
            .map(|u| format!("{u:.4}"))
            .collect::<Vec<_>>()
            .join(", "),
    ))
    .expect("template parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Acceptance campaigns: identical aggregates at 1, 2 and 8 threads.
    #[test]
    fn acceptance_aggregates_are_thread_invariant(spec in arb_acceptance_spec()) {
        assert_thread_invariant(&spec);
    }

    /// Soundness campaigns: identical aggregates at 1, 2 and 8 threads,
    /// across shard sizes and with/without the simulator.
    #[test]
    fn soundness_aggregates_are_thread_invariant(spec in arb_soundness_spec()) {
        assert_thread_invariant(&spec);
    }

    /// Multicore campaigns: identical aggregates at 1, 2 and 8 threads —
    /// the same contract the original workloads established, covering the
    /// partitioning, global tests and m-core simulator streams.
    #[test]
    fn multicore_aggregates_are_thread_invariant(spec in arb_multicore_spec()) {
        assert_thread_invariant(&spec);
    }

    /// CFG campaigns: identical aggregates at 1, 2 and 8 threads — the
    /// program-generation, pipeline and memo layers (programs shared across
    /// geometry points, curves shared across Q points) must not leak
    /// scheduling into results.
    #[test]
    fn cfg_aggregates_are_thread_invariant(spec in arb_cfg_spec()) {
        assert_thread_invariant(&spec);
    }

    /// The store's headline guarantee (ISSUE 5 acceptance criterion): after
    /// a base run populates the store, a warm run of an **extended** grid —
    /// at 1, 2 and 8 threads — computes only the new points, restores every
    /// base point, and produces CSV/JSON byte-identical to a cold full run
    /// without any store. Seed derivation is unchanged by the store (same
    /// contract the thread-invariance properties pin down).
    #[test]
    fn warm_extended_grid_is_byte_identical_to_cold(
        seed in 0u64..1000,
        sets in 2usize..5,
        base_us in prop::collection::vec(0.35f64..0.55, 1..3),
        new_u in 0.56f64..0.80,
    ) {
        let dir = common::scratch_dir("store_prop");
        let path = dir.join("store.log");

        let mut extended_us = base_us.clone();
        extended_us.push(new_u); // disjoint ranges: genuinely new points
        let base = acceptance_spec_for(seed, sets, &base_us).validate().unwrap();
        let extended = acceptance_spec_for(seed, sets, &extended_us).validate().unwrap();

        // Cold reference: the full extended grid, no store.
        let reference = render(&acceptance_spec_for(seed, sets, &extended_us), 1);

        // Populate with the base grid.
        let store = ResultStore::open(&path).unwrap();
        run_campaign_with_store(&base, Some(2), Some(&store)).unwrap();

        let base_points = 2 * base_us.len() as u64; // 2 policies per utilization
        for (round, threads) in [1usize, 2, 8].into_iter().enumerate() {
            // Fresh handle per run: per-run counters over the same file.
            let store = ResultStore::open(&path).unwrap();
            let outcome =
                run_campaign_with_store(&extended, Some(threads), Some(&store)).unwrap();
            prop_assert_eq!(
                &(outcome.report.to_csv(), outcome.report.to_json()),
                &reference,
                "warm extended aggregates drifted at {} threads",
                threads
            );
            let stats = outcome.store.unwrap();
            if round == 0 {
                // First warm run: exactly the new utilization's points.
                prop_assert_eq!(stats.points_restored, base_points);
                prop_assert_eq!(stats.points_computed, 2);
            } else {
                prop_assert_eq!(stats.points_restored, base_points + 2);
                prop_assert_eq!(stats.points_computed, 0);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The memo layer must not leak scheduling into results: running the same
/// campaign twice in one process (warm memo) matches a cold run.
#[test]
fn warm_memo_matches_cold_run() {
    let spec = CampaignSpec::parse(
        r#"
seed = 99
workload = "acceptance"
[acceptance]
sets_per_point = 4
max_attempts_factor = 10
utilizations = { values = [0.5, 0.7] }
"#,
    )
    .unwrap();
    let cold = render(&spec, 4);
    let warm = render(&spec, 4);
    assert_eq!(cold, warm);
    assert_eq!(
        spec.validate().unwrap().workload_kind(),
        WorkloadKind::Acceptance
    );
}
