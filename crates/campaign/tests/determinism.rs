//! The campaign engine's headline guarantee, property-tested: the same
//! validated spec produces **bit-identical** CSV and JSON aggregates at 1,
//! 2 and 8 worker threads, for randomly drawn specs of both workloads —
//! and, with a persistent result store attached, a warm re-run of an
//! *extended* grid computes only the new points while its aggregates stay
//! byte-identical to a cold full run.

use std::collections::BTreeMap;

use fnpr_campaign::store::{ResultStore, StoreTable};
use fnpr_campaign::{
    run_campaign, run_campaign_with_options, run_campaign_with_store, BackendChoice, CampaignSpec,
    ExecOptions, WorkloadKind, WORKER_EXE_ENV,
};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

mod common;

fn render(spec: &CampaignSpec, threads: usize) -> (String, String) {
    let campaign = spec.validate().expect("generated specs are valid");
    let outcome = run_campaign(&campaign, Some(threads)).expect("campaign runs");
    (outcome.report.to_csv(), outcome.report.to_json())
}

fn assert_thread_invariant(spec: &CampaignSpec) {
    let baseline = render(spec, 1);
    for threads in [2, 8] {
        let other = render(spec, threads);
        assert_eq!(
            baseline, other,
            "aggregates changed between 1 and {threads} threads"
        );
    }
}

/// Runs the spec through real worker subprocesses (the process backend).
fn render_process(spec: &CampaignSpec, workers: usize) -> (String, String) {
    std::env::set_var(WORKER_EXE_ENV, env!("CARGO_BIN_EXE_fnpr-campaign"));
    let campaign = spec.validate().expect("generated specs are valid");
    let options = ExecOptions {
        threads: Some(2),
        backend: Some(BackendChoice::Process),
        workers: Some(workers),
        ..ExecOptions::default()
    };
    let outcome = run_campaign_with_options(&campaign, &options, None).expect("campaign runs");
    assert_eq!(outcome.backend, "process");
    (outcome.report.to_csv(), outcome.report.to_json())
}

fn arb_acceptance_spec() -> impl Strategy<Value = CampaignSpec> {
    (
        0u64..1000,                                 // seed
        2usize..6,                                  // sets per point
        prop::collection::vec(0.35f64..0.85, 1..3), // utilization grid
        3usize..6,                                  // tasks per set
    )
        .prop_map(|(seed, sets, utilizations, n)| {
            CampaignSpec::parse(&format!(
                r#"
name = "prop-acceptance"
seed = {seed}
workload = "acceptance"

[acceptance]
sets_per_point = {sets}
max_attempts_factor = 10
utilizations = {{ values = [{us}] }}

[acceptance.taskset]
n = {n}
utilization = 0.0
period_range = [10.0, 1000.0]
deadline_factor = [1.0, 1.0]
"#,
                us = utilizations
                    .iter()
                    .map(|u| format!("{u:.4}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            ))
            .expect("template parses")
        })
}

fn arb_soundness_spec() -> impl Strategy<Value = CampaignSpec> {
    (0u64..1000, 3usize..12, 1usize..5, 0u64..2).prop_map(|(seed, trials, per_shard, simulate)| {
        CampaignSpec::parse(&format!(
            r#"
name = "prop-soundness"
seed = {seed}
workload = "soundness"

[soundness]
trials = {trials}
trials_per_shard = {per_shard}
simulate = {}
"#,
            simulate == 1
        ))
        .expect("template parses")
    })
}

fn arb_multicore_spec() -> impl Strategy<Value = CampaignSpec> {
    (0u64..1000, 2usize..5, 0.3f64..0.6, 0u64..2).prop_map(|(seed, sets, u, simulate)| {
        CampaignSpec::parse(&format!(
            r#"
name = "prop-multicore"
seed = {seed}
workload = "multicore"

[multicore]
sets_per_point = {sets}
max_attempts_factor = 10
cores = [2]
tasks_per_core = 2
utilizations = {{ values = [{u:.4}] }}
sim_per_point = 1
simulate = {}

[multicore.taskset]
n = 1
utilization = 0.0
period_range = [10.0, 100.0]
deadline_factor = [1.0, 1.0]
"#,
            simulate == 1
        ))
        .expect("template parses")
    })
}

fn arb_cfg_spec() -> impl Strategy<Value = CampaignSpec> {
    (0u64..1000, 2usize..5, 1usize..4, 0u64..17, 0.2f64..0.9).prop_map(
        |(seed, programs, depth, footprint, q)| {
            CampaignSpec::parse(&format!(
                r#"
name = "prop-cfg"
seed = {seed}
workload = "cfg"

[cfg]
programs_per_point = {programs}
depths = [{depth}]
loop_iterations = [3]
footprints = [{footprint}]
q_scales = {{ values = [{q:.4}] }}
sets = [16, 64]
associativity = [1]
line_bytes = [16]
reload_cost = [10.0]
"#
            ))
            .expect("template parses")
        },
    )
}

/// Builds the acceptance spec used by the store-extension property.
fn acceptance_spec_for(seed: u64, sets: usize, utilizations: &[f64]) -> CampaignSpec {
    CampaignSpec::parse(&format!(
        r#"
name = "prop-store"
seed = {seed}
workload = "acceptance"

[acceptance]
sets_per_point = {sets}
max_attempts_factor = 10
utilizations = {{ values = [{us}] }}

[acceptance.taskset]
n = 4
utilization = 0.0
period_range = [10.0, 1000.0]
deadline_factor = [1.0, 1.0]
"#,
        us = utilizations
            .iter()
            .map(|u| format!("{u:.4}"))
            .collect::<Vec<_>>()
            .join(", "),
    ))
    .expect("template parses")
}

/// Runs with the full telemetry stack live (counters + span/trace
/// collection), and appends the run's ledger record to `ledger` the way
/// the CLI does after a `--ledger` run. The point of the
/// telemetry-invariance property: this function and [`render`] must be
/// interchangeable.
fn render_with_telemetry(
    spec: &CampaignSpec,
    threads: usize,
    ledger: &std::path::Path,
) -> (String, String) {
    fnpr_obs::set_enabled(true);
    fnpr_obs::set_trace_collection(true);
    let campaign = spec.validate().expect("generated specs are valid");
    let outcome = run_campaign(&campaign, Some(threads)).expect("campaign runs");
    let record = fnpr_campaign::ledger_record(&campaign, &outcome, 0.5);
    fnpr_obs::append_record(ledger, &record).expect("ledger appends");
    let out = (outcome.report.to_csv(), outcome.report.to_json());
    // Drain the trace buffer so repeated proptest cases cannot grow it
    // without bound, and stop collecting between cases. Counters stay
    // enabled: tests in this binary run concurrently, and flipping the
    // global switch off here could drop increments another test is
    // asserting on — telemetry state must never matter for outputs, which
    // is exactly what the caller asserts.
    let events = fnpr_obs::take_trace_events();
    assert!(
        !events.is_empty(),
        "trace collection was on but no spans were recorded"
    );
    fnpr_obs::set_trace_collection(false);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Acceptance campaigns: identical aggregates at 1, 2 and 8 threads.
    #[test]
    fn acceptance_aggregates_are_thread_invariant(spec in arb_acceptance_spec()) {
        assert_thread_invariant(&spec);
    }

    /// Soundness campaigns: identical aggregates at 1, 2 and 8 threads,
    /// across shard sizes and with/without the simulator.
    #[test]
    fn soundness_aggregates_are_thread_invariant(spec in arb_soundness_spec()) {
        assert_thread_invariant(&spec);
    }

    /// Multicore campaigns: identical aggregates at 1, 2 and 8 threads —
    /// the same contract the original workloads established, covering the
    /// partitioning, global tests and m-core simulator streams.
    #[test]
    fn multicore_aggregates_are_thread_invariant(spec in arb_multicore_spec()) {
        assert_thread_invariant(&spec);
    }

    /// Telemetry is a write-only side channel: with counters, spans, trace
    /// collection AND run-ledger appends all live, CSV/JSON aggregates
    /// stay byte-identical to a telemetry-off run at 1, 2 and 8 threads.
    /// This is the contract that lets every layer instrument its hot paths
    /// without threatening the determinism guarantees above.
    #[test]
    fn telemetry_never_touches_aggregates(spec in arb_acceptance_spec()) {
        let dir = common::scratch_dir("telemetry_prop");
        let ledger = dir.join("LEDGER.jsonl");
        let baseline = render(&spec, 1);
        for threads in [1usize, 2, 8] {
            let traced = render_with_telemetry(&spec, threads, &ledger);
            prop_assert_eq!(
                &traced,
                &baseline,
                "aggregates changed with telemetry on at {} threads",
                threads
            );
        }
        // The side channel itself is healthy: three valid records of one
        // scenario, percentiles ordered and clamped to the observed max.
        let view = fnpr_obs::read_ledger(&ledger).expect("ledger reads back");
        prop_assert_eq!(view.records.len(), 3);
        prop_assert_eq!((view.invalid, view.stale), (0, 0));
        let scenario = &view.records[0].scenario;
        for r in &view.records {
            prop_assert_eq!(&r.scenario, scenario);
            prop_assert!(r.p50_us <= r.p90_us && r.p90_us <= r.p99_us);
            prop_assert!(r.p99_us <= r.max_us as f64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// CFG campaigns: identical aggregates at 1, 2 and 8 threads — the
    /// program-generation, pipeline and memo layers (programs shared across
    /// geometry points, curves shared across Q points) must not leak
    /// scheduling into results.
    #[test]
    fn cfg_aggregates_are_thread_invariant(spec in arb_cfg_spec()) {
        assert_thread_invariant(&spec);
    }

    /// The store's headline guarantee (ISSUE 5 acceptance criterion): after
    /// a base run populates the store, a warm run of an **extended** grid —
    /// at 1, 2 and 8 threads — computes only the new points, restores every
    /// base point, and produces CSV/JSON byte-identical to a cold full run
    /// without any store. Seed derivation is unchanged by the store (same
    /// contract the thread-invariance properties pin down).
    #[test]
    fn warm_extended_grid_is_byte_identical_to_cold(
        seed in 0u64..1000,
        sets in 2usize..5,
        base_us in prop::collection::vec(0.35f64..0.55, 1..3),
        new_u in 0.56f64..0.80,
    ) {
        let dir = common::scratch_dir("store_prop");
        let path = dir.join("store.log");

        let mut extended_us = base_us.clone();
        extended_us.push(new_u); // disjoint ranges: genuinely new points
        let base = acceptance_spec_for(seed, sets, &base_us).validate().unwrap();
        let extended = acceptance_spec_for(seed, sets, &extended_us).validate().unwrap();

        // Cold reference: the full extended grid, no store.
        let reference = render(&acceptance_spec_for(seed, sets, &extended_us), 1);

        // Populate with the base grid.
        let store = ResultStore::open(&path).unwrap();
        run_campaign_with_store(&base, Some(2), Some(&store)).unwrap();

        let base_points = 2 * base_us.len() as u64; // 2 policies per utilization
        for (round, threads) in [1usize, 2, 8].into_iter().enumerate() {
            // Fresh handle per run: per-run counters over the same file.
            let store = ResultStore::open(&path).unwrap();
            let outcome =
                run_campaign_with_store(&extended, Some(threads), Some(&store)).unwrap();
            prop_assert_eq!(
                &(outcome.report.to_csv(), outcome.report.to_json()),
                &reference,
                "warm extended aggregates drifted at {} threads",
                threads
            );
            let stats = outcome.store.unwrap();
            if round == 0 {
                // First warm run: exactly the new utilization's points.
                prop_assert_eq!(stats.points_restored, base_points);
                prop_assert_eq!(stats.points_computed, 2);
            } else {
                prop_assert_eq!(stats.points_restored, base_points + 2);
                prop_assert_eq!(stats.points_computed, 0);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The executor layer's headline guarantee: per-shard RNG streams are
    /// pure functions of `(seed, coords)`, so aggregates are byte-identical
    /// not just at any thread count but under any **placement** — in-process
    /// local threads at 1/2/8 and real worker subprocesses at 1/2/4 workers
    /// all render the same CSV and JSON bytes.
    #[test]
    fn aggregates_survive_any_backend_and_placement(spec in arb_soundness_spec()) {
        let baseline = render(&spec, 1);
        for threads in [2usize, 8] {
            prop_assert_eq!(
                &render(&spec, threads),
                &baseline,
                "local backend drifted at {} threads",
                threads
            );
        }
        for workers in [1usize, 2, 4] {
            prop_assert_eq!(
                &render_process(&spec, workers),
                &baseline,
                "process backend drifted at {} workers",
                workers
            );
        }
    }

    /// Store layouts are interchangeable: a cold run with no store, a warm
    /// run over the sharded directory it populated, and a warm run over a
    /// **legacy single-file** store rebuilt from those shards (exercising
    /// the read-through migration) all produce identical bytes — and both
    /// warm runs compute nothing.
    #[test]
    fn warm_sharded_and_migrated_legacy_stores_match_cold(
        seed in 0u64..1000,
        sets in 2usize..4,
        u in 0.35f64..0.75,
    ) {
        let dir = common::scratch_dir("store_layout_prop");
        let spec = acceptance_spec_for(seed, sets, &[u]);
        let campaign = spec.validate().unwrap();
        let reference = render(&spec, 2);

        // Cold populate + warm re-run over the sharded directory.
        let sharded = dir.join("sharded.fnprstore");
        run_campaign_with_store(&campaign, Some(2), Some(&ResultStore::open(&sharded).unwrap()))
            .unwrap();
        let warm = run_campaign_with_store(
            &campaign,
            Some(2),
            Some(&ResultStore::open(&sharded).unwrap()),
        )
        .unwrap();
        prop_assert_eq!(
            &(warm.report.to_csv(), warm.report.to_json()),
            &reference,
            "warm sharded aggregates drifted"
        );
        prop_assert_eq!(warm.store.as_ref().unwrap().points_computed, 0);

        // Flatten the shards into a legacy-style single file; opening it
        // migrates in place and must serve every record.
        let legacy = dir.join("legacy.log");
        let mut flat = Vec::new();
        for table in StoreTable::ALL {
            if let Ok(bytes) = std::fs::read(sharded.join(table.file_name())) {
                flat.extend_from_slice(&bytes);
            }
        }
        std::fs::write(&legacy, &flat).unwrap();
        let migrated = run_campaign_with_store(
            &campaign,
            Some(2),
            Some(&ResultStore::open(&legacy).unwrap()),
        )
        .unwrap();
        prop_assert_eq!(
            &(migrated.report.to_csv(), migrated.report.to_json()),
            &reference,
            "migrated legacy aggregates drifted"
        );
        let stats = migrated.store.unwrap();
        prop_assert_eq!(stats.points_computed, 0, "migration lost records");
        prop_assert!(legacy.is_dir(), "legacy file was not migrated to shards");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Serde mirror of the `--metrics` snapshot document. `fnpr-obs` writes
/// the file with a hand-rolled, dependency-free emitter; parsing it back
/// through the workspace serde shim pins the format to plain standard
/// JSON that any consumer can read.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct MetricsDoc {
    schema_version: u64,
    label: String,
    scenario: String,
    store_path: Option<String>,
    points_total: u64,
    points_done: u64,
    elapsed_seconds: f64,
    span_count: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramDoc>,
}

/// Mirror of `fnpr_obs::HistogramSnapshot` for [`MetricsDoc`].
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct HistogramDoc {
    count: u64,
    sum: u64,
    max: u64,
    p50: f64,
    p90: f64,
    p99: f64,
}

/// The `--metrics` JSON round-trips through the serde shim: the
/// hand-rolled writer's output parses into [`MetricsDoc`], survives a
/// re-serialize/re-parse cycle, and preserves every field — including a
/// label that needs JSON escaping.
#[test]
fn metrics_snapshot_round_trips_through_the_serde_shim() {
    // Five samples of 8 in bucket 4 ([8, 15]), with an observed max of 15.
    let mut buckets = [0u64; 64];
    buckets[4] = 5;
    let report = fnpr_obs::MetricsReport {
        schema_version: fnpr_obs::METRICS_SCHEMA_VERSION,
        label: "determinism \"quoted\" \\ label".to_string(),
        scenario: "59ef3a68c946026a".to_string(),
        store_path: Some("campaign.fnprstore".to_string()),
        points_total: 42,
        points_done: 40,
        elapsed_seconds: 1.25,
        span_count: 7,
        counters: BTreeMap::from([
            ("campaign.memo.hit".to_string(), 31),
            ("campaign.points.done".to_string(), 40),
        ]),
        gauges: BTreeMap::from([("campaign.points.total".to_string(), 42)]),
        histograms: BTreeMap::from([(
            "campaign.shard.points".to_string(),
            fnpr_obs::HistogramSnapshot::from_parts(5, 40, 15, &buckets),
        )]),
    };
    let json = report.to_json();
    let doc: MetricsDoc = serde_json::from_str(&json).expect("metrics JSON parses via serde");
    assert_eq!(doc.schema_version, fnpr_obs::METRICS_SCHEMA_VERSION);
    assert_eq!(doc.label, report.label);
    assert_eq!(doc.scenario, "59ef3a68c946026a");
    assert_eq!(doc.store_path.as_deref(), Some("campaign.fnprstore"));
    assert_eq!((doc.points_total, doc.points_done), (42, 40));
    assert_eq!(doc.elapsed_seconds, 1.25);
    assert_eq!(doc.span_count, 7);
    assert_eq!(doc.counters.get("campaign.memo.hit"), Some(&31));
    assert_eq!(doc.gauges.get("campaign.points.total"), Some(&42));
    let hist = doc.histograms.get("campaign.shard.points").unwrap();
    assert_eq!((hist.count, hist.sum, hist.max), (5, 40, 15));
    // The percentiles survive the shim as plain numbers with the
    // histogram's ordering intact.
    assert!(hist.p50 <= hist.p90 && hist.p90 <= hist.p99);
    assert!(hist.p99 <= hist.max as f64);
    assert!(
        hist.p50 >= 8.0,
        "p50 below the sampled bucket: {}",
        hist.p50
    );
    // Fixpoint: a shim re-serialize / re-parse cycle loses nothing.
    let again: MetricsDoc = serde_json::from_str(&serde_json::to_string(&doc)).expect("re-parse");
    assert_eq!(again, doc);
}

/// A live-registry snapshot also parses: enable telemetry, run a real
/// campaign, and feed `MetricsReport::gather` output through the same
/// mirror — the keys instrumented across the workspace show up.
#[test]
fn gathered_metrics_parse_and_carry_campaign_counters() {
    fnpr_obs::set_enabled(true);
    let spec = CampaignSpec::parse(
        r#"
seed = 7
workload = "soundness"
[soundness]
trials = 8
trials_per_shard = 2
"#,
    )
    .unwrap();
    let campaign = spec.validate().unwrap();
    run_campaign(&campaign, Some(2)).unwrap();
    let report = fnpr_obs::MetricsReport::gather(
        "gather-test",
        fnpr_obs::gauge("campaign.points.total").value(),
        fnpr_obs::counter("campaign.points.done").value(),
        0.25,
    )
    .with_scenario(&format!("{:016x}", campaign.scenario_hash()))
    .with_store_path(None);
    let doc: MetricsDoc = serde_json::from_str(&report.to_json()).expect("gathered JSON parses");
    assert_eq!(doc.label, "gather-test");
    assert_eq!(doc.scenario, format!("{:016x}", campaign.scenario_hash()));
    assert_eq!(doc.store_path, None, "absent store must read back as None");
    for key in [
        "campaign.shards.claimed",
        "campaign.shards.retired",
        "campaign.points.done",
    ] {
        assert!(
            doc.counters.get(key).is_some_and(|&v| v > 0),
            "expected live counter {key} in gathered snapshot"
        );
    }
    // The always-on shard roll-up carries live, ordered percentiles.
    let shard = doc
        .histograms
        .get("campaign.shard.micros")
        .expect("shard timing histogram in gathered snapshot");
    assert!(shard.count > 0);
    assert!(shard.p50 <= shard.p90 && shard.p90 <= shard.p99);
    assert!(shard.p99 <= shard.max as f64);
}

/// The memo layer must not leak scheduling into results: running the same
/// campaign twice in one process (warm memo) matches a cold run.
#[test]
fn warm_memo_matches_cold_run() {
    let spec = CampaignSpec::parse(
        r#"
seed = 99
workload = "acceptance"
[acceptance]
sets_per_point = 4
max_attempts_factor = 10
utilizations = { values = [0.5, 0.7] }
"#,
    )
    .unwrap();
    let cold = render(&spec, 4);
    let warm = render(&spec, 4);
    assert_eq!(cold, warm);
    assert_eq!(
        spec.validate().unwrap().workload_kind(),
        WorkloadKind::Acceptance
    );
}
