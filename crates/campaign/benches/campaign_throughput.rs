//! `campaign_throughput` — scenarios/second through the sharded executor
//! at 1 vs N worker threads, for both workloads. The interesting number in
//! CI logs is the ratio between the `threads/1` and `threads/N` lines: it
//! tracks how much of the engine's work actually parallelizes (BENCH
//! trajectory: keep this near the core count as workloads grow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fnpr_campaign::{run_campaign, CampaignSpec};

/// `FNPR_OBS=1 cargo bench -p fnpr-campaign` runs the same grid with the
/// full counter/span stack live — diff the medians against a default run
/// to measure instrumentation overhead (budget: ≤ 5%).
fn obs_from_env() {
    if std::env::var_os("FNPR_OBS").is_some() {
        fnpr_obs::set_enabled(true);
    }
}

fn thread_grid() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let mut grid = vec![1];
    if max > 1 {
        grid.push(max);
    }
    grid
}

fn bench_acceptance(c: &mut Criterion) {
    obs_from_env();
    let spec = CampaignSpec::parse(
        r#"
seed = 2012
workload = "acceptance"
[acceptance]
sets_per_point = 8
max_attempts_factor = 10
utilizations = { values = [0.4, 0.6, 0.8] }
"#,
    )
    .unwrap();
    let campaign = spec.validate().unwrap();
    let mut group = c.benchmark_group("campaign_throughput/acceptance");
    // 2 policies x 3 utilizations x 8 sets = 48 set analyses per run.
    group.sample_size(10).throughput(Throughput::Elements(48));
    for threads in thread_grid() {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| run_campaign(&campaign, Some(threads)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_soundness(c: &mut Criterion) {
    obs_from_env();
    let spec = CampaignSpec::parse(
        r#"
seed = 2012
workload = "soundness"
[soundness]
trials = 64
trials_per_shard = 4
"#,
    )
    .unwrap();
    let campaign = spec.validate().unwrap();
    let mut group = c.benchmark_group("campaign_throughput/soundness");
    group.sample_size(10).throughput(Throughput::Elements(64));
    for threads in thread_grid() {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| run_campaign(&campaign, Some(threads)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_multicore(c: &mut Criterion) {
    obs_from_env();
    let spec = CampaignSpec::parse(
        r#"
seed = 2012
workload = "multicore"
[multicore]
sets_per_point = 4
max_attempts_factor = 10
cores = [2]
tasks_per_core = 2
utilizations = { values = [0.4, 0.6] }
sim_per_point = 1
"#,
    )
    .unwrap();
    let campaign = spec.validate().unwrap();
    let mut group = c.benchmark_group("campaign_throughput/multicore");
    // 2 policies x 4 allocations x 2 utilizations x 4 sets = 64 analyses.
    group.sample_size(10).throughput(Throughput::Elements(64));
    for threads in thread_grid() {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| run_campaign(&campaign, Some(threads)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_cfg_pipeline(c: &mut Criterion) {
    obs_from_env();
    let spec = CampaignSpec::parse(
        r#"
seed = 2012
workload = "cfg"
[cfg]
programs_per_point = 4
depths = [2, 3]
loop_iterations = [4]
footprints = [8]
q_scales = { values = [0.3, 0.6] }
sets = [16, 64]
associativity = [1]
line_bytes = [16]
reload_cost = [10.0]
"#,
    )
    .unwrap();
    let campaign = spec.validate().unwrap();
    let mut group = c.benchmark_group("campaign_throughput/cfg_pipeline");
    // 2 shapes x 2 geometries x 2 q scales x 4 programs = 32 full
    // program->curve->bound pipeline analyses per run (memoized within a
    // run, so this tracks the generate+compile+prepare+CRPD path plus the
    // memo layer itself — the BENCH trajectory for the program->curve
    // path).
    group.sample_size(10).throughput(Throughput::Elements(32));
    for threads in thread_grid() {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| run_campaign(&campaign, Some(threads)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_acceptance,
    bench_soundness,
    bench_multicore,
    bench_cfg_pipeline
);
criterion_main!(benches);
