//! Campaign-level errors.

use std::fmt;

/// Anything that can go wrong while loading, validating or running a
/// campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// The spec file could not be read.
    Io(std::io::Error),
    /// The spec text could not be parsed (TOML or JSON).
    Parse(serde::Error),
    /// The spec parsed but is semantically invalid.
    Spec(String),
    /// A substrate analysis failed in a way resampling cannot hide.
    Analysis(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cannot read spec: {e}"),
            Self::Parse(e) => write!(f, "cannot parse spec: {e}"),
            Self::Spec(msg) => write!(f, "invalid spec: {msg}"),
            Self::Analysis(msg) => write!(f, "analysis failure: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde::Error> for CampaignError {
    fn from(e: serde::Error) -> Self {
        Self::Parse(e)
    }
}
