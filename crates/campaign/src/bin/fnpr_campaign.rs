//! `fnpr-campaign` — run experiment campaigns from scenario spec files.
//!
//! ```text
//! fnpr-campaign run <spec.toml|spec.json> [--threads N] [--csv PATH] [--json PATH]
//!                   [--store PATH] [--quiet]
//! fnpr-campaign grid <spec>          # show the expanded scenario grid
//! fnpr-campaign store stats <PATH>   # inspect a result store
//! fnpr-campaign store gc <PATH>      # compact a result store
//! fnpr-campaign example-spec         # print a template TOML spec
//! ```
//!
//! Exit codes: 0 on success, 1 on usage/spec errors, 2 when the run
//! completed but the paper's dominance/soundness claims were violated.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fnpr_campaign::store::ResultStore;
use fnpr_campaign::{run_campaign_with_store, CampaignSpec, Workload};

struct RunArgs {
    spec: PathBuf,
    threads: Option<usize>,
    csv: Option<String>,
    json: Option<String>,
    store: Option<String>,
    metrics: Option<String>,
    trace: Option<String>,
    quiet: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => match parse_run_args(&args[1..]) {
            Ok(run) => cmd_run(&run),
            Err(msg) => usage_error(&msg),
        },
        Some("grid") => match args.get(1) {
            Some(path) => cmd_grid(&PathBuf::from(path)),
            None => usage_error("`grid` needs a spec path"),
        },
        Some("store") => match (args.get(1).map(String::as_str), args.get(2)) {
            (Some("stats"), Some(path)) => cmd_store_stats(Path::new(path)),
            (Some("gc"), Some(path)) => cmd_store_gc(Path::new(path)),
            _ => usage_error("`store` needs `stats <PATH>` or `gc <PATH>`"),
        },
        Some("example-spec") => {
            print!("{}", EXAMPLE_SPEC);
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            eprint!("{}", USAGE);
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown subcommand {other:?}")),
    }
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut spec = None;
    let mut threads = None;
    let mut csv = None;
    let mut json = None;
    let mut store = None;
    let mut metrics = None;
    let mut trace = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad thread count {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be >= 1".into());
                }
                threads = Some(n);
            }
            "--csv" => csv = Some(it.next().ok_or("--csv needs a path")?.clone()),
            "--json" => json = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--store" => store = Some(it.next().ok_or("--store needs a path")?.clone()),
            "--metrics" => metrics = Some(it.next().ok_or("--metrics needs a path")?.clone()),
            "--trace-out" => trace = Some(it.next().ok_or("--trace-out needs a path")?.clone()),
            "--quiet" => quiet = true,
            other if spec.is_none() && !other.starts_with('-') => {
                spec = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(RunArgs {
        spec: spec.ok_or("`run` needs a spec path")?,
        threads,
        csv,
        json,
        store,
        metrics,
        trace,
        quiet,
    })
}

fn cmd_run(args: &RunArgs) -> ExitCode {
    let campaign = match CampaignSpec::load_validated(&args.spec) {
        Ok(campaign) => campaign,
        Err(e) => return usage_error(&e.to_string()),
    };
    // Telemetry: CLI flags win over the spec's [telemetry] table. The
    // whole subsystem is a write-only side channel — aggregates are
    // byte-identical with telemetry on or off (property-tested in
    // tests/determinism.rs) — so enabling it by default costs nothing but
    // relaxed atomic increments.
    let metrics_target = args
        .metrics
        .clone()
        .or_else(|| campaign.telemetry.metrics.clone());
    let trace_target = args
        .trace
        .clone()
        .or_else(|| campaign.telemetry.trace.clone());
    let progress_on = !args.quiet && campaign.telemetry.progress.unwrap_or(true);
    fnpr_obs::set_enabled(metrics_target.is_some() || trace_target.is_some() || progress_on);
    fnpr_obs::set_trace_collection(trace_target.is_some());
    fnpr_obs::set_progress(progress_on);
    // CLI --store wins over the spec's [store] table.
    let store_target = args.store.clone().or_else(|| campaign.store_path.clone());
    let store = match &store_target {
        Some(path) => match ResultStore::open(Path::new(path)) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("fnpr-campaign: cannot open result store {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let started = std::time::Instant::now();
    let outcome = match run_campaign_with_store(&campaign, args.threads, store.as_ref()) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("fnpr-campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = &outcome.report;

    // CLI flags win over the spec's [output] table; `-` means stdout.
    let csv_target = args.csv.clone().or_else(|| campaign.output.csv.clone());
    let json_target = args.json.clone().or_else(|| campaign.output.json.clone());
    if let Err(e) = emit(csv_target.as_deref(), &report.to_csv(), true) {
        eprintln!("fnpr-campaign: writing CSV: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = emit(json_target.as_deref(), &report.to_json(), false) {
        eprintln!("fnpr-campaign: writing JSON: {e}");
        return ExitCode::FAILURE;
    }

    // Telemetry artifacts (side channels; never part of the aggregates).
    if let Some(path) = &metrics_target {
        let snapshot = fnpr_obs::MetricsReport::gather(
            &campaign.name,
            fnpr_obs::gauge("campaign.points.total").value(),
            fnpr_obs::counter("campaign.points.done").value(),
            started.elapsed().as_secs_f64(),
        );
        if let Err(e) = std::fs::write(path, snapshot.to_json()) {
            eprintln!("fnpr-campaign: writing metrics: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_target {
        if let Err(e) = fnpr_obs::write_chrome_trace(Path::new(path)) {
            eprintln!("fnpr-campaign: writing trace: {e}");
            return ExitCode::FAILURE;
        }
    }

    if !args.quiet {
        let s = &report.summary;
        eprintln!(
            "campaign {:?} (scenario {}): {} shards, {} instances in {:.2?} on {} threads",
            report.name,
            report.scenario,
            report.acceptance.len()
                + report.soundness.len()
                + report.multicore.len()
                + report.cfg.len(),
            s.instances,
            started.elapsed(),
            outcome.threads,
        );
        eprintln!(
            "memo: {} hits / {} misses; pessimism mean {:.3}x max {:.3}x; \
             naive bound unsound in {} trials",
            outcome.memo.hits,
            outcome.memo.misses,
            s.pessimism_mean,
            s.pessimism_max,
            s.naive_unsound,
        );
        if let (Some(stats), Some(path)) = (&outcome.store, &store_target) {
            eprintln!("store {path}: {stats}");
        }
        if let Some(csv) = &csv_target {
            eprintln!("wrote CSV aggregate to {csv}");
        }
        if let Some(json) = &json_target {
            eprintln!("wrote JSON aggregate to {json}");
        }
        if let Some(metrics) = &metrics_target {
            eprintln!("wrote metrics snapshot to {metrics}");
        }
        if let Some(trace) = &trace_target {
            eprintln!("wrote Chrome trace to {trace} (open in Perfetto / chrome://tracing)");
        }
    }
    if report.summary.dominance_violations > 0 || report.summary.sim_violations > 0 {
        eprintln!(
            "FAIL: {} dominance and {} simulation violations — the paper's claims did not hold",
            report.summary.dominance_violations, report.summary.sim_violations
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// Writes `content` to a file, or to stdout when the target is `-`/absent
/// (CSV defaults to stdout; JSON is only emitted when requested).
fn emit(target: Option<&str>, content: &str, stdout_default: bool) -> std::io::Result<()> {
    match target {
        Some("-") => {
            print!("{content}");
            Ok(())
        }
        Some(path) => std::fs::write(path, content),
        None if stdout_default => {
            print!("{content}");
            Ok(())
        }
        None => Ok(()),
    }
}

fn cmd_grid(path: &Path) -> ExitCode {
    let campaign = match CampaignSpec::load_validated(path) {
        Ok(campaign) => campaign,
        Err(e) => return usage_error(&e.to_string()),
    };
    println!("campaign: {}", campaign.name);
    println!("seed: {}", campaign.seed);
    println!("scenario: {:016x}", campaign.scenario_hash());
    match &campaign.workload {
        Workload::Acceptance(a) => {
            println!(
                "workload: acceptance ({} policies x {} utilizations x {} sets = {} set analyses, {} methods each)",
                a.policies.len(),
                a.utilizations.len(),
                a.sets_per_point,
                a.policies.len() * a.utilizations.len() * a.sets_per_point,
                a.methods.len(),
            );
            for &p in &a.policies {
                for &u in &a.utilizations {
                    println!(
                        "  point: policy={} utilization={u:.4}",
                        fnpr_campaign::spec::policy_label(p)
                    );
                }
            }
        }
        Workload::Soundness(s) => {
            println!(
                "workload: soundness ({} trials, {} per shard, simulate={})",
                s.trials, s.trials_per_shard, s.simulate
            );
        }
        Workload::Cfg(c) => {
            let shapes = c.depths.len() * c.loop_iterations.len() * c.footprints.len();
            let geometries =
                c.sets.len() * c.associativity.len() * c.line_bytes.len() * c.reload_costs.len();
            println!(
                "workload: cfg ({shapes} shapes x {geometries} geometries x {} q scales x {} programs = {} pipeline analyses)",
                c.q_scales.len(),
                c.programs_per_point,
                shapes * geometries * c.q_scales.len() * c.programs_per_point,
            );
            // The run's own grid expansion, so the printed order can never
            // drift from the CSV row order.
            for p in fnpr_campaign::cfg_workload::grid_points(c) {
                println!(
                    "  point: shape=d{}_l{}_f{} cache={}x{}x{}B brt={} q_scale={:.4}",
                    p.depth,
                    p.loop_iterations,
                    p.footprint,
                    p.sets,
                    p.associativity,
                    p.line_bytes,
                    p.reload_cost,
                    p.q_scale,
                );
            }
        }
        Workload::Multicore(m) => {
            println!(
                "workload: multicore ({} core counts x {} policies x {} allocations x {} utilizations x {} sets = {} set analyses, {} methods each, simulate={})",
                m.cores.len(),
                m.policies.len(),
                m.allocations.len(),
                m.utilizations.len(),
                m.sets_per_point,
                m.cores.len()
                    * m.policies.len()
                    * m.allocations.len()
                    * m.utilizations.len()
                    * m.sets_per_point,
                m.methods.len(),
                m.simulate,
            );
            for &cores in &m.cores {
                for &p in &m.policies {
                    for &a in &m.allocations {
                        for &u in &m.utilizations {
                            println!(
                                "  point: m={cores} policy={} allocation={} utilization={u:.4}",
                                fnpr_campaign::spec::policy_label(p),
                                fnpr_campaign::spec::allocation_label(a),
                            );
                        }
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// Opens an *existing* store for the introspection subcommands: unlike
/// `run` (where first use legitimately creates the file), `stats`/`gc` on
/// a missing path is almost certainly a typo — creating an empty store
/// there and reporting it healthy would mislead far worse than erroring.
fn open_existing_store(path: &Path) -> Result<ResultStore, ExitCode> {
    if !path.is_file() {
        eprintln!(
            "fnpr-campaign: result store {} does not exist \
             (runs create it via --store or the spec's [store] table)",
            path.display()
        );
        return Err(ExitCode::FAILURE);
    }
    ResultStore::open(path).map_err(|e| {
        eprintln!(
            "fnpr-campaign: cannot open result store {}: {e}",
            path.display()
        );
        ExitCode::FAILURE
    })
}

/// `store stats`: open the store (validating every line) and report the
/// live entry counts per table plus load-time health.
fn cmd_store_stats(path: &Path) -> ExitCode {
    // Counters on (load-time invalid/stale lines register in the obs
    // registry too); never any stderr chatter from this subcommand.
    fnpr_obs::set_enabled(true);
    let store = match open_existing_store(path) {
        Ok(store) => store,
        Err(code) => return code,
    };
    let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("store: {}", path.display());
    println!("file size: {size} bytes");
    println!(
        "analysis fingerprint: {:016x}",
        fnpr_campaign::store::analysis_fingerprint()
    );
    let mut total = 0usize;
    for (table, count) in store.table_counts() {
        println!("  {:<26} {count}", table.label());
        total += count;
    }
    let stats = store.stats();
    println!("live entries: {total}");
    println!(
        "skipped at load: {} invalid, {} stale (reclaim with `store gc`)",
        stats.invalid_entries, stats.stale_entries
    );
    ExitCode::SUCCESS
}

/// `store gc`: rewrite the log with only live (valid, current-fingerprint,
/// newest-per-key) entries.
fn cmd_store_gc(path: &Path) -> ExitCode {
    // Counters on: the gc pass reports scanned/dropped/bytes-reclaimed
    // through the obs registry as well as the printed summary.
    fnpr_obs::set_enabled(true);
    let store = match open_existing_store(path) {
        Ok(store) => store,
        Err(code) => return code,
    };
    let stats = store.stats();
    match store.gc() {
        Ok(report) => {
            println!(
                "gc {}: kept {} entries, dropped {} invalid + {} stale lines, \
                 {} -> {} bytes",
                path.display(),
                report.kept,
                stats.invalid_entries,
                stats.stale_entries,
                report.bytes_before,
                report.bytes_after,
            );
            eprintln!("gc summary: {}", report.summary());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fnpr-campaign: gc failed on {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("fnpr-campaign: {msg}");
    eprint!("{}", USAGE);
    ExitCode::FAILURE
}

const USAGE: &str = "\
usage:
  fnpr-campaign run <spec.toml|spec.json> [--threads N] [--csv PATH] [--json PATH]
                    [--store PATH] [--metrics PATH] [--trace-out PATH] [--quiet]
  fnpr-campaign grid <spec>
  fnpr-campaign store stats <PATH>
  fnpr-campaign store gc <PATH>
  fnpr-campaign example-spec

telemetry (write-only; aggregates are byte-identical with it on or off):
  --metrics PATH     write a versioned JSON snapshot of all counters/spans
  --trace-out PATH   write a Chrome trace-event JSON of per-shard spans
                     (open in Perfetto or chrome://tracing)
  --quiet            also suppresses the live progress line
";

const EXAMPLE_SPEC: &str = r#"# fnpr-campaign scenario spec (TOML; JSON works too)
name = "example"
seed = 2012
workload = "acceptance"        # or "soundness" / "multicore" / "cfg"
                               # (see examples/multicore_smoke.toml for the
                               # multiprocessor grid, examples/cfg_smoke.toml
                               # for the program->pipeline->curve sweep)

[acceptance]
sets_per_point = 200           # task sets per grid point
policies = ["fixed_priority", "edf"]
methods = ["none", "eq4", "algorithm1", "algorithm1_capped"]
utilizations = { start = 0.3, stop = 0.9, step = 0.1 }
q_scale = 0.8                  # Qi as a fraction of the max admissible region
delay_frac = 0.6               # curve peak as a fraction of Qi

[acceptance.taskset]           # UUniFast generation template
n = 5
utilization = 0.0              # replaced by each grid point's value
period_range = [10.0, 1000.0]
deadline_factor = [1.0, 1.0]

[output]
csv = "campaign.csv"           # "-" or omit for stdout
json = "campaign.json"         # omit to skip JSON

# Optional: persist finished points content-addressed on disk, so re-runs
# and grid extensions only compute new points (aggregates stay
# byte-identical). CLI `--store PATH` overrides; inspect with
# `fnpr-campaign store stats|gc <PATH>`.
# [store]
# path = "campaign.fnprstore"

# Optional: observability (write-only side channel; never changes results).
# CLI `--metrics` / `--trace-out` override the paths; `--quiet` suppresses
# the live progress line.
# [telemetry]
# metrics = "campaign_metrics.json"
# trace = "campaign_trace.json"
# progress = true
"#;
