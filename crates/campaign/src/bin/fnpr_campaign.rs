//! `fnpr-campaign` — run experiment campaigns from scenario spec files.
//!
//! ```text
//! fnpr-campaign run <spec.toml|spec.json> [--threads N] [--csv PATH] [--json PATH]
//!                   [--backend local|process] [--workers N]
//!                   [--timeout-secs F] [--max-retries N] [--resume]
//!                   [--store PATH] [--ledger PATH] [--quiet]
//! fnpr-campaign grid <spec>          # show the expanded scenario grid
//! fnpr-campaign history <LEDGER>     # trend tables over the run ledger
//! fnpr-campaign store stats <PATH>   # inspect a result store
//! fnpr-campaign store gc <PATH>      # compact a result store
//! fnpr-campaign example-spec         # print a template TOML spec
//! ```
//!
//! There is also a hidden `worker` subcommand: the process backend's
//! subprocess entry point (job JSON on stdin, result frames on stdout).
//!
//! Exit codes: 0 on success, 1 on usage/spec errors, 2 when the run
//! completed but the paper's dominance/soundness claims were violated —
//! or, for `history --check`, when a performance regression was detected.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fnpr_campaign::store::{GcPolicy, ResultStore};
use fnpr_campaign::{
    history, run_campaign_with_options, BackendChoice, CampaignSpec, ExecOptions, Workload,
};

struct RunArgs {
    spec: PathBuf,
    threads: Option<usize>,
    backend: Option<BackendChoice>,
    workers: Option<usize>,
    timeout_secs: Option<f64>,
    max_retries: Option<usize>,
    resume: bool,
    csv: Option<String>,
    json: Option<String>,
    store: Option<String>,
    metrics: Option<String>,
    trace: Option<String>,
    ledger: Option<String>,
    quiet: bool,
}

struct HistoryArgs {
    ledger: PathBuf,
    check: bool,
    max_regression_pct: f64,
    html: Option<String>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => match parse_run_args(&args[1..]) {
            Ok(run) => cmd_run(&run),
            Err(msg) => usage_error(&msg),
        },
        Some("grid") => match args.get(1) {
            Some(path) => cmd_grid(&PathBuf::from(path)),
            None => usage_error("`grid` needs a spec path"),
        },
        Some("history") => match parse_history_args(&args[1..]) {
            Ok(history) => cmd_history(&history),
            Err(msg) => usage_error(&msg),
        },
        Some("store") => match (args.get(1).map(String::as_str), args.get(2)) {
            (Some("stats"), Some(path)) => cmd_store_stats(Path::new(path)),
            (Some("gc"), Some(path)) => match parse_gc_policy(&args[3..]) {
                Ok(policy) => cmd_store_gc(Path::new(path), &policy),
                Err(msg) => usage_error(&msg),
            },
            _ => usage_error("`store` needs `stats <PATH>` or `gc <PATH>`"),
        },
        // Hidden: the process backend's subprocess entry point.
        Some("worker") => cmd_worker(),
        Some("example-spec") => {
            print!("{}", EXAMPLE_SPEC);
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            eprint!("{}", USAGE);
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown subcommand {other:?}")),
    }
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut spec = None;
    let mut threads = None;
    let mut backend = None;
    let mut workers = None;
    let mut timeout_secs = None;
    let mut max_retries = None;
    let mut resume = false;
    let mut csv = None;
    let mut json = None;
    let mut store = None;
    let mut metrics = None;
    let mut trace = None;
    let mut ledger = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad thread count {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be >= 1".into());
                }
                threads = Some(n);
            }
            "--backend" => {
                let v = it.next().ok_or("--backend needs a value")?;
                backend =
                    Some(BackendChoice::parse(v).ok_or_else(|| {
                        format!("--backend must be `local` or `process`, not {v:?}")
                    })?);
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("bad worker count {v:?}"))?;
                if n == 0 {
                    return Err("--workers must be >= 1".into());
                }
                workers = Some(n);
            }
            "--timeout-secs" => {
                let v = it.next().ok_or("--timeout-secs needs a value")?;
                let secs = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad timeout {v:?} (seconds)"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--timeout-secs must be a positive number of seconds".into());
                }
                timeout_secs = Some(secs);
            }
            "--max-retries" => {
                let v = it.next().ok_or("--max-retries needs a value")?;
                max_retries = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad retry count {v:?}"))?,
                );
            }
            "--resume" => resume = true,
            "--csv" => csv = Some(it.next().ok_or("--csv needs a path")?.clone()),
            "--json" => json = Some(it.next().ok_or("--json needs a path")?.clone()),
            "--store" => store = Some(it.next().ok_or("--store needs a path")?.clone()),
            "--metrics" => metrics = Some(it.next().ok_or("--metrics needs a path")?.clone()),
            "--trace-out" => trace = Some(it.next().ok_or("--trace-out needs a path")?.clone()),
            "--ledger" => ledger = Some(it.next().ok_or("--ledger needs a path")?.clone()),
            "--quiet" => quiet = true,
            other if spec.is_none() && !other.starts_with('-') => {
                spec = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(RunArgs {
        spec: spec.ok_or("`run` needs a spec path")?,
        threads,
        backend,
        workers,
        timeout_secs,
        max_retries,
        resume,
        csv,
        json,
        store,
        metrics,
        trace,
        ledger,
        quiet,
    })
}

fn parse_history_args(args: &[String]) -> Result<HistoryArgs, String> {
    let mut ledger = None;
    let mut check = false;
    let mut max_regression_pct = history::HistoryOptions::default().max_regression * 100.0;
    let mut html = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--max-regression" => {
                let v = it.next().ok_or("--max-regression needs a percentage")?;
                let pct = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad percentage {v:?}"))?;
                if !pct.is_finite() || pct <= 0.0 {
                    return Err("--max-regression must be a positive percentage".into());
                }
                max_regression_pct = pct;
            }
            "--html" => html = Some(it.next().ok_or("--html needs a path")?.clone()),
            other if ledger.is_none() && !other.starts_with('-') => {
                ledger = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(HistoryArgs {
        ledger: ledger.ok_or("`history` needs a ledger path")?,
        check,
        max_regression_pct,
        html,
    })
}

fn cmd_run(args: &RunArgs) -> ExitCode {
    let campaign = match CampaignSpec::load_validated(&args.spec) {
        Ok(campaign) => campaign,
        Err(e) => return usage_error(&e.to_string()),
    };
    // Telemetry: CLI flags win over the spec's [telemetry] table. The
    // whole subsystem is a write-only side channel — aggregates are
    // byte-identical with telemetry on or off (property-tested in
    // tests/determinism.rs) — so enabling it by default costs nothing but
    // relaxed atomic increments.
    let metrics_target = args
        .metrics
        .clone()
        .or_else(|| campaign.telemetry.metrics.clone());
    let trace_target = args
        .trace
        .clone()
        .or_else(|| campaign.telemetry.trace.clone());
    let ledger_target = args
        .ledger
        .clone()
        .or_else(|| campaign.telemetry.ledger.clone());
    let progress_on = !args.quiet && campaign.telemetry.progress.unwrap_or(true);
    fnpr_obs::set_enabled(
        metrics_target.is_some()
            || trace_target.is_some()
            || ledger_target.is_some()
            || progress_on,
    );
    fnpr_obs::set_trace_collection(trace_target.is_some());
    fnpr_obs::set_progress(progress_on);
    // Fail fast on unwritable telemetry targets: a multi-hour campaign must
    // not discover a bad --metrics path only when it tries to write the
    // snapshot at the end.
    for (flag, target) in [
        ("--metrics", &metrics_target),
        ("--trace-out", &trace_target),
        ("--ledger", &ledger_target),
    ] {
        if let Some(path) = target {
            if let Err(e) = probe_writable(Path::new(path)) {
                eprintln!("fnpr-campaign: {flag} target {path} is not writable: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // CLI --store wins over the spec's [store] table.
    let store_target = args.store.clone().or_else(|| campaign.store_path.clone());
    if args.resume && store_target.is_none() {
        eprintln!(
            "fnpr-campaign: --resume needs a result store \
             (--store PATH or the spec's [store] table)"
        );
        return ExitCode::FAILURE;
    }
    let store = match &store_target {
        Some(path) => match ResultStore::open(Path::new(path)) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("fnpr-campaign: cannot open result store {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // Crash-safe resume: the writable open above already swept dead jobs'
    // orphaned deltas into the canonical store; surface what it found.
    if let Some(store) = &store {
        let sweep = store.orphan_sweep();
        if sweep.swept_dirs > 0 || sweep.merged > 0 {
            eprintln!(
                "resume: merged {} record(s) from {} orphaned delta dir(s) ({} bytes reclaimed)",
                sweep.merged, sweep.swept_dirs, sweep.bytes
            );
        }
        if let Some(marker) = store.interrupted_run() {
            eprintln!("resume: previous run was interrupted ({marker}); continuing from the store");
        } else if args.resume && !args.quiet {
            eprintln!("resume: no interrupted run found; warm-starting from the store");
        }
    }
    let started = std::time::Instant::now();
    let options = ExecOptions {
        threads: args.threads,
        backend: args.backend,
        workers: args.workers,
        timeout_secs: args.timeout_secs,
        max_retries: args.max_retries,
    };
    let outcome = match run_campaign_with_options(&campaign, &options, store.as_ref()) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("fnpr-campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = &outcome.report;

    // CLI flags win over the spec's [output] table; `-` means stdout.
    let csv_target = args.csv.clone().or_else(|| campaign.output.csv.clone());
    let json_target = args.json.clone().or_else(|| campaign.output.json.clone());
    if let Err(e) = emit(csv_target.as_deref(), &report.to_csv(), true) {
        eprintln!("fnpr-campaign: writing CSV: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = emit(json_target.as_deref(), &report.to_json(), false) {
        eprintln!("fnpr-campaign: writing JSON: {e}");
        return ExitCode::FAILURE;
    }

    // Telemetry artifacts (side channels; never part of the aggregates).
    // The metrics snapshot carries the scenario hash and store path so a
    // snapshot joins against its run-ledger row without guessing.
    if let Some(path) = &metrics_target {
        let snapshot = fnpr_obs::MetricsReport::gather(
            &campaign.name,
            fnpr_obs::gauge("campaign.points.total").value(),
            fnpr_obs::counter("campaign.points.done").value(),
            started.elapsed().as_secs_f64(),
        )
        .with_scenario(&report.scenario)
        .with_store_path(store_target.as_deref());
        if let Err(e) = std::fs::write(path, snapshot.to_json()) {
            eprintln!("fnpr-campaign: writing metrics: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_target {
        if let Err(e) = fnpr_obs::write_chrome_trace(Path::new(path)) {
            eprintln!("fnpr-campaign: writing trace: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &ledger_target {
        let record =
            fnpr_campaign::ledger_record(&campaign, &outcome, started.elapsed().as_secs_f64());
        if let Err(e) = fnpr_obs::append_record(Path::new(path), &record) {
            eprintln!("fnpr-campaign: appending run record to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if !args.quiet {
        let s = &report.summary;
        eprintln!(
            "campaign {:?} (scenario {}): {} shards, {} instances in {:.2?} on {} {} workers",
            report.name,
            report.scenario,
            report.acceptance.len()
                + report.soundness.len()
                + report.multicore.len()
                + report.cfg.len(),
            s.instances,
            started.elapsed(),
            outcome.threads,
            outcome.backend,
        );
        eprintln!(
            "memo: {} hits / {} misses; pessimism mean {:.3}x max {:.3}x; \
             naive bound unsound in {} trials",
            outcome.memo.hits,
            outcome.memo.misses,
            s.pessimism_mean,
            s.pessimism_max,
            s.naive_unsound,
        );
        if let (Some(stats), Some(path)) = (&outcome.store, &store_target) {
            eprintln!("store {path}: {stats}");
        }
        if let Some(csv) = &csv_target {
            eprintln!("wrote CSV aggregate to {csv}");
        }
        if let Some(json) = &json_target {
            eprintln!("wrote JSON aggregate to {json}");
        }
        if let Some(metrics) = &metrics_target {
            eprintln!("wrote metrics snapshot to {metrics}");
        }
        if let Some(trace) = &trace_target {
            eprintln!("wrote Chrome trace to {trace} (open in Perfetto / chrome://tracing)");
        }
        if let Some(ledger) = &ledger_target {
            eprintln!("appended run record to {ledger} (trend with `fnpr-campaign history`)");
        }
    }
    if report.summary.dominance_violations > 0 || report.summary.sim_violations > 0 {
        eprintln!(
            "FAIL: {} dominance and {} simulation violations — the paper's claims did not hold",
            report.summary.dominance_violations, report.summary.sim_violations
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// Verifies a telemetry target path is writable before the campaign runs,
/// by opening it in non-destructive append mode (creating parent
/// directories and the file if absent — exactly what the real write will
/// do later, minus the bytes).
fn probe_writable(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map(drop)
}

/// Writes `content` to a file, or to stdout when the target is `-`/absent
/// (CSV defaults to stdout; JSON is only emitted when requested).
fn emit(target: Option<&str>, content: &str, stdout_default: bool) -> std::io::Result<()> {
    match target {
        Some("-") => {
            print!("{content}");
            Ok(())
        }
        Some(path) => std::fs::write(path, content),
        None if stdout_default => {
            print!("{content}");
            Ok(())
        }
        None => Ok(()),
    }
}

fn cmd_grid(path: &Path) -> ExitCode {
    let campaign = match CampaignSpec::load_validated(path) {
        Ok(campaign) => campaign,
        Err(e) => return usage_error(&e.to_string()),
    };
    println!("campaign: {}", campaign.name);
    println!("seed: {}", campaign.seed);
    println!("scenario: {:016x}", campaign.scenario_hash());
    match &campaign.workload {
        Workload::Acceptance(a) => {
            println!(
                "workload: acceptance ({} policies x {} utilizations x {} sets = {} set analyses, {} methods each)",
                a.policies.len(),
                a.utilizations.len(),
                a.sets_per_point,
                a.policies.len() * a.utilizations.len() * a.sets_per_point,
                a.methods.len(),
            );
            for &p in &a.policies {
                for &u in &a.utilizations {
                    println!(
                        "  point: policy={} utilization={u:.4}",
                        fnpr_campaign::spec::policy_label(p)
                    );
                }
            }
        }
        Workload::Soundness(s) => {
            println!(
                "workload: soundness ({} trials, {} per shard, simulate={})",
                s.trials, s.trials_per_shard, s.simulate
            );
        }
        Workload::Cfg(c) => {
            let shapes = c.depths.len() * c.loop_iterations.len() * c.footprints.len();
            let geometries =
                c.sets.len() * c.associativity.len() * c.line_bytes.len() * c.reload_costs.len();
            println!(
                "workload: cfg ({shapes} shapes x {geometries} geometries x {} q scales x {} programs = {} pipeline analyses)",
                c.q_scales.len(),
                c.programs_per_point,
                shapes * geometries * c.q_scales.len() * c.programs_per_point,
            );
            // The run's own grid expansion, so the printed order can never
            // drift from the CSV row order.
            for p in fnpr_campaign::cfg_workload::grid_points(c) {
                println!(
                    "  point: shape=d{}_l{}_f{} cache={}x{}x{}B brt={} q_scale={:.4}",
                    p.depth,
                    p.loop_iterations,
                    p.footprint,
                    p.sets,
                    p.associativity,
                    p.line_bytes,
                    p.reload_cost,
                    p.q_scale,
                );
            }
        }
        Workload::Multicore(m) => {
            println!(
                "workload: multicore ({} core counts x {} policies x {} allocations x {} utilizations x {} sets = {} set analyses, {} methods each, simulate={})",
                m.cores.len(),
                m.policies.len(),
                m.allocations.len(),
                m.utilizations.len(),
                m.sets_per_point,
                m.cores.len()
                    * m.policies.len()
                    * m.allocations.len()
                    * m.utilizations.len()
                    * m.sets_per_point,
                m.methods.len(),
                m.simulate,
            );
            for &cores in &m.cores {
                for &p in &m.policies {
                    for &a in &m.allocations {
                        for &u in &m.utilizations {
                            println!(
                                "  point: m={cores} policy={} allocation={} utilization={u:.4}",
                                fnpr_campaign::spec::policy_label(p),
                                fnpr_campaign::spec::allocation_label(a),
                            );
                        }
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// `history`: read the run ledger, trend each scenario against its
/// trailing median, and (under `--check`) gate on regressions the way the
/// run path gates on the paper's claims — exit code 2.
fn cmd_history(args: &HistoryArgs) -> ExitCode {
    let view = match fnpr_obs::read_ledger(&args.ledger) {
        Ok(view) => view,
        Err(e) => {
            eprintln!(
                "fnpr-campaign: cannot read ledger {}: {e}",
                args.ledger.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let options = history::HistoryOptions {
        max_regression: args.max_regression_pct / 100.0,
        ..history::HistoryOptions::default()
    };
    let trends = history::analyze(&view, &options);
    print!("{}", history::render_table(&trends, &options));
    if view.invalid > 0 || view.stale > 0 {
        eprintln!(
            "ledger {}: skipped {} invalid and {} stale line(s)",
            args.ledger.display(),
            view.invalid,
            view.stale
        );
    }
    if let Some(path) = &args.html {
        if let Err(e) = std::fs::write(path, history::render_html(&trends, &options)) {
            eprintln!("fnpr-campaign: writing history dashboard: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote history dashboard to {path}");
    }
    if args.check && history::any_regression(&trends) {
        eprintln!(
            "FAIL: regression beyond {:.1}% detected (see table above)",
            args.max_regression_pct
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// Refuses the introspection subcommands on a missing path: unlike `run`
/// (where first use legitimately creates the store), `stats`/`gc` on a
/// missing path is almost certainly a typo — creating an empty store
/// there and reporting it healthy would mislead far worse than erroring.
fn require_existing_store(path: &Path) -> Result<(), ExitCode> {
    if !path.exists() {
        eprintln!(
            "fnpr-campaign: result store {} does not exist \
             (runs create it via --store or the spec's [store] table)",
            path.display()
        );
        return Err(ExitCode::FAILURE);
    }
    Ok(())
}

/// `store gc` retention flags: `--max-age-days F` and `--max-bytes N` on
/// top of the always-on structural compaction.
fn parse_gc_policy(args: &[String]) -> Result<GcPolicy, String> {
    let mut policy = GcPolicy::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-age-days" => {
                let v = it.next().ok_or("--max-age-days needs a value")?;
                let days = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad age {v:?} (days)"))?;
                if !days.is_finite() || days < 0.0 {
                    return Err("--max-age-days must be a non-negative number".into());
                }
                policy.max_age_days = Some(days);
            }
            "--max-bytes" => {
                let v = it.next().ok_or("--max-bytes needs a value")?;
                policy.max_bytes = Some(v.parse::<u64>().map_err(|_| format!("bad size {v:?}"))?);
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(policy)
}

/// `store stats`: open the store **read-only** (validating every line —
/// a legacy single-file store is served in place, never migrated) and
/// report per-shard file sizes and record counts plus live entry totals.
fn cmd_store_stats(path: &Path) -> ExitCode {
    // Counters on (load-time invalid/stale lines register in the obs
    // registry too); never any stderr chatter from this subcommand.
    fnpr_obs::set_enabled(true);
    if let Err(code) = require_existing_store(path) {
        return code;
    }
    let store = match ResultStore::open_read_only(path) {
        Ok(store) => store,
        Err(e) => {
            eprintln!(
                "fnpr-campaign: cannot open result store {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let files = store.shard_files();
    let size: u64 = files.iter().map(|f| f.bytes).sum();
    println!("store: {}", path.display());
    println!(
        "layout: {}",
        if store.is_sharded() {
            "sharded directory (one log per table)"
        } else {
            "legacy single file (next writable open migrates it)"
        }
    );
    println!("file size: {size} bytes");
    println!(
        "analysis fingerprint: {:016x}",
        fnpr_campaign::store::analysis_fingerprint()
    );
    for f in &files {
        let name = f
            .path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| f.path.display().to_string());
        println!(
            "  shard {:<24} {:>10} bytes {:>8} records",
            name, f.bytes, f.records
        );
    }
    let mut total = 0usize;
    for (table, count) in store.table_counts() {
        println!("  {:<26} {count}", table.label());
        total += count;
    }
    let stats = store.stats();
    println!("live entries: {total}");
    println!(
        "skipped at load: {} invalid, {} stale (reclaim with `store gc`)",
        stats.invalid_entries, stats.stale_entries
    );
    let (orphan_dirs, orphan_bytes) = store.orphaned_deltas();
    if orphan_dirs > 0 {
        println!(
            "orphaned deltas: {orphan_dirs} job dir(s), {orphan_bytes} bytes \
             (a writable open — any run, or `store gc` — merges dead jobs' deltas and reaps them)"
        );
    }
    ExitCode::SUCCESS
}

/// `store gc`: rewrite each shard log with only live (valid,
/// current-fingerprint, newest-per-key) entries, then apply the optional
/// age/size retention policy (oldest entries evicted first).
fn cmd_store_gc(path: &Path, policy: &GcPolicy) -> ExitCode {
    // Counters on: the gc pass reports scanned/dropped/bytes-reclaimed
    // through the obs registry as well as the printed summary.
    fnpr_obs::set_enabled(true);
    if let Err(code) = require_existing_store(path) {
        return code;
    }
    let store = match ResultStore::open(path) {
        Ok(store) => store,
        Err(e) => {
            eprintln!(
                "fnpr-campaign: cannot open result store {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    // The writable open swept dead jobs' orphaned deltas (merge + reap);
    // report that alongside the compaction itself.
    let sweep = store.orphan_sweep();
    if sweep.swept_dirs > 0 || sweep.merged > 0 {
        println!(
            "orphan sweep: merged {} record(s) from {} dead job dir(s), reclaimed {} bytes",
            sweep.merged, sweep.swept_dirs, sweep.bytes
        );
    }
    if sweep.live_skipped > 0 {
        println!(
            "orphan sweep: left {} job dir(s) owned by live processes",
            sweep.live_skipped
        );
    }
    let stats = store.stats();
    match store.gc_with(*policy) {
        Ok(report) => {
            println!(
                "gc {}: kept {} entries, dropped {} invalid + {} stale lines, \
                 {} -> {} bytes",
                path.display(),
                report.kept,
                stats.invalid_entries,
                stats.stale_entries,
                report.bytes_before,
                report.bytes_after,
            );
            if policy.max_age_days.is_some() || policy.max_bytes.is_some() {
                println!("evicted {} live entries (retention policy)", report.evicted);
            }
            eprintln!("gc summary: {}", report.summary());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fnpr-campaign: gc failed on {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// The hidden `worker` subcommand: read one job (JSON) from stdin, stream
/// result frames to stdout. Spawned only by the process backend; errors
/// land on stderr (inherited from the coordinator) and the coordinator
/// recomputes the undelivered shards.
fn cmd_worker() -> ExitCode {
    use std::io::Read;
    let mut job = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut job) {
        eprintln!("fnpr-campaign worker: reading job from stdin: {e}");
        return ExitCode::FAILURE;
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match fnpr_campaign::run_worker(&job, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fnpr-campaign worker: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("fnpr-campaign: {msg}");
    eprint!("{}", USAGE);
    ExitCode::FAILURE
}

const USAGE: &str = "\
usage:
  fnpr-campaign run <spec.toml|spec.json> [--threads N] [--csv PATH] [--json PATH]
                    [--backend local|process] [--workers N]
                    [--timeout-secs F] [--max-retries N] [--resume]
                    [--store PATH] [--metrics PATH] [--trace-out PATH]
                    [--ledger PATH] [--quiet]
  fnpr-campaign grid <spec>
  fnpr-campaign history <LEDGER> [--check] [--max-regression PCT] [--html PATH]
  fnpr-campaign store stats <PATH>
  fnpr-campaign store gc <PATH> [--max-age-days F] [--max-bytes N]
  fnpr-campaign example-spec

execution (aggregates are byte-identical on every backend):
  --backend local    in-process worker threads (the default)
  --backend process  worker subprocesses of this binary; the store is
                     delta-shipped (workers write private shards, the
                     coordinator merges them after the run)
  --workers N        worker-process count (default: the thread count)

fault tolerance (process backend; recovery never changes the aggregates):
  --timeout-secs F   watchdog: kill a worker that produces no frame for F
                     seconds and reclaim its unfinished shards
  --max-retries N    redispatch rounds for reclaimed shards before the
                     coordinator computes them locally (default 1)
  --resume           resume an interrupted campaign from its store: dead
                     jobs' orphaned deltas are merged in, persisted points
                     restore instead of recomputing (requires a store)

store gc retention (on top of the always-on structural compaction):
  --max-age-days F   evict live entries older than F days
  --max-bytes N      evict oldest live entries until the store fits N bytes

telemetry (write-only; aggregates are byte-identical with it on or off):
  --metrics PATH     write a versioned JSON snapshot of all counters/spans,
                     including p50/p90/p99 latency percentiles
  --trace-out PATH   write a Chrome trace-event JSON of per-shard spans
                     (open in Perfetto or chrome://tracing)
  --ledger PATH      append one run record (throughput, percentiles, hit
                     rates) to a checksummed JSONL run ledger
  --quiet            also suppresses the live progress line

history (regression watch over a run ledger):
  --check            exit 2 when a scenario's latest run regressed vs its
                     trailing median
  --max-regression PCT  allowed throughput drop / p99 rise (default 20)
  --html PATH        write a self-contained dashboard with SVG sparklines
";

const EXAMPLE_SPEC: &str = r#"# fnpr-campaign scenario spec (TOML; JSON works too)
name = "example"
seed = 2012
workload = "acceptance"        # or "soundness" / "multicore" / "cfg"
                               # (see examples/multicore_smoke.toml for the
                               # multiprocessor grid, examples/cfg_smoke.toml
                               # for the program->pipeline->curve sweep)

[acceptance]
sets_per_point = 200           # task sets per grid point
policies = ["fixed_priority", "edf"]
methods = ["none", "eq4", "algorithm1", "algorithm1_capped"]
utilizations = { start = 0.3, stop = 0.9, step = 0.1 }
q_scale = 0.8                  # Qi as a fraction of the max admissible region
delay_frac = 0.6               # curve peak as a fraction of Qi

[acceptance.taskset]           # UUniFast generation template
n = 5
utilization = 0.0              # replaced by each grid point's value
period_range = [10.0, 1000.0]
deadline_factor = [1.0, 1.0]

[output]
csv = "campaign.csv"           # "-" or omit for stdout
json = "campaign.json"         # omit to skip JSON

# Optional: persist finished points content-addressed on disk, so re-runs
# and grid extensions only compute new points (aggregates stay
# byte-identical). CLI `--store PATH` overrides; inspect with
# `fnpr-campaign store stats|gc <PATH>`.
# [store]
# path = "campaign.fnprstore"

# Optional: run shards in worker subprocesses instead of in-process
# threads. Placement cannot change results (every RNG stream is a pure
# function of seed + grid coordinates), so this table — like [output],
# [store] and [telemetry] — is not part of the scenario hash. CLI
# `--backend` / `--workers` override.
# [executor]
# backend = "process"          # or "local" (the default)
# workers = 4                  # default: the resolved thread count
# timeout_secs = 30.0          # watchdog: kill a worker silent this long
# max_retries = 1              # redispatch rounds before local fallback

# Optional: deterministic fault injection (testing/chaos-CI only). Inert
# unless the FNPR_FAULT environment variable arms it (FNPR_FAULT=1 uses
# this table; FNPR_FAULT="seed=7,crash=0.5" overrides it inline).
# Injection sites are pure functions of (seed, worker, shard), so a
# failure schedule replays byte-for-byte — and recovery is exercised
# end-to-end while aggregates stay byte-identical to a clean run. Like
# [executor], this table is not part of the scenario hash.
# [fault]
# seed = 7                     # failure-schedule seed
# crash = 0.2                  # P(worker exits before computing a shard)
# stall = 0.1                  # P(worker sleeps stall_ms before a shard)
# stall_ms = 60000
# corrupt = 0.1                # P(result frame corrupted in flight)
# truncate = 0.1               # P(result frame truncated mid-line)
# torn_delta = 0.5             # P(worker delta store loses its tail)
# kill_after = 100             # abort the coordinator after N shards
#                              # (crash-resume drills; then run --resume)

# Optional: observability (write-only side channel; never changes results).
# CLI `--metrics` / `--trace-out` / `--ledger` override the paths; `--quiet`
# suppresses the live progress line. The ledger accumulates one record per
# run — trend and gate it with `fnpr-campaign history`.
# [telemetry]
# metrics = "campaign_metrics.json"
# trace = "campaign_trace.json"
# ledger = "LEDGER.jsonl"
# progress = true
"#;
