//! # fnpr-campaign — a sharded, deterministic experiment-campaign engine
//!
//! The paper's evaluation (and every schedulability study like it) is a
//! large parameter-space exploration: thousands of generated task sets or
//! random curves, analysed under several bounds, aggregated into acceptance
//! ratios and tightness statistics. This crate turns the repo's one-off
//! experiment binaries into a batch engine:
//!
//! * **Scenario specs** ([`spec`]) — a serde-backed TOML/JSON description
//!   of the workload (acceptance, soundness, multicore, or the
//!   CFG-pipeline workload of [`cfg_workload`]), its parameter grid, and
//!   the outputs;
//! * **Sharded execution** ([`exec`]) — grid shards are claimed by worker
//!   threads from an atomic cursor, but every shard's RNG streams are pure
//!   functions of the campaign seed and grid coordinates, so the same spec
//!   produces **bit-identical aggregates at any thread count**;
//! * **Memoization** ([`memo`]) — results are cached under structural
//!   scenario hashes; e.g. the fixed-priority and EDF halves of an
//!   acceptance grid share base task sets and each is generated once;
//! * **Result pipeline** ([`report`]) — streaming per-shard aggregation,
//!   folded in shard order into a [`CampaignReport`] with CSV and JSON
//!   renderings.
//!
//! # Quickstart
//!
//! ```
//! use fnpr_campaign::{run_campaign, CampaignSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CampaignSpec::parse(r#"
//!     name = "doc-smoke"
//!     seed = 42
//!     workload = "soundness"
//!
//!     [soundness]
//!     trials = 4
//!     simulate = false
//! "#)?;
//! let outcome = run_campaign(&spec.validate()?, Some(2))?;
//! assert_eq!(outcome.report.summary.dominance_violations, 0);
//! println!("{}", outcome.report.to_csv());
//! # Ok(())
//! # }
//! ```
//!
//! The `fnpr-campaign` binary wraps this: `fnpr-campaign run <spec.toml>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod acceptance;
pub mod backend;
pub mod cfg_workload;
pub mod error;
pub mod exec;
pub mod fault;
pub mod history;
pub mod memo;
pub mod multicore;
pub mod report;
pub mod soundness;
pub mod spec;
pub mod store;

pub use backend::{run_worker, Executor, ExecutorBackend, WorkerStats, WORKER_EXE_ENV};
pub use error::CampaignError;
pub use fault::{FaultPlan, FaultSpec, FAULT_ENV};
pub use history::{HistoryOptions, ScenarioTrend};
pub use memo::MemoStats;
pub use report::{CampaignReport, StoreStats, Summary};
pub use spec::{Campaign, CampaignSpec, Workload, WorkloadKind};
pub use store::{GcPolicy, GcReport, MergeReport, OrphanSweep, ResultStore};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared unit-test support (one definition of the scratch-dir
    //! uniqueness scheme instead of a copy per test module).
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A fresh, unique scratch directory under the system temp dir.
    pub fn scratch_dir(label: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fnpr_{label}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}

/// Everything a campaign run produces: the deterministic report plus
/// informational (scheduling-dependent) memo statistics.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The deterministic aggregate — identical for a given validated spec
    /// at any thread count.
    pub report: CampaignReport,
    /// Memo hit/miss counters (not part of the deterministic surface).
    pub memo: MemoStats,
    /// Result-store counters, when a store was attached (not part of the
    /// deterministic surface: a warm run restores what a cold run
    /// computes, with byte-identical aggregates either way). Under the
    /// process backend this folds in every worker's counters.
    pub store: Option<StoreStats>,
    /// Worker threads (local backend) or worker processes actually used.
    pub threads: usize,
    /// Which executor backend ran the shards (`"local"` / `"process"`) —
    /// informational, like the counters: backend choice cannot change the
    /// report.
    pub backend: &'static str,
}

/// Execution overrides from the CLI, winning over the spec's `threads` key
/// and `[executor]` table. `Default` means "whatever the spec says".
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Worker-thread count (local backend), overriding `threads`.
    pub threads: Option<usize>,
    /// Backend selection, overriding `[executor] backend`.
    pub backend: Option<BackendChoice>,
    /// Worker-process count, overriding `[executor] workers`.
    pub workers: Option<usize>,
    /// Watchdog inactivity timeout in seconds (process backend),
    /// overriding `[executor] timeout_secs`.
    pub timeout_secs: Option<f64>,
    /// Redispatch rounds for reclaimed shards (process backend),
    /// overriding `[executor] max_retries`.
    pub max_retries: Option<usize>,
}

/// A parsed backend selector (`[executor] backend` / CLI `--backend`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// In-process threads ([`backend::LocalThreads`]).
    Local,
    /// Worker subprocesses ([`backend::ProcessPool`]).
    Process,
}

impl BackendChoice {
    /// Parses `"local"` / `"process"`; `None` otherwise.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "local" => Some(BackendChoice::Local),
            "process" => Some(BackendChoice::Process),
            _ => None,
        }
    }
}

/// Builds the run-ledger record for a finished campaign run — the
/// longitudinal row `fnpr-campaign history` trends and gates on (see
/// [`fnpr_obs::ledger`]). The latency percentiles come from the
/// workload's per-point timing histogram
/// (`campaign.point.micros.<workload>`), so they are meaningful only when
/// telemetry was enabled for the run (zeros otherwise); the CLI arms
/// telemetry whenever a ledger target is set.
#[must_use]
pub fn ledger_record(
    campaign: &Campaign,
    outcome: &CampaignOutcome,
    wall_seconds: f64,
) -> fnpr_obs::RunRecord {
    let report = &outcome.report;
    let grid_points = (report.acceptance.len()
        + report.soundness.len()
        + report.multicore.len()
        + report.cfg.len()) as u64;
    let timing = fnpr_obs::histogram(&format!(
        "campaign.point.micros.{}",
        campaign.workload_kind().key()
    ))
    .snapshot();
    let store = outcome.store.unwrap_or_default();
    fnpr_obs::RunRecord {
        schema: fnpr_obs::LEDGER_SCHEMA_VERSION,
        unix_seconds: fnpr_obs::ledger::unix_now(),
        name: campaign.name.clone(),
        scenario: report.scenario.clone(),
        workload: campaign.workload_kind().key().to_string(),
        grid_points,
        threads: outcome.threads as u64,
        wall_seconds,
        points_per_sec: if wall_seconds > 0.0 {
            grid_points as f64 / wall_seconds
        } else {
            0.0
        },
        memo_hits: outcome.memo.hits,
        memo_misses: outcome.memo.misses,
        points_restored: store.points_restored,
        points_computed: store.points_computed,
        bounds_restored: store.bounds_restored,
        bounds_computed: store.bounds_computed,
        recovered_shards: fnpr_obs::counter("campaign.backend.shards.fallback").value()
            + fnpr_obs::counter("campaign.supervise.reclaimed").value(),
        p50_us: timing.p50,
        p90_us: timing.p90,
        p99_us: timing.p99,
        max_us: timing.max,
    }
}

/// Runs a validated campaign. `threads_override` (e.g. from the CLI) wins
/// over the spec's `threads`; both absent means all cores.
///
/// When the spec carries a `[store]` section, the persistent result store
/// at that path is opened (created if absent) and consulted before any
/// point computes — see [`store::ResultStore`]. Use
/// [`run_campaign_with_store`] to supply a store (or an explicit `None`)
/// directly, e.g. for a CLI `--store` override.
///
/// # Errors
///
/// Propagates the first shard failure, and I/O errors opening the spec's
/// store.
pub fn run_campaign(
    campaign: &Campaign,
    threads_override: Option<usize>,
) -> Result<CampaignOutcome, CampaignError> {
    let store = match &campaign.store_path {
        Some(path) => Some(ResultStore::open(std::path::Path::new(path))?),
        None => None,
    };
    run_campaign_with_store(campaign, threads_override, store.as_ref())
}

/// [`run_campaign`] against an explicitly provided result store (`None`
/// disables persistence regardless of the spec).
///
/// # Errors
///
/// Propagates the first shard failure.
pub fn run_campaign_with_store(
    campaign: &Campaign,
    threads_override: Option<usize>,
    store: Option<&ResultStore>,
) -> Result<CampaignOutcome, CampaignError> {
    run_campaign_with_options(
        campaign,
        &ExecOptions {
            threads: threads_override,
            ..ExecOptions::default()
        },
        store,
    )
}

/// Builds the executor a run will use: CLI overrides win over the spec's
/// `[executor]` table, and the process backend is wired with the
/// re-serialized source spec plus (when a store is attached) the canonical
/// store path and a run-private delta root under it.
fn build_executor(
    campaign: &Campaign,
    options: &ExecOptions,
    store: Option<&ResultStore>,
    fault: Option<FaultPlan>,
) -> (Executor, Option<std::path::PathBuf>) {
    let choice = options
        .backend
        .or_else(|| {
            campaign
                .executor
                .backend
                .as_deref()
                .and_then(BackendChoice::parse)
        })
        .unwrap_or(BackendChoice::Local);
    let threads = exec::resolve_threads(options.threads.or(campaign.threads));
    match choice {
        BackendChoice::Local => (Executor::local(threads), None),
        BackendChoice::Process => {
            let workers = options
                .workers
                .or(campaign.executor.workers)
                .and_then(std::num::NonZeroUsize::new)
                .unwrap_or(threads);
            let spec_json = serde_json::to_string(&campaign.source);
            let (canonical, delta_root) = match store {
                Some(s) => {
                    let root = s
                        .path()
                        .join(".deltas")
                        .join(format!("job-{}", std::process::id()));
                    (Some(s.path().to_path_buf()), Some(root))
                }
                None => (None, None),
            };
            let timeout = options
                .timeout_secs
                .or(campaign.executor.timeout_secs)
                .map(std::time::Duration::from_secs_f64);
            let max_retries = options
                .max_retries
                .or(campaign.executor.max_retries)
                .unwrap_or(1);
            let pool = backend::ProcessPool::new(workers, spec_json, canonical, delta_root.clone())
                .with_supervision(timeout, max_retries)
                .with_fallback_threads(threads)
                .with_fault(fault);
            (Executor::process(pool), delta_root)
        }
    }
}

/// Merges every worker's private delta directory under `delta_root` into
/// the canonical store (sorted, so merge order — and therefore which
/// duplicate wins — is deterministic), then removes the delta tree.
fn merge_worker_deltas(store: &ResultStore, delta_root: &std::path::Path) -> std::io::Result<()> {
    let mut dirs: Vec<std::path::PathBuf> = match std::fs::read_dir(delta_root) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        // No directory at all: no worker got far enough to write one.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    dirs.sort();
    for dir in dirs {
        store.merge_delta(&dir)?;
    }
    std::fs::remove_dir_all(delta_root)?;
    // Drop the shared `.deltas` parent too when this was the last job in
    // it; a concurrent job's directory keeps it alive (remove_dir refuses
    // non-empty directories), which is exactly right.
    if let Some(parent) = delta_root.parent() {
        let _ = std::fs::remove_dir(parent);
    }
    Ok(())
}

/// [`run_campaign`] with full execution options and an explicit store.
///
/// Under the process backend the run is coordinated here: shards stripe
/// across worker subprocesses, workers write store entries to private
/// delta directories, and after the run the deltas are merged into the
/// canonical store and the workers' counters folded into the outcome.
///
/// # Errors
///
/// Propagates the first shard failure, and I/O errors merging worker
/// deltas.
pub fn run_campaign_with_options(
    campaign: &Campaign,
    options: &ExecOptions,
    store: Option<&ResultStore>,
) -> Result<CampaignOutcome, CampaignError> {
    // Fault injection: armed only when the spec carries a `[fault]` table
    // AND the FNPR_FAULT environment opts in (so a committed spec cannot
    // sabotage production runs by itself).
    let fault_plan = fault::active_plan(campaign.fault.as_ref())?;
    fault::arm_kill_switch(fault_plan.as_ref().and_then(|p| p.kill_after));
    let (executor, delta_root) = build_executor(campaign, options, store, fault_plan);
    let scenario = format!("{:016x}", campaign.scenario_hash());
    let _run_span = fnpr_obs::span("campaign.run", "campaign");
    // Crash-safety marker: a run that dies before `end_run` leaves the
    // marker behind, and the next writable open reports the interruption
    // and sweeps this job's orphaned deltas into the canonical store.
    if let Some(store) = store {
        store.begin_run(&campaign.name);
    }
    exec::set_progress_label(Some(campaign.name.clone()));
    exec::set_point_histogram(Some(format!(
        "campaign.point.micros.{}",
        campaign.workload_kind().key()
    )));
    let (methods, acceptance_points, soundness_shards, multicore_points, cfg_points, memo) =
        match &campaign.workload {
            Workload::Acceptance(params) => {
                let engine = acceptance::AcceptanceEngine::new();
                let points = acceptance::run(params, campaign.seed, &executor, &engine, store)?;
                let methods: Vec<String> = params
                    .methods
                    .iter()
                    .map(|&m| spec::method_label(m).to_string())
                    .collect();
                (
                    methods,
                    points,
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                    engine.taskset_memo.stats(),
                )
            }
            Workload::Soundness(params) => {
                let engine = soundness::SoundnessEngine::new();
                let shards = soundness::run(params, campaign.seed, &executor, &engine, store)?;
                (
                    Vec::new(),
                    Vec::new(),
                    shards,
                    Vec::new(),
                    Vec::new(),
                    engine.bounds_memo.stats(),
                )
            }
            Workload::Multicore(params) => {
                let engine = multicore::MulticoreEngine::new();
                let points = multicore::run(params, campaign.seed, &executor, &engine, store)?;
                let methods: Vec<String> = params
                    .methods
                    .iter()
                    .map(|&m| spec::method_label(m).to_string())
                    .collect();
                (
                    methods,
                    Vec::new(),
                    Vec::new(),
                    points,
                    Vec::new(),
                    engine.taskset_memo.stats(),
                )
            }
            Workload::Cfg(params) => {
                let engine = cfg_workload::CfgEngine::new();
                let points = cfg_workload::run(params, campaign.seed, &executor, &engine, store)?;
                (
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                    Vec::new(),
                    points,
                    engine.program_memo.stats() + engine.curve_memo.stats(),
                )
            }
        };
    exec::set_progress_label(None);
    exec::set_point_histogram(None);
    // Process backend: land every worker's private delta in the canonical
    // store (append + dedup by key), then fold the workers' counters into
    // the run's — a warm re-run must see every point the fleet computed.
    if let (Some(store), Some(delta_root)) = (store, &delta_root) {
        merge_worker_deltas(store, delta_root)?;
    }
    if let Some(store) = store {
        store.end_run();
    }
    fault::arm_kill_switch(None);
    let absorbed = executor.absorbed();
    let memo = memo + absorbed.memo_stats();
    let store_totals = store.map(|s| {
        let mut totals = s.stats();
        let worker = absorbed.store_stats();
        totals.points_restored += worker.points_restored;
        totals.points_computed += worker.points_computed;
        totals.bounds_restored += worker.bounds_restored;
        totals.bounds_computed += worker.bounds_computed;
        totals.write_errors += worker.write_errors;
        totals
    });
    let summary = report::summarize(
        &acceptance_points,
        &soundness_shards,
        &multicore_points,
        &cfg_points,
        &methods,
    );
    Ok(CampaignOutcome {
        report: CampaignReport {
            name: campaign.name.clone(),
            workload: campaign.workload_kind(),
            seed: campaign.seed,
            scenario,
            methods,
            acceptance: acceptance_points,
            soundness: soundness_shards,
            multicore: multicore_points,
            cfg: cfg_points,
            summary,
        },
        memo,
        store: store_totals,
        threads: executor.parallelism(),
        backend: executor.name(),
    })
}
