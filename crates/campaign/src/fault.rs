//! Deterministic fault injection: a seeded harness that makes every
//! failure path of the process backend testable and **replayable**.
//!
//! A campaign spec may carry a `[fault]` table ([`FaultSpec`]) describing
//! a failure schedule: worker crashes before a shard, artificial stalls,
//! frame corruption/truncation on the worker wire protocol, torn delta
//! tails, and a coordinator kill switch for crash-resume drills. Like
//! `[telemetry]` and `[executor]`, the table is **excluded from the
//! scenario hash** — injecting faults must never change what a campaign
//! computes, only how much work recovery does.
//!
//! Injection only happens when the `FNPR_FAULT` environment variable arms
//! it (see [`armed`]), so a spec with a `[fault]` table is inert in normal
//! runs. Every injection decision is a pure function of
//! `(fault_seed, site, worker, shard)` via [`crate::memo::ScenarioHasher`]
//! — no clocks, no RNG state — so a failure schedule replays
//! byte-for-byte: the coordinator can print the exact schedule its workers
//! will execute before spawning any of them.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::error::CampaignError;
use crate::memo::ScenarioHasher;

/// Domain tag for fault-decision hashes.
const TAG_FAULT: u64 = 0x4641_554c; // "FAUL"

/// The `FNPR_FAULT` environment variable: unset/empty/`0`/`off` disarms
/// injection entirely; `1`/`true`/`on` arms the spec's `[fault]` table;
/// any other value is parsed as an inline `key=value,key=value` plan that
/// overrides the spec (used by chaos CI to inject faults into an
/// unmodified spec). Worker subprocesses inherit the variable, so one
/// setting governs the whole job tree.
pub const FAULT_ENV: &str = "FNPR_FAULT";

/// Raw `[fault]` table: a seeded failure schedule. All fields optional;
/// absent probabilities default to 0 (never). Probabilities are per
/// `(worker, shard)` site, evaluated independently per fault class.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of the failure schedule (independent of the campaign seed, so
    /// the same workload can replay under many schedules). Default 0.
    pub seed: Option<u64>,
    /// P(worker exits abruptly before computing a shard).
    pub crash: Option<f64>,
    /// P(worker sleeps `stall_ms` before computing a shard) — the hung
    /// worker the watchdog must reap.
    pub stall: Option<f64>,
    /// Stall duration in milliseconds (default 30000: longer than any
    /// sane watchdog timeout, so an unwatched stall is visible).
    pub stall_ms: Option<u64>,
    /// P(a shard's result frame is corrupted in flight) — the checksum
    /// must reject it and the coordinator recompute the shard.
    pub corrupt: Option<f64>,
    /// P(a shard's result frame is truncated mid-line).
    pub truncate: Option<f64>,
    /// P(a worker's delta store loses its tail) — torn-tail healing plus
    /// merge-side validation must absorb it.
    pub torn_delta: Option<f64>,
    /// Coordinator kill switch: abort the coordinator process (no
    /// destructors, like SIGKILL) after this many retired shards. For
    /// crash-resume drills; meaningful for one run, not a probability.
    pub kill_after: Option<u64>,
}

/// A validated failure schedule, ready for pure per-site decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Schedule seed.
    pub seed: u64,
    /// P(crash before shard).
    pub crash: f64,
    /// P(stall before shard).
    pub stall: f64,
    /// Stall duration (milliseconds).
    pub stall_ms: u64,
    /// P(frame corrupted).
    pub corrupt: f64,
    /// P(frame truncated).
    pub truncate: f64,
    /// P(delta tail torn), per worker.
    pub torn_delta: f64,
    /// Abort the coordinator after N retired shards.
    pub kill_after: Option<u64>,
}

impl Default for FaultPlan {
    /// The empty schedule: every probability zero, nothing armed.
    fn default() -> Self {
        Self {
            seed: 0,
            crash: 0.0,
            stall: 0.0,
            stall_ms: 30_000,
            corrupt: 0.0,
            truncate: 0.0,
            torn_delta: 0.0,
            kill_after: None,
        }
    }
}

/// One planned injection, for schedule logging and `campaign.fault.*`
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Worker exits before computing the shard.
    Crash {
        /// The shard it dies in front of.
        shard: usize,
    },
    /// Worker sleeps before computing the shard.
    Stall {
        /// The stalled shard.
        shard: usize,
        /// Sleep duration (milliseconds).
        ms: u64,
    },
    /// The shard's result frame is corrupted.
    Corrupt {
        /// The affected shard.
        shard: usize,
    },
    /// The shard's result frame is truncated.
    Truncate {
        /// The affected shard.
        shard: usize,
    },
    /// The worker's delta store loses its tail.
    TornDelta,
}

impl FaultEvent {
    /// Counter-name suffix (`campaign.fault.planned.<key>`).
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            FaultEvent::Crash { .. } => "crash",
            FaultEvent::Stall { .. } => "stall",
            FaultEvent::Corrupt { .. } => "corrupt",
            FaultEvent::Truncate { .. } => "truncate",
            FaultEvent::TornDelta => "torn_delta",
        }
    }
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEvent::Crash { shard } => write!(f, "crash before shard {shard}"),
            FaultEvent::Stall { shard, ms } => write!(f, "stall {ms}ms before shard {shard}"),
            FaultEvent::Corrupt { shard } => write!(f, "corrupt frame of shard {shard}"),
            FaultEvent::Truncate { shard } => write!(f, "truncate frame of shard {shard}"),
            FaultEvent::TornDelta => write!(f, "tear delta-store tail"),
        }
    }
}

// Decision-site tags: distinct words so e.g. crash and stall schedules
// are independent even at the same (seed, worker, shard).
const SITE_CRASH: u64 = 1;
const SITE_STALL: u64 = 2;
const SITE_CORRUPT: u64 = 3;
const SITE_TRUNCATE: u64 = 4;
const SITE_TORN: u64 = 5;

fn check_probability(key: &str, p: Option<f64>) -> Result<f64, CampaignError> {
    let p = p.unwrap_or(0.0);
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(CampaignError::Spec(format!(
            "`{key}` must be a probability in [0, 1], not {p}"
        )));
    }
    Ok(p)
}

impl FaultPlan {
    /// Validates a raw [`FaultSpec`] into a plan.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] on probabilities outside `[0, 1]`.
    pub fn from_spec(spec: &FaultSpec) -> Result<Self, CampaignError> {
        Ok(Self {
            seed: spec.seed.unwrap_or(0),
            crash: check_probability("crash", spec.crash)?,
            stall: check_probability("stall", spec.stall)?,
            stall_ms: spec.stall_ms.unwrap_or(30_000),
            corrupt: check_probability("corrupt", spec.corrupt)?,
            truncate: check_probability("truncate", spec.truncate)?,
            torn_delta: check_probability("torn_delta", spec.torn_delta)?,
            kill_after: spec.kill_after,
        })
    }

    /// The pure coin for one decision site: a uniform value in `[0, 1)`
    /// derived only from `(fault_seed, site, worker, shard)`.
    fn roll(&self, site: u64, worker: u64, shard: u64) -> f64 {
        let h = ScenarioHasher::new(TAG_FAULT)
            .word(self.seed)
            .word(site)
            .word(worker)
            .word(shard)
            .finish();
        // Top 53 bits → exactly representable in f64, uniform in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Does `worker` crash before computing `shard`?
    #[must_use]
    pub fn crashes_at(&self, worker: u64, shard: u64) -> bool {
        self.roll(SITE_CRASH, worker, shard) < self.crash
    }

    /// Does `worker` stall before computing `shard`?
    #[must_use]
    pub fn stalls_at(&self, worker: u64, shard: u64) -> bool {
        self.roll(SITE_STALL, worker, shard) < self.stall
    }

    /// Is `shard`'s result frame corrupted?
    #[must_use]
    pub fn corrupts_at(&self, worker: u64, shard: u64) -> bool {
        self.roll(SITE_CORRUPT, worker, shard) < self.corrupt
    }

    /// Is `shard`'s result frame truncated? (Corruption wins when both
    /// trigger — one mangling per frame.)
    #[must_use]
    pub fn truncates_at(&self, worker: u64, shard: u64) -> bool {
        self.roll(SITE_TRUNCATE, worker, shard) < self.truncate
    }

    /// Does `worker` tear its delta-store tail after its last shard?
    #[must_use]
    pub fn tears_delta(&self, worker: u64) -> bool {
        self.roll(SITE_TORN, worker, 0) < self.torn_delta
    }

    /// The exact schedule `worker` will execute over `shards` (in
    /// assignment order): what the worker-side hooks do, predicted
    /// coordinator-side. A crash ends the worker, so nothing after it is
    /// planned — including the delta tear.
    #[must_use]
    pub fn schedule(&self, worker: u64, shards: &[usize]) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for &shard in shards {
            let s = shard as u64;
            if self.stalls_at(worker, s) {
                events.push(FaultEvent::Stall {
                    shard,
                    ms: self.stall_ms,
                });
            }
            if self.crashes_at(worker, s) {
                events.push(FaultEvent::Crash { shard });
                return events;
            }
            if self.corrupts_at(worker, s) {
                events.push(FaultEvent::Corrupt { shard });
            } else if self.truncates_at(worker, s) {
                events.push(FaultEvent::Truncate { shard });
            }
        }
        if self.tears_delta(worker) {
            events.push(FaultEvent::TornDelta);
        }
        events
    }
}

/// Is fault injection armed for this process? See [`FAULT_ENV`].
#[must_use]
pub fn armed() -> bool {
    // fnpr-lint: allow(env_read, "chaos-test arming switch; injected faults are themselves seeded")
    match std::env::var(FAULT_ENV) {
        Ok(v) => !matches!(v.trim(), "" | "0" | "off"),
        Err(_) => false,
    }
}

/// Parses an inline `key=value,key=value` plan from the env payload
/// (keys are the `[fault]` table keys).
fn parse_env_plan(text: &str) -> Result<FaultSpec, CampaignError> {
    let mut spec = FaultSpec::default();
    for item in text.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (key, value) = item.split_once('=').ok_or_else(|| {
            CampaignError::Spec(format!(
                "{FAULT_ENV}: expected key=value, got {item:?} (keys: seed, crash, stall, \
                 stall_ms, corrupt, truncate, torn_delta, kill_after)"
            ))
        })?;
        let bad = |what: &str| {
            CampaignError::Spec(format!(
                "{FAULT_ENV}: bad {what} value {value:?} for `{key}`"
            ))
        };
        match key.trim() {
            "seed" => spec.seed = Some(value.parse().map_err(|_| bad("integer"))?),
            "crash" => spec.crash = Some(value.parse().map_err(|_| bad("number"))?),
            "stall" => spec.stall = Some(value.parse().map_err(|_| bad("number"))?),
            "stall_ms" => spec.stall_ms = Some(value.parse().map_err(|_| bad("integer"))?),
            "corrupt" => spec.corrupt = Some(value.parse().map_err(|_| bad("number"))?),
            "truncate" => spec.truncate = Some(value.parse().map_err(|_| bad("number"))?),
            "torn_delta" => spec.torn_delta = Some(value.parse().map_err(|_| bad("number"))?),
            "kill_after" => spec.kill_after = Some(value.parse().map_err(|_| bad("integer"))?),
            other => {
                return Err(CampaignError::Spec(format!(
                    "{FAULT_ENV}: unknown fault key `{other}`"
                )))
            }
        }
    }
    Ok(spec)
}

/// Resolves the active failure schedule for this process: `None` when
/// [`FAULT_ENV`] is disarmed, the spec's `[fault]` table when armed with
/// `1`/`true`/`on` (still `None` if the spec has no table), or the env
/// payload itself parsed as an inline plan. Both the coordinator and its
/// worker subprocesses resolve the same value, so their schedules agree.
///
/// # Errors
///
/// [`CampaignError::Spec`] on an unparseable env payload or invalid
/// probabilities.
pub fn active_plan(spec: Option<&FaultSpec>) -> Result<Option<FaultPlan>, CampaignError> {
    // fnpr-lint: allow(env_read, "chaos-test plan channel shared with workers; deterministic given the plan")
    let value = match std::env::var(FAULT_ENV) {
        Ok(v) => v,
        Err(_) => return Ok(None),
    };
    match value.trim() {
        "" | "0" | "off" => Ok(None),
        "1" | "true" | "on" => spec.map(FaultPlan::from_spec).transpose(),
        inline => Ok(Some(FaultPlan::from_spec(&parse_env_plan(inline)?)?)),
    }
}

/// Worker-side injection hooks: the plan bound to this worker's id, ready
/// to drop into the shard-emission loop.
#[derive(Debug, Clone, Copy)]
pub struct WorkerFaults {
    plan: FaultPlan,
    worker: u64,
}

impl WorkerFaults {
    /// Binds `plan` to worker `worker`.
    #[must_use]
    pub fn new(plan: FaultPlan, worker: u64) -> Self {
        Self { plan, worker }
    }

    /// Runs the before-compute hooks for `shard`: sleeps through a
    /// scheduled stall, then **exits the process** on a scheduled crash
    /// (abrupt, like a real worker death — frames already written are
    /// out, nothing else is flushed).
    pub fn before_shard(&self, shard: usize) {
        let s = shard as u64;
        if self.plan.stalls_at(self.worker, s) {
            std::thread::sleep(std::time::Duration::from_millis(self.plan.stall_ms));
        }
        if self.plan.crashes_at(self.worker, s) {
            eprintln!(
                "fnpr-campaign worker {}: fault: crashing before shard {shard}",
                self.worker
            );
            std::process::exit(113);
        }
    }

    /// Applies scheduled frame mangling to `shard`'s outgoing frame:
    /// corruption (one byte flipped) or truncation (line cut mid-body).
    /// Either way the frame checksum must reject the line and the
    /// coordinator recompute the shard.
    #[must_use]
    pub fn mangle_frame(&self, shard: usize, frame: String) -> String {
        let s = shard as u64;
        if self.plan.corrupts_at(self.worker, s) {
            return corrupt_line(&frame);
        }
        if self.plan.truncates_at(self.worker, s) {
            return truncate_line(&frame);
        }
        frame
    }

    /// Runs the after-shards hook: tears the tail off the worker's delta
    /// store (the largest table file loses its last bytes), simulating a
    /// worker that died mid-append. Shipped frames are unaffected; the
    /// merge skips the torn line.
    pub fn after_shards(&self, delta_dir: Option<&std::path::Path>) {
        let Some(dir) = delta_dir else { return };
        if !self.plan.tears_delta(self.worker) {
            return;
        }
        let mut files: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
            Ok(entries) => entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_file())
                .collect(),
            Err(_) => return,
        };
        files.sort();
        // Tear the last nonempty file (deterministic choice given the
        // deterministic set of files a worker writes).
        for path in files.iter().rev() {
            let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            if len > 8 {
                if let Ok(file) = std::fs::OpenOptions::new().write(true).open(path) {
                    let _ = file.set_len(len - 7);
                }
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator kill switch (crash-resume drills)
// ---------------------------------------------------------------------

/// Disarmed sentinel for [`KILL_AFTER`].
const KILL_DISARMED: u64 = u64::MAX;
/// Retired-shard threshold at which the coordinator aborts.
static KILL_AFTER: AtomicU64 = AtomicU64::new(KILL_DISARMED);
/// Retired shards since the switch was last armed.
static KILL_RETIRED: AtomicU64 = AtomicU64::new(0);

/// Arms (or, with `None`, disarms) the coordinator kill switch:
/// [`kill_switch_tick`] aborts the process once `after` shards have
/// retired. Process-global — intended for one CLI run at a time (the
/// crash-resume drill), not for concurrent in-process campaigns.
pub fn arm_kill_switch(after: Option<u64>) {
    KILL_RETIRED.store(0, Ordering::SeqCst);
    KILL_AFTER.store(after.unwrap_or(KILL_DISARMED), Ordering::SeqCst);
}

/// Counts one retired shard against the kill switch; aborts the process
/// (no destructors — the SIGKILL analogue) at the armed threshold. One
/// relaxed load when disarmed.
pub(crate) fn kill_switch_tick() {
    let limit = KILL_AFTER.load(Ordering::Relaxed);
    if limit == KILL_DISARMED {
        return;
    }
    let retired = KILL_RETIRED.fetch_add(1, Ordering::SeqCst) + 1;
    if retired >= limit {
        eprintln!(
            "fnpr-campaign: fault: aborting coordinator after {retired} retired shards \
             (kill_after = {limit})"
        );
        std::process::abort();
    }
}

/// Flips one mid-line character (deterministically, by content length) so
/// the frame checksum fails; char count and trailing newline are
/// preserved.
fn corrupt_line(frame: &str) -> String {
    let chars: Vec<char> = frame.trim_end_matches('\n').chars().collect();
    let flip = chars.len() / 2;
    let body: String = chars
        .into_iter()
        .enumerate()
        .map(|(i, c)| match (i == flip, c) {
            (true, '#') => '%',
            (true, _) => '#',
            (false, c) => c,
        })
        .collect();
    format!("{body}\n")
}

/// Cuts the line to two thirds of its length (char-boundary-safe),
/// keeping the newline so one mangled frame costs exactly one shard.
fn truncate_line(frame: &str) -> String {
    let body = frame.trim_end_matches('\n');
    let mut cut = (body.len() * 2 / 3).min(body.len().saturating_sub(1));
    while cut > 0 && !body.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}\n", &body[..cut])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(spec: &FaultSpec) -> FaultPlan {
        FaultPlan::from_spec(spec).unwrap()
    }

    #[test]
    fn decisions_are_pure_and_monotone_in_probability() {
        let never = plan(&FaultSpec {
            crash: Some(0.0),
            ..FaultSpec::default()
        });
        let always = plan(&FaultSpec {
            crash: Some(1.0),
            ..FaultSpec::default()
        });
        let half = plan(&FaultSpec {
            crash: Some(0.5),
            ..FaultSpec::default()
        });
        let mut fired = 0;
        for worker in 0..4u64 {
            for shard in 0..64u64 {
                assert!(!never.crashes_at(worker, shard));
                assert!(always.crashes_at(worker, shard));
                let d = half.crashes_at(worker, shard);
                assert_eq!(d, half.crashes_at(worker, shard), "decision not pure");
                fired += u64::from(d);
            }
        }
        // 256 fair-ish coins: a wildly skewed count means the roll is broken.
        assert!((64..=192).contains(&fired), "p=0.5 fired {fired}/256");
    }

    #[test]
    fn sites_and_seeds_are_independent() {
        let a = plan(&FaultSpec {
            seed: Some(1),
            crash: Some(0.5),
            stall: Some(0.5),
            ..FaultSpec::default()
        });
        let b = plan(&FaultSpec {
            seed: Some(2),
            crash: Some(0.5),
            stall: Some(0.5),
            ..FaultSpec::default()
        });
        let crash_a: Vec<bool> = (0..128).map(|s| a.crashes_at(0, s)).collect();
        let stall_a: Vec<bool> = (0..128).map(|s| a.stalls_at(0, s)).collect();
        let crash_b: Vec<bool> = (0..128).map(|s| b.crashes_at(0, s)).collect();
        assert_ne!(crash_a, stall_a, "sites share a decision stream");
        assert_ne!(crash_a, crash_b, "seeds share a decision stream");
    }

    #[test]
    fn schedule_mirrors_worker_hooks() {
        let p = plan(&FaultSpec {
            crash: Some(0.4),
            stall: Some(0.4),
            corrupt: Some(0.4),
            truncate: Some(0.4),
            torn_delta: Some(1.0),
            ..FaultSpec::default()
        });
        let shards: Vec<usize> = (0..32).collect();
        let events = p.schedule(7, &shards);
        // Nothing is scheduled after a crash; without one, the tear ends
        // the schedule.
        if let Some(pos) = events
            .iter()
            .position(|e| matches!(e, FaultEvent::Crash { .. }))
        {
            assert_eq!(pos, events.len() - 1, "events scheduled after a crash");
        } else {
            assert_eq!(events.last(), Some(&FaultEvent::TornDelta));
        }
        assert_eq!(events, p.schedule(7, &shards), "schedule not replayable");
    }

    #[test]
    fn spec_validation_rejects_bad_probabilities() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = FaultPlan::from_spec(&FaultSpec {
                stall: Some(bad),
                ..FaultSpec::default()
            });
            assert!(err.is_err(), "accepted stall = {bad}");
        }
    }

    #[test]
    fn env_payload_parses_and_rejects_unknowns() {
        let spec = parse_env_plan("seed=7, crash=0.25,stall=1.0,stall_ms=50,kill_after=4").unwrap();
        assert_eq!(spec.seed, Some(7));
        assert_eq!(spec.crash, Some(0.25));
        assert_eq!(spec.stall_ms, Some(50));
        assert_eq!(spec.kill_after, Some(4));
        assert!(parse_env_plan("explode=1").is_err());
        assert!(parse_env_plan("crash").is_err());
        assert!(parse_env_plan("crash=lots").is_err());
    }

    #[test]
    fn mangled_frames_change_but_stay_terminated() {
        let frame = "FNPRW1 ok 3 9 0123456789abcdef {\"x\":1.5}\n".to_string();
        let corrupted = corrupt_line(&frame);
        assert_ne!(corrupted, frame);
        assert!(corrupted.ends_with('\n'));
        assert_eq!(corrupted.len(), frame.len());
        let truncated = truncate_line(&frame);
        assert_ne!(truncated, frame);
        assert!(truncated.ends_with('\n'));
        assert!(truncated.len() < frame.len());
    }

    #[test]
    fn kill_switch_is_inert_below_threshold_and_when_disarmed() {
        arm_kill_switch(None);
        kill_switch_tick(); // must not abort
        arm_kill_switch(Some(1_000_000));
        kill_switch_tick(); // still far below the threshold
        arm_kill_switch(None);
    }
}
