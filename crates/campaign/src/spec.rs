//! Scenario specs: the serde-backed description of a campaign.
//!
//! A spec file (TOML or JSON) names a workload, its parameter grid, and
//! where to put the results. [`CampaignSpec`] is the raw deserialized
//! form — almost everything optional — and [`Campaign`] is the validated
//! form with defaults applied, which the executor consumes.

use fnpr_sched::DelayMethod;
use fnpr_synth::{Policy, TaskSetParams};
use serde::{Deserialize, Serialize};

use crate::error::CampaignError;
use crate::memo::ScenarioHasher;

/// Which experiment family a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Schedulability acceptance ratios over a (policy × utilization) grid
    /// (the experiment `acceptance_ratio` motivates; paper Section V).
    Acceptance,
    /// Theorem 1 / Figure 2 soundness sweep over random step curves, with
    /// optional simulator validation.
    Soundness,
}

/// Raw deserialized campaign spec (everything optional; see [`Campaign`]
/// for the defaults).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name, used in report headers and default output paths.
    pub name: Option<String>,
    /// Master seed. Every scenario's RNG stream is a pure function of this
    /// seed and the scenario's grid coordinates — never of thread count.
    pub seed: Option<u64>,
    /// Worker threads (CLI `--threads` overrides; default: all cores).
    pub threads: Option<usize>,
    /// Which workload to run.
    pub workload: Option<WorkloadKind>,
    /// Acceptance-workload parameters.
    pub acceptance: Option<AcceptanceSpec>,
    /// Soundness-workload parameters.
    pub soundness: Option<SoundnessSpec>,
    /// Output locations.
    pub output: Option<OutputSpec>,
}

/// A one-dimensional sweep axis: either an explicit `values` list or an
/// inclusive `start`/`stop` range with `step`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GridSpec {
    /// Range start (inclusive).
    pub start: Option<f64>,
    /// Range stop (inclusive, up to float slack).
    pub stop: Option<f64>,
    /// Range step (> 0).
    pub step: Option<f64>,
    /// Explicit values (overrides the range fields).
    pub values: Option<Vec<f64>>,
}

impl GridSpec {
    /// Expands the axis into concrete values.
    ///
    /// # Errors
    ///
    /// Rejects empty axes, non-positive steps and reversed ranges.
    pub fn expand(&self) -> Result<Vec<f64>, CampaignError> {
        if let Some(values) = &self.values {
            if values.is_empty() {
                return Err(CampaignError::Spec("grid `values` is empty".into()));
            }
            return Ok(values.clone());
        }
        let (Some(start), Some(stop)) = (self.start, self.stop) else {
            return Err(CampaignError::Spec(
                "grid needs either `values` or `start`/`stop`".into(),
            ));
        };
        let step = self.step.unwrap_or(0.1);
        if !start.is_finite()
            || !stop.is_finite()
            || !step.is_finite()
            || step <= 0.0
            || stop < start
        {
            return Err(CampaignError::Spec(format!(
                "bad grid range: start {start}, stop {stop}, step {step}"
            )));
        }
        let count = ((stop - start) / step + 1.5).floor() as usize;
        let values: Vec<f64> = (0..count)
            .map(|i| start + step * i as f64)
            .filter(|&u| u <= stop + 1e-9)
            .collect();
        if values.is_empty() {
            return Err(CampaignError::Spec(format!(
                "grid range expanded to no values: start {start}, stop {stop}, step {step}"
            )));
        }
        Ok(values)
    }
}

/// Acceptance-ratio workload parameters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AcceptanceSpec {
    /// Random task sets per grid point (default 200).
    pub sets_per_point: Option<usize>,
    /// Resampling budget per set: at most `sets_per_point ×` this many
    /// attempts per point (default 50).
    pub max_attempts_factor: Option<usize>,
    /// Scheduling policies to sweep (default: fixed-priority and EDF).
    pub policies: Option<Vec<Policy>>,
    /// Utilization axis (default 0.3..=0.9 step 0.1).
    pub utilizations: Option<GridSpec>,
    /// WCET-inflation methods to compare (default: all four).
    pub methods: Option<Vec<DelayMethod>>,
    /// `Qi` scale relative to each task's maximum admissible region
    /// (default 0.8).
    pub q_scale: Option<f64>,
    /// Delay-curve peak as a fraction of `Qi` (default 0.6).
    pub delay_frac: Option<f64>,
    /// Task-set generation template; its `utilization` field is replaced by
    /// each grid point's value (default [`TaskSetParams::default`]).
    pub taskset: Option<TaskSetParams>,
}

/// Soundness-sweep workload parameters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SoundnessSpec {
    /// Number of random curves (default 300).
    pub trials: Option<usize>,
    /// Trials per shard — the executor's work unit and CSV row granularity
    /// (default 1: one row per trial, like the original binary).
    pub trials_per_shard: Option<usize>,
    /// Whether to validate each bound against the discrete-event simulator
    /// (default true).
    pub simulate: Option<bool>,
    /// Task length `C` range (default `[50, 400]`).
    pub c_range: Option<(f64, f64)>,
    /// Step-curve segment count range, half-open (default `[2, 12)`).
    pub segments: Option<(u64, u64)>,
    /// Curve max value range (default `[1, 8]`).
    pub max_value_range: Option<(f64, f64)>,
    /// Slack of `Q` above the curve maximum (default `[0.5, 10]`).
    pub q_slack_range: Option<(f64, f64)>,
}

/// Where to write results. Relative paths resolve against the working
/// directory of the `fnpr-campaign` process.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OutputSpec {
    /// CSV aggregate path (`-` or absent: stdout).
    pub csv: Option<String>,
    /// JSON aggregate path (absent: not emitted unless `--json` is given).
    pub json: Option<String>,
}

/// A validated campaign: defaults applied, grids expanded, invariants
/// checked. This is what [`crate::run_campaign`] executes.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Spec-requested worker threads, if any.
    pub threads: Option<usize>,
    /// The workload with concrete parameters.
    pub workload: Workload,
    /// Output locations (raw; the CLI applies them).
    pub output: OutputSpec,
}

/// Validated workload parameters.
#[derive(Debug, Clone)]
pub enum Workload {
    /// See [`AcceptanceSpec`].
    Acceptance(AcceptanceParams),
    /// See [`SoundnessSpec`].
    Soundness(SoundnessParams),
}

/// Validated acceptance parameters (no options left).
#[derive(Debug, Clone)]
pub struct AcceptanceParams {
    /// Task sets per grid point.
    pub sets_per_point: usize,
    /// Attempt budget multiplier.
    pub max_attempts_factor: usize,
    /// Policies axis.
    pub policies: Vec<Policy>,
    /// Utilization axis.
    pub utilizations: Vec<f64>,
    /// Methods compared at every point.
    pub methods: Vec<DelayMethod>,
    /// `Qi` scale.
    pub q_scale: f64,
    /// Curve peak fraction of `Qi`.
    pub delay_frac: f64,
    /// Generation template (utilization replaced per point).
    pub taskset: TaskSetParams,
}

/// Validated soundness parameters (no options left).
#[derive(Debug, Clone)]
pub struct SoundnessParams {
    /// Trial count.
    pub trials: usize,
    /// Executor work unit.
    pub trials_per_shard: usize,
    /// Simulator validation on/off.
    pub simulate: bool,
    /// `C` range.
    pub c_range: (f64, f64),
    /// Segment count range (half-open).
    pub segments: (u64, u64),
    /// Curve max value range.
    pub max_value_range: (f64, f64),
    /// `Q` slack range.
    pub q_slack_range: (f64, f64),
}

impl CampaignSpec {
    /// Parses a spec from TOML or JSON text, sniffing the format: anything
    /// whose first non-blank byte is `{` parses as JSON, else TOML.
    ///
    /// # Errors
    ///
    /// Propagates parse errors from either format.
    pub fn parse(text: &str) -> Result<Self, CampaignError> {
        if text.trim_start().starts_with('{') {
            Ok(serde_json::from_str(text)?)
        } else {
            Ok(toml::from_str(text)?)
        }
    }

    /// Loads and parses a spec file.
    ///
    /// # Errors
    ///
    /// I/O and parse errors.
    pub fn load(path: &std::path::Path) -> Result<Self, CampaignError> {
        Self::parse(&std::fs::read_to_string(path)?)
    }

    /// Applies defaults and checks invariants.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] describing the first problem found.
    pub fn validate(&self) -> Result<Campaign, CampaignError> {
        let workload = match self.workload {
            Some(WorkloadKind::Acceptance) | None => {
                Workload::Acceptance(self.validate_acceptance()?)
            }
            Some(WorkloadKind::Soundness) => Workload::Soundness(self.validate_soundness()?),
        };
        if let Some(0) = self.threads {
            return Err(CampaignError::Spec("`threads` must be >= 1".into()));
        }
        Ok(Campaign {
            name: self.name.clone().unwrap_or_else(|| "campaign".into()),
            seed: self.seed.unwrap_or(2012),
            threads: self.threads,
            workload,
            output: self.output.clone().unwrap_or_default(),
        })
    }

    fn validate_acceptance(&self) -> Result<AcceptanceParams, CampaignError> {
        let a = self.acceptance.clone().unwrap_or_default();
        let params = AcceptanceParams {
            sets_per_point: a.sets_per_point.unwrap_or(200),
            max_attempts_factor: a.max_attempts_factor.unwrap_or(50),
            policies: a
                .policies
                .unwrap_or_else(|| vec![Policy::FixedPriority, Policy::Edf]),
            utilizations: a
                .utilizations
                .unwrap_or(GridSpec {
                    start: Some(0.3),
                    stop: Some(0.9),
                    step: Some(0.1),
                    values: None,
                })
                .expand()?,
            methods: a.methods.unwrap_or_else(|| {
                vec![
                    DelayMethod::None,
                    DelayMethod::Eq4,
                    DelayMethod::Algorithm1,
                    DelayMethod::Algorithm1Capped,
                ]
            }),
            q_scale: a.q_scale.unwrap_or(0.8),
            delay_frac: a.delay_frac.unwrap_or(0.6),
            taskset: a.taskset.unwrap_or_default(),
        };
        if params.sets_per_point == 0 {
            return Err(CampaignError::Spec("`sets_per_point` must be >= 1".into()));
        }
        if params.policies.is_empty() || params.methods.is_empty() {
            return Err(CampaignError::Spec(
                "`policies` and `methods` must be non-empty".into(),
            ));
        }
        if !(params.q_scale > 0.0 && params.q_scale <= 1.0) {
            return Err(CampaignError::Spec(format!(
                "`q_scale` must be in (0, 1], got {}",
                params.q_scale
            )));
        }
        if !(params.delay_frac > 0.0 && params.delay_frac < 1.0) {
            return Err(CampaignError::Spec(format!(
                "`delay_frac` must be in (0, 1) to keep analyses convergent, got {}",
                params.delay_frac
            )));
        }
        for &u in &params.utilizations {
            if !(u > 0.0 && u < 1.0) {
                return Err(CampaignError::Spec(format!(
                    "utilization grid value {u} outside (0, 1)"
                )));
            }
        }
        if params.taskset.n == 0 {
            return Err(CampaignError::Spec("taskset `n` must be >= 1".into()));
        }
        Ok(params)
    }

    fn validate_soundness(&self) -> Result<SoundnessParams, CampaignError> {
        let s = self.soundness.clone().unwrap_or_default();
        let params = SoundnessParams {
            trials: s.trials.unwrap_or(300),
            trials_per_shard: s.trials_per_shard.unwrap_or(1).max(1),
            simulate: s.simulate.unwrap_or(true),
            c_range: s.c_range.unwrap_or((50.0, 400.0)),
            segments: s.segments.unwrap_or((2, 12)),
            max_value_range: s.max_value_range.unwrap_or((1.0, 8.0)),
            q_slack_range: s.q_slack_range.unwrap_or((0.5, 10.0)),
        };
        if params.trials == 0 {
            return Err(CampaignError::Spec("`trials` must be >= 1".into()));
        }
        for (name, (lo, hi)) in [
            ("c_range", params.c_range),
            ("max_value_range", params.max_value_range),
            ("q_slack_range", params.q_slack_range),
        ] {
            if !(lo > 0.0 && hi > lo) {
                return Err(CampaignError::Spec(format!(
                    "`{name}` must satisfy 0 < lo < hi, got ({lo}, {hi})"
                )));
            }
        }
        if params.segments.0 < 1 || params.segments.1 <= params.segments.0 {
            return Err(CampaignError::Spec(format!(
                "`segments` must satisfy 1 <= lo < hi, got {:?}",
                params.segments
            )));
        }
        Ok(params)
    }
}

impl Campaign {
    /// The workload discriminant (for reports and dispatch).
    #[must_use]
    pub fn workload_kind(&self) -> WorkloadKind {
        match self.workload {
            Workload::Acceptance(_) => WorkloadKind::Acceptance,
            Workload::Soundness(_) => WorkloadKind::Soundness,
        }
    }

    /// A stable structural hash of everything that determines results
    /// (not outputs or thread counts): the campaign id in reports.
    #[must_use]
    pub fn scenario_hash(&self) -> u64 {
        let h = ScenarioHasher::new(0x4341_4d50) // "CAMP"
            .str(&self.name)
            .word(self.seed);
        match &self.workload {
            Workload::Acceptance(a) => {
                let mut h = h
                    .word(1)
                    .word(a.sets_per_point as u64)
                    .word(a.max_attempts_factor as u64)
                    .f64(a.q_scale)
                    .f64(a.delay_frac)
                    .word(a.taskset.n as u64)
                    .f64(a.taskset.period_range.0)
                    .f64(a.taskset.period_range.1)
                    .f64(a.taskset.deadline_factor.0)
                    .f64(a.taskset.deadline_factor.1);
                for p in &a.policies {
                    h = h.word(match p {
                        Policy::FixedPriority => 11,
                        Policy::Edf => 13,
                    });
                }
                for m in &a.methods {
                    h = h.word(method_tag(*m));
                }
                for &u in &a.utilizations {
                    h = h.f64(u);
                }
                h.finish()
            }
            Workload::Soundness(s) => h
                .word(2)
                .word(s.trials as u64)
                .word(u64::from(s.simulate))
                .f64(s.c_range.0)
                .f64(s.c_range.1)
                .word(s.segments.0)
                .word(s.segments.1)
                .f64(s.max_value_range.0)
                .f64(s.max_value_range.1)
                .f64(s.q_slack_range.0)
                .f64(s.q_slack_range.1)
                .finish(),
        }
    }
}

/// A stable tag per delay method (used in hashes and RNG stream
/// derivation).
#[must_use]
pub fn method_tag(m: DelayMethod) -> u64 {
    match m {
        DelayMethod::None => 1,
        DelayMethod::Eq4 => 2,
        DelayMethod::Algorithm1 => 3,
        DelayMethod::Algorithm1Capped => 4,
    }
}

/// Human-readable CSV labels for methods, matching the original
/// `acceptance_ratio` binary's column names.
#[must_use]
pub fn method_label(m: DelayMethod) -> &'static str {
    match m {
        DelayMethod::None => "no_delay",
        DelayMethod::Eq4 => "eq4",
        DelayMethod::Algorithm1 => "algorithm1",
        DelayMethod::Algorithm1Capped => "algorithm1_capped",
    }
}

/// Human-readable CSV labels for policies.
#[must_use]
pub fn policy_label(p: Policy) -> &'static str {
    match p {
        Policy::FixedPriority => "fp",
        Policy::Edf => "edf",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_range_expansion_is_inclusive() {
        let grid = GridSpec {
            start: Some(0.3),
            stop: Some(0.9),
            step: Some(0.1),
            values: None,
        };
        let values = grid.expand().unwrap();
        assert_eq!(values.len(), 7);
        assert!((values[0] - 0.3).abs() < 1e-12);
        assert!((values[6] - 0.9).abs() < 1e-9);
    }

    #[test]
    fn grid_rejects_degenerate_ranges() {
        for (start, stop, step) in [
            (f64::NAN, 0.9, 0.1),
            (0.3, f64::NAN, 0.1),
            (0.3, 0.9, f64::NAN),
            (0.3, 0.9, 0.0),
            (0.3, 0.9, f64::INFINITY),
            (0.9, 0.3, 0.1),
        ] {
            let grid = GridSpec {
                start: Some(start),
                stop: Some(stop),
                step: Some(step),
                values: None,
            };
            assert!(
                grid.expand().is_err(),
                "accepted {start}..{stop} step {step}"
            );
        }
    }

    #[test]
    fn grid_explicit_values_win() {
        let grid = GridSpec {
            start: Some(0.0),
            stop: Some(1.0),
            step: Some(0.5),
            values: Some(vec![0.42]),
        };
        assert_eq!(grid.expand().unwrap(), vec![0.42]);
    }

    #[test]
    fn toml_spec_round_trip() {
        let text = r#"
name = "smoke"
seed = 7
workload = "acceptance"

[acceptance]
sets_per_point = 10
policies = ["fixed_priority", "edf"]
methods = ["none", "eq4", "algorithm1"]
utilizations = { values = [0.5, 0.6] }

[acceptance.taskset]
n = 4
utilization = 0.5
period_range = [10.0, 100.0]
deadline_factor = [1.0, 1.0]

[output]
csv = "out.csv"
json = "out.json"
"#;
        let spec = CampaignSpec::parse(text).unwrap();
        let campaign = spec.validate().unwrap();
        assert_eq!(campaign.name, "smoke");
        assert_eq!(campaign.seed, 7);
        let Workload::Acceptance(a) = &campaign.workload else {
            panic!("expected acceptance");
        };
        assert_eq!(a.sets_per_point, 10);
        assert_eq!(a.policies, vec![Policy::FixedPriority, Policy::Edf]);
        assert_eq!(a.methods.len(), 3);
        assert_eq!(a.utilizations, vec![0.5, 0.6]);
        assert_eq!(a.taskset.n, 4);
        assert_eq!(campaign.output.csv.as_deref(), Some("out.csv"));
    }

    #[test]
    fn json_spec_parses_too() {
        let spec = CampaignSpec::parse(r#"{"workload": "soundness", "soundness": {"trials": 5}}"#)
            .unwrap();
        let campaign = spec.validate().unwrap();
        let Workload::Soundness(s) = &campaign.workload else {
            panic!("expected soundness");
        };
        assert_eq!(s.trials, 5);
        assert!(s.simulate);
    }

    #[test]
    fn defaults_validate() {
        let campaign = CampaignSpec::default().validate().unwrap();
        assert_eq!(campaign.seed, 2012);
        let Workload::Acceptance(a) = &campaign.workload else {
            panic!("default workload is acceptance");
        };
        assert_eq!(a.sets_per_point, 200);
        assert_eq!(a.utilizations.len(), 7);
        assert_eq!(a.methods.len(), 4);
    }

    #[test]
    fn rejects_bad_specs() {
        let spec = CampaignSpec {
            acceptance: Some(AcceptanceSpec {
                delay_frac: Some(1.5),
                ..AcceptanceSpec::default()
            }),
            ..CampaignSpec::default()
        };
        assert!(spec.validate().is_err());

        let spec = CampaignSpec {
            workload: Some(WorkloadKind::Soundness),
            soundness: Some(SoundnessSpec {
                trials: Some(0),
                ..SoundnessSpec::default()
            }),
            ..CampaignSpec::default()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn scenario_hash_tracks_inputs_not_outputs() {
        let base = CampaignSpec {
            seed: Some(1),
            ..CampaignSpec::default()
        };
        let a = base.validate().unwrap().scenario_hash();
        let mut with_output = base.clone();
        with_output.output = Some(OutputSpec {
            csv: Some("x.csv".into()),
            json: None,
        });
        assert_eq!(a, with_output.validate().unwrap().scenario_hash());
        let mut other_seed = base;
        other_seed.seed = Some(2);
        assert_ne!(a, other_seed.validate().unwrap().scenario_hash());
    }
}
