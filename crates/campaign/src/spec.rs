//! Scenario specs: the serde-backed description of a campaign.
//!
//! A spec file (TOML or JSON) names a workload, its parameter grid, and
//! where to put the results. [`CampaignSpec`] is the raw deserialized
//! form — almost everything optional — and [`Campaign`] is the validated
//! form with defaults applied, which the executor consumes.

use fnpr_multicore::Heuristic;
use fnpr_sched::DelayMethod;
use fnpr_synth::{Policy, ProgramGenParams, TaskSetParams};
use serde::{Deserialize, Serialize};

use crate::error::CampaignError;
use crate::fault::{FaultPlan, FaultSpec};
use crate::memo::ScenarioHasher;

/// Which experiment family a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Schedulability acceptance ratios over a (policy × utilization) grid
    /// (the experiment `acceptance_ratio` motivates; paper Section V).
    Acceptance,
    /// Theorem 1 / Figure 2 soundness sweep over random step curves, with
    /// optional simulator validation.
    Soundness,
    /// Multiprocessor acceptance ratios over an (m × utilization ×
    /// allocation × policy) grid, with m-core simulator soundness checks.
    Multicore,
    /// Generated structured programs through the full Section IV pipeline
    /// (compile → CRPD → delay curve → bounds), swept over cache-geometry
    /// and program-shape axes against `Qi`.
    Cfg,
}

impl WorkloadKind {
    /// The spec-file key for this workload (the `workload = "..."` value
    /// and the name of its parameter table) — also the suffix of its
    /// per-point timing histogram (`campaign.point.micros.<key>`) and the
    /// `workload` field of run-ledger records.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            WorkloadKind::Acceptance => "acceptance",
            WorkloadKind::Soundness => "soundness",
            WorkloadKind::Multicore => "multicore",
            WorkloadKind::Cfg => "cfg",
        }
    }
}

/// How tasks reach cores in the multicore workload: one of the partitioned
/// bin-packing heuristics, or global scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Allocation {
    /// Partitioned, first-fit decreasing.
    FirstFit,
    /// Partitioned, worst-fit decreasing (spreads load).
    WorstFit,
    /// Partitioned, best-fit decreasing (packs tight).
    BestFit,
    /// Global scheduling (density / BCL tests, m-core dispatcher).
    Global,
}

impl Allocation {
    /// The partitioned heuristic, or `None` for global scheduling.
    #[must_use]
    pub fn heuristic(self) -> Option<Heuristic> {
        match self {
            Allocation::FirstFit => Some(Heuristic::FirstFit),
            Allocation::WorstFit => Some(Heuristic::WorstFit),
            Allocation::BestFit => Some(Heuristic::BestFit),
            Allocation::Global => None,
        }
    }
}

/// Raw deserialized campaign spec (everything optional; see [`Campaign`]
/// for the defaults).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name, used in report headers and default output paths.
    pub name: Option<String>,
    /// Master seed. Every scenario's RNG stream is a pure function of this
    /// seed and the scenario's grid coordinates — never of thread count.
    pub seed: Option<u64>,
    /// Worker threads (CLI `--threads` overrides; default: all cores).
    pub threads: Option<usize>,
    /// Which workload to run. When absent and exactly one workload table
    /// (`[acceptance]` / `[soundness]` / `[multicore]` / `[cfg]`) is
    /// present, that workload is inferred; otherwise the default is
    /// acceptance.
    pub workload: Option<WorkloadKind>,
    /// Acceptance-workload parameters.
    pub acceptance: Option<AcceptanceSpec>,
    /// Soundness-workload parameters.
    pub soundness: Option<SoundnessSpec>,
    /// Multicore-workload parameters.
    pub multicore: Option<MulticoreSpec>,
    /// CFG-workload parameters.
    pub cfg: Option<CfgSpec>,
    /// Output locations.
    pub output: Option<OutputSpec>,
    /// Persistent result store ([`crate::store`]).
    pub store: Option<StoreSpec>,
    /// Observability settings ([`TelemetrySpec`]).
    pub telemetry: Option<TelemetrySpec>,
    /// Executor backend selection ([`ExecutorSpec`]).
    pub executor: Option<ExecutorSpec>,
    /// Deterministic fault-injection schedule ([`FaultSpec`]); inert
    /// unless the `FNPR_FAULT` environment variable arms it.
    pub fault: Option<FaultSpec>,
}

/// A one-dimensional sweep axis: either an explicit `values` list or an
/// inclusive `start`/`stop` range with `step`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GridSpec {
    /// Range start (inclusive).
    pub start: Option<f64>,
    /// Range stop (inclusive, up to float slack).
    pub stop: Option<f64>,
    /// Range step (> 0).
    pub step: Option<f64>,
    /// Explicit values (overrides the range fields).
    pub values: Option<Vec<f64>>,
}

impl GridSpec {
    /// Expands the axis into concrete values.
    ///
    /// # Errors
    ///
    /// Rejects empty axes, non-positive steps and reversed ranges.
    pub fn expand(&self) -> Result<Vec<f64>, CampaignError> {
        if let Some(values) = &self.values {
            if values.is_empty() {
                return Err(CampaignError::Spec("grid `values` is empty".into()));
            }
            return Ok(values.clone());
        }
        let (Some(start), Some(stop)) = (self.start, self.stop) else {
            return Err(CampaignError::Spec(
                "grid needs either `values` or `start`/`stop`".into(),
            ));
        };
        let step = self.step.unwrap_or(0.1);
        if !start.is_finite()
            || !stop.is_finite()
            || !step.is_finite()
            || step <= 0.0
            || stop < start
        {
            return Err(CampaignError::Spec(format!(
                "bad grid range: start {start}, stop {stop}, step {step}"
            )));
        }
        let count = ((stop - start) / step + 1.5).floor() as usize;
        let values: Vec<f64> = (0..count)
            .map(|i| start + step * i as f64)
            .filter(|&u| u <= stop + 1e-9)
            .collect();
        if values.is_empty() {
            return Err(CampaignError::Spec(format!(
                "grid range expanded to no values: start {start}, stop {stop}, step {step}"
            )));
        }
        Ok(values)
    }
}

/// Acceptance-ratio workload parameters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AcceptanceSpec {
    /// Random task sets per grid point (default 200).
    pub sets_per_point: Option<usize>,
    /// Resampling budget per set: at most `sets_per_point ×` this many
    /// attempts per point (default 50).
    pub max_attempts_factor: Option<usize>,
    /// Scheduling policies to sweep (default: fixed-priority and EDF).
    pub policies: Option<Vec<Policy>>,
    /// Utilization axis (default 0.3..=0.9 step 0.1).
    pub utilizations: Option<GridSpec>,
    /// WCET-inflation methods to compare (default: all four).
    pub methods: Option<Vec<DelayMethod>>,
    /// `Qi` scale relative to each task's maximum admissible region
    /// (default 0.8).
    pub q_scale: Option<f64>,
    /// Delay-curve peak as a fraction of `Qi` (default 0.6).
    pub delay_frac: Option<f64>,
    /// Task-set generation template; its `utilization` field is replaced by
    /// each grid point's value (default [`TaskSetParams::default`]).
    pub taskset: Option<TaskSetParams>,
}

/// Soundness-sweep workload parameters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SoundnessSpec {
    /// Number of random curves (default 300).
    pub trials: Option<usize>,
    /// Trials per shard — the executor's work unit and CSV row granularity
    /// (default 1: one row per trial, like the original binary).
    pub trials_per_shard: Option<usize>,
    /// Whether to validate each bound against the discrete-event simulator
    /// (default true).
    pub simulate: Option<bool>,
    /// Task length `C` range (default `[50, 400]`).
    pub c_range: Option<(f64, f64)>,
    /// Step-curve segment count range, half-open (default `[2, 12)`).
    pub segments: Option<(u64, u64)>,
    /// Curve max value range (default `[1, 8]`).
    pub max_value_range: Option<(f64, f64)>,
    /// Slack of `Q` above the curve maximum (default `[0.5, 10]`).
    pub q_slack_range: Option<(f64, f64)>,
}

/// Multicore-workload parameters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MulticoreSpec {
    /// Random task sets per grid point (default 60).
    pub sets_per_point: Option<usize>,
    /// Resampling budget per set (default 50 attempts).
    pub max_attempts_factor: Option<usize>,
    /// Core-count axis (default `[2, 4]`).
    pub cores: Option<Vec<usize>>,
    /// Tasks per core: `n = m × tasks_per_core` (default 3).
    pub tasks_per_core: Option<usize>,
    /// Scheduling policies to sweep (default: fixed-priority and EDF).
    pub policies: Option<Vec<Policy>>,
    /// Allocation axis (default: all three heuristics plus global).
    pub allocations: Option<Vec<Allocation>>,
    /// *Per-core* utilization axis: each set targets `m·U` total
    /// (default 0.3..=0.7 step 0.1).
    pub utilizations: Option<GridSpec>,
    /// WCET-inflation methods to compare (default: all four).
    pub methods: Option<Vec<DelayMethod>>,
    /// `Qi` scale: fraction of the admissible bound (partitioned) or of
    /// the WCET (global); default 0.8.
    pub q_scale: Option<f64>,
    /// Delay-curve peak as a fraction of `Qi` (default 0.6).
    pub delay_frac: Option<f64>,
    /// Run the m-core simulator against the Algorithm 1 per-job bound on
    /// sampled instances (default true).
    pub simulate: Option<bool>,
    /// Instances per grid point fed to the simulator (default 2).
    pub sim_per_point: Option<usize>,
    /// Simulation horizon as a multiple of the largest period (default 3).
    pub sim_horizon_factor: Option<f64>,
    /// Task-set generation template; `n` and `utilization` are replaced by
    /// the grid (default [`TaskSetParams::default`]).
    pub taskset: Option<TaskSetParams>,
}

/// CFG-workload parameters: generated structured programs through the full
/// pipeline, swept over program-shape axes (depth × loop bound × data
/// footprint), cache-geometry axes (sets × associativity × line size ×
/// reload cost) and a `Qi` axis.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CfgSpec {
    /// Generated programs per grid point (default 8).
    pub programs_per_point: Option<usize>,
    /// Free-form label prefixed to every row's shape tag (default none).
    /// Arbitrary text is fine — CSV output quotes it per RFC 4180.
    pub tag: Option<String>,
    /// Program nesting-depth axis (default `[2, 3]`; 0 = single block).
    pub depths: Option<Vec<usize>>,
    /// Maximum-loop-iteration axis (default `[4]`).
    pub loop_iterations: Option<Vec<u64>>,
    /// Data-footprint axis: distinct data lines per program (default
    /// `[8]`; 0 = instruction fetches only).
    pub footprints: Option<Vec<u64>>,
    /// `Qi` axis as fractions of each program's WCET (default
    /// `[0.25, 0.5]`).
    pub q_scales: Option<GridSpec>,
    /// Cache-set axis (default `[32]`).
    pub sets: Option<Vec<usize>>,
    /// Associativity axis (default `[1]`).
    pub associativity: Option<Vec<usize>>,
    /// Line-size axis in bytes (default `[16]`; at most the generator's
    /// data stride, [`fnpr_synth::DATA_STRIDE`], so footprint entries
    /// cannot alias onto one line).
    pub line_bytes: Option<Vec<u64>>,
    /// Block-reload-time axis (default `[10.0]`).
    pub reload_cost: Option<Vec<f64>>,
    /// Program-generation template; `max_depth`, `max_loop_iterations` and
    /// `footprint_lines` are replaced by the grid axes.
    pub program: Option<ProgramSpec>,
}

/// Optional overrides for the non-axis program-generation parameters (see
/// [`fnpr_synth::ProgramGenParams`] for the semantics and defaults).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProgramSpec {
    /// Maximum children of a sequence region.
    pub max_sequence: Option<usize>,
    /// Per-block execution-time range.
    pub cost_range: Option<(f64, f64)>,
    /// Probability of a region being a branch.
    pub branch_probability: Option<f64>,
    /// Probability of a region being a loop.
    pub loop_probability: Option<f64>,
    /// Code bytes per basic block.
    pub block_bytes: Option<u64>,
    /// Inclusive range of data accesses per basic block.
    pub accesses_per_block: Option<(usize, usize)>,
}

/// Where to write results. Relative paths resolve against the working
/// directory of the `fnpr-campaign` process.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OutputSpec {
    /// CSV aggregate path (`-` or absent: stdout).
    pub csv: Option<String>,
    /// JSON aggregate path (absent: not emitted unless `--json` is given).
    pub json: Option<String>,
}

/// The persistent, content-addressed result store ([`crate::store`]):
/// finished grid points and shared `(curve, Q)` bounds are appended here
/// keyed by structural scenario hashes, so warm re-runs and grid
/// *extensions* restore previously measured points instead of recomputing
/// them (aggregates stay byte-identical either way). The CLI's `--store`
/// flag overrides the path; restored/computed counts print on stderr.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StoreSpec {
    /// Store file path (relative paths resolve against the working
    /// directory). Required when the `[store]` table is present.
    pub path: Option<String>,
}

/// Optional observability settings (the `fnpr-obs` side channel): where to
/// write the metrics snapshot and Chrome trace, and whether to paint the
/// live progress line. The CLI's `--metrics`/`--trace-out` flags override
/// the paths. Like `[output]` and `[store]`, telemetry is **not** part of
/// [`Campaign::scenario_hash`] — observing a run cannot change what it
/// computes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TelemetrySpec {
    /// Metrics-snapshot JSON path (absent: not emitted unless `--metrics`
    /// is given).
    pub metrics: Option<String>,
    /// Chrome trace-event JSON path (absent: spans are counted but not
    /// buffered unless `--trace-out` is given).
    pub trace: Option<String>,
    /// Run-ledger path (`LEDGER.jsonl`; absent: no run record is appended
    /// unless `--ledger` is given). See [`fnpr_obs::ledger`] and the
    /// `fnpr-campaign history` subcommand.
    pub ledger: Option<String>,
    /// Live stderr progress line (default true; `--quiet` suppresses).
    pub progress: Option<bool>,
}

/// How campaign shards execute: the in-process thread pool (the default)
/// or a pool of worker subprocesses re-invoking the current binary
/// ([`crate::backend`]). Because every shard's RNG stream is a pure
/// function of the campaign seed and its grid coordinates, backend choice
/// (and worker count) cannot change any aggregate — so, like `[output]`,
/// `[store]` and `[telemetry]`, this table is **not** part of
/// [`Campaign::scenario_hash`]. The CLI's `--backend`/`--workers` flags
/// override both fields.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExecutorSpec {
    /// `"local"` (in-process threads, the default) or `"process"`
    /// (worker subprocesses with delta stores).
    pub backend: Option<String>,
    /// Worker-process count for the process backend (default: the
    /// resolved thread count).
    pub workers: Option<usize>,
    /// Watchdog inactivity timeout in seconds: a worker that ships no
    /// frame for this long is killed and its unfinished shards are
    /// redispatched. Absent: no watchdog (a hung worker hangs the run).
    pub timeout_secs: Option<f64>,
    /// Redispatch rounds for shards reclaimed from dead workers before
    /// the coordinator computes them locally (default 1).
    pub max_retries: Option<usize>,
}

/// A validated campaign: defaults applied, grids expanded, invariants
/// checked. This is what [`crate::run_campaign`] executes.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Spec-requested worker threads, if any.
    pub threads: Option<usize>,
    /// The workload with concrete parameters.
    pub workload: Workload,
    /// Output locations (raw; the CLI applies them).
    pub output: OutputSpec,
    /// Result-store path, when the spec enables persistence. Like the
    /// outputs, this is **not** part of [`Campaign::scenario_hash`] — where
    /// results are cached cannot change what they are.
    pub store_path: Option<String>,
    /// Observability settings (raw; the CLI applies them). Excluded from
    /// [`Campaign::scenario_hash`] like the outputs and the store path.
    pub telemetry: TelemetrySpec,
    /// Executor backend selection (raw; the runner applies defaults).
    /// Excluded from [`Campaign::scenario_hash`] — where shards run
    /// cannot change what they compute.
    pub executor: ExecutorSpec,
    /// Fault-injection schedule, when the spec carries a `[fault]` table.
    /// Excluded from [`Campaign::scenario_hash`]: every recovery path
    /// recomputes the same pure functions, so an injected failure
    /// schedule cannot change what a campaign computes.
    pub fault: Option<FaultSpec>,
    /// The raw spec this campaign validated from: the process backend
    /// re-serializes it as the worker job payload, so workers re-validate
    /// the *identical* scenario.
    pub source: CampaignSpec,
}

/// Validated workload parameters.
#[derive(Debug, Clone)]
pub enum Workload {
    /// See [`AcceptanceSpec`].
    Acceptance(AcceptanceParams),
    /// See [`SoundnessSpec`].
    Soundness(SoundnessParams),
    /// See [`MulticoreSpec`].
    Multicore(MulticoreParams),
    /// See [`CfgSpec`].
    Cfg(CfgParams),
}

/// Validated acceptance parameters (no options left).
#[derive(Debug, Clone)]
pub struct AcceptanceParams {
    /// Task sets per grid point.
    pub sets_per_point: usize,
    /// Attempt budget multiplier.
    pub max_attempts_factor: usize,
    /// Policies axis.
    pub policies: Vec<Policy>,
    /// Utilization axis.
    pub utilizations: Vec<f64>,
    /// Methods compared at every point.
    pub methods: Vec<DelayMethod>,
    /// `Qi` scale.
    pub q_scale: f64,
    /// Curve peak fraction of `Qi`.
    pub delay_frac: f64,
    /// Generation template (utilization replaced per point).
    pub taskset: TaskSetParams,
}

/// Validated soundness parameters (no options left).
#[derive(Debug, Clone)]
pub struct SoundnessParams {
    /// Trial count.
    pub trials: usize,
    /// Executor work unit.
    pub trials_per_shard: usize,
    /// Simulator validation on/off.
    pub simulate: bool,
    /// `C` range.
    pub c_range: (f64, f64),
    /// Segment count range (half-open).
    pub segments: (u64, u64),
    /// Curve max value range.
    pub max_value_range: (f64, f64),
    /// `Q` slack range.
    pub q_slack_range: (f64, f64),
}

/// Validated multicore parameters (no options left).
#[derive(Debug, Clone)]
pub struct MulticoreParams {
    /// Task sets per grid point.
    pub sets_per_point: usize,
    /// Attempt budget per set.
    pub max_attempts_factor: usize,
    /// Core-count axis.
    pub cores: Vec<usize>,
    /// Tasks per core.
    pub tasks_per_core: usize,
    /// Policies axis.
    pub policies: Vec<Policy>,
    /// Allocation axis.
    pub allocations: Vec<Allocation>,
    /// Per-core utilization axis.
    pub utilizations: Vec<f64>,
    /// Methods compared at every point.
    pub methods: Vec<DelayMethod>,
    /// `Qi` scale.
    pub q_scale: f64,
    /// Curve peak fraction of `Qi`.
    pub delay_frac: f64,
    /// Simulator validation on/off.
    pub simulate: bool,
    /// Simulated instances per point.
    pub sim_per_point: usize,
    /// Horizon multiple of the largest period.
    pub sim_horizon_factor: f64,
    /// Generation template (`n`/`utilization` replaced per point).
    pub taskset: TaskSetParams,
}

/// Validated CFG-workload parameters (no options left).
#[derive(Debug, Clone)]
pub struct CfgParams {
    /// Programs per grid point.
    pub programs_per_point: usize,
    /// User label prefixed to shape tags (may be empty).
    pub tag: String,
    /// Depth axis.
    pub depths: Vec<usize>,
    /// Loop-iteration axis.
    pub loop_iterations: Vec<u64>,
    /// Footprint axis.
    pub footprints: Vec<u64>,
    /// `Qi` axis (fractions of WCET).
    pub q_scales: Vec<f64>,
    /// Cache-set axis.
    pub sets: Vec<usize>,
    /// Associativity axis.
    pub associativity: Vec<usize>,
    /// Line-size axis.
    pub line_bytes: Vec<u64>,
    /// Reload-cost axis.
    pub reload_costs: Vec<f64>,
    /// Generation template (axis fields replaced per point).
    pub program: ProgramGenParams,
}

impl CampaignSpec {
    /// Parses a spec from TOML or JSON text, sniffing the format: anything
    /// whose first non-blank byte is `{` parses as JSON, else TOML.
    ///
    /// # Errors
    ///
    /// Propagates parse errors from either format.
    pub fn parse(text: &str) -> Result<Self, CampaignError> {
        if text.trim_start().starts_with('{') {
            Ok(serde_json::from_str(text)?)
        } else {
            Ok(toml::from_str(text)?)
        }
    }

    /// Loads and parses a spec file.
    ///
    /// # Errors
    ///
    /// I/O and parse errors.
    pub fn load(path: &std::path::Path) -> Result<Self, CampaignError> {
        Self::parse(&std::fs::read_to_string(path)?)
    }

    /// Loads, parses *and validates* a spec file, annotating semantic
    /// validation failures with the offending TOML line: the shim parser's
    /// key/line index maps the first `` `key` `` a validation message
    /// names back to where that key was written — looked up under the
    /// *active workload's* table first, so a stray `q_scale` in an unused
    /// table cannot steal the annotation. (Shape errors — wrong type,
    /// unknown variant — are already line-annotated by the parser itself.)
    ///
    /// # Errors
    ///
    /// I/O, parse and validation errors.
    pub fn load_validated(path: &std::path::Path) -> Result<Campaign, CampaignError> {
        let text = std::fs::read_to_string(path)?;
        if text.trim_start().starts_with('{') {
            return Self::parse(&text)?.validate();
        }
        // One parse: deserialize from the spanned document's value tree.
        let (value, index) = toml::parse_document_spanned(&text)?;
        let spec: CampaignSpec =
            serde::Deserialize::from_value(&value).map_err(|e| index.annotate(e))?;
        let workload_table = spec
            .workload
            .or_else(|| spec.inferred_workload())
            .unwrap_or(WorkloadKind::Acceptance)
            .key();
        spec.validate().map_err(|e| match e {
            CampaignError::Spec(msg) => {
                let annotated = backquoted_key(&msg)
                    .and_then(|key| {
                        index
                            .line_of(&format!("{workload_table}.{key}"))
                            .map(|line| (format!("{workload_table}.{key}"), line))
                            .or_else(|| index.line_of(key).map(|line| (key.to_string(), line)))
                            .or_else(|| index.find_key(key).map(|(p, line)| (p.to_string(), line)))
                    })
                    .map(|(path, line)| format!("line {line} (key `{path}`): {msg}"));
                CampaignError::Spec(annotated.unwrap_or(msg))
            }
            other => other,
        })
    }

    /// Applies defaults and checks invariants.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] describing the first problem found.
    pub fn validate(&self) -> Result<Campaign, CampaignError> {
        let workload = match self.workload.or_else(|| self.inferred_workload()) {
            Some(WorkloadKind::Acceptance) | None => {
                Workload::Acceptance(self.validate_acceptance()?)
            }
            Some(WorkloadKind::Soundness) => Workload::Soundness(self.validate_soundness()?),
            Some(WorkloadKind::Multicore) => Workload::Multicore(self.validate_multicore()?),
            Some(WorkloadKind::Cfg) => Workload::Cfg(self.validate_cfg()?),
        };
        if let Some(0) = self.threads {
            return Err(CampaignError::Spec("`threads` must be >= 1".into()));
        }
        let executor = self.executor.clone().unwrap_or_default();
        if let Some(backend) = executor.backend.as_deref() {
            if backend != "local" && backend != "process" {
                return Err(CampaignError::Spec(format!(
                    "`backend` must be \"local\" or \"process\", not \"{backend}\""
                )));
            }
        }
        if let Some(0) = executor.workers {
            return Err(CampaignError::Spec("`workers` must be >= 1".into()));
        }
        if let Some(timeout) = executor.timeout_secs {
            if !timeout.is_finite() || timeout <= 0.0 {
                return Err(CampaignError::Spec(
                    "`timeout_secs` must be a positive number of seconds".into(),
                ));
            }
        }
        if let Some(fault) = &self.fault {
            // Validate the schedule now (fail fast on a bad table) even
            // though injection only happens under FNPR_FAULT arming.
            FaultPlan::from_spec(fault)?;
        }
        let store_path = match &self.store {
            None => None,
            Some(store) => match &store.path {
                Some(path) if !path.trim().is_empty() => Some(path.clone()),
                _ => {
                    return Err(CampaignError::Spec(
                        "`path` is required in the [store] table (a store with \
                         nowhere to live cannot cache anything)"
                            .into(),
                    ))
                }
            },
        };
        Ok(Campaign {
            name: self.name.clone().unwrap_or_else(|| "campaign".into()),
            seed: self.seed.unwrap_or(2012),
            threads: self.threads,
            workload,
            output: self.output.clone().unwrap_or_default(),
            store_path,
            telemetry: self.telemetry.clone().unwrap_or_default(),
            executor,
            fault: self.fault.clone(),
            source: self.clone(),
        })
    }

    /// Infers the workload from which parameter table is present, when the
    /// `workload` key is absent and exactly one table is given — writing
    /// `[soundness]` alone should not silently run an acceptance campaign.
    fn inferred_workload(&self) -> Option<WorkloadKind> {
        let present = [
            self.acceptance
                .is_some()
                .then_some(WorkloadKind::Acceptance),
            self.soundness.is_some().then_some(WorkloadKind::Soundness),
            self.multicore.is_some().then_some(WorkloadKind::Multicore),
            self.cfg.is_some().then_some(WorkloadKind::Cfg),
        ];
        let mut it = present.into_iter().flatten();
        match (it.next(), it.next()) {
            (Some(kind), None) => Some(kind),
            _ => None,
        }
    }

    fn validate_acceptance(&self) -> Result<AcceptanceParams, CampaignError> {
        let a = self.acceptance.clone().unwrap_or_default();
        let params = AcceptanceParams {
            sets_per_point: a.sets_per_point.unwrap_or(200),
            max_attempts_factor: a.max_attempts_factor.unwrap_or(50),
            policies: a
                .policies
                .unwrap_or_else(|| vec![Policy::FixedPriority, Policy::Edf]),
            utilizations: a
                .utilizations
                .unwrap_or(GridSpec {
                    start: Some(0.3),
                    stop: Some(0.9),
                    step: Some(0.1),
                    values: None,
                })
                .expand()?,
            methods: a.methods.unwrap_or_else(|| {
                vec![
                    DelayMethod::None,
                    DelayMethod::Eq4,
                    DelayMethod::Algorithm1,
                    DelayMethod::Algorithm1Capped,
                ]
            }),
            q_scale: a.q_scale.unwrap_or(0.8),
            delay_frac: a.delay_frac.unwrap_or(0.6),
            taskset: a.taskset.unwrap_or_default(),
        };
        if params.sets_per_point == 0 {
            return Err(CampaignError::Spec("`sets_per_point` must be >= 1".into()));
        }
        if params.policies.is_empty() {
            return Err(CampaignError::Spec("`policies` must be non-empty".into()));
        }
        if params.methods.is_empty() {
            return Err(CampaignError::Spec("`methods` must be non-empty".into()));
        }
        if !(params.q_scale > 0.0 && params.q_scale <= 1.0) {
            return Err(CampaignError::Spec(format!(
                "`q_scale` must be in (0, 1], got {}",
                params.q_scale
            )));
        }
        if !(params.delay_frac > 0.0 && params.delay_frac < 1.0) {
            return Err(CampaignError::Spec(format!(
                "`delay_frac` must be in (0, 1) to keep analyses convergent, got {}",
                params.delay_frac
            )));
        }
        for &u in &params.utilizations {
            if !(u > 0.0 && u < 1.0) {
                return Err(CampaignError::Spec(format!(
                    "utilization grid value {u} outside (0, 1)"
                )));
            }
        }
        if params.taskset.n == 0 {
            return Err(CampaignError::Spec("taskset `n` must be >= 1".into()));
        }
        Ok(params)
    }

    fn validate_multicore(&self) -> Result<MulticoreParams, CampaignError> {
        let m = self.multicore.clone().unwrap_or_default();
        let params = MulticoreParams {
            sets_per_point: m.sets_per_point.unwrap_or(60),
            max_attempts_factor: m.max_attempts_factor.unwrap_or(50),
            cores: m.cores.unwrap_or_else(|| vec![2, 4]),
            tasks_per_core: m.tasks_per_core.unwrap_or(3),
            policies: m
                .policies
                .unwrap_or_else(|| vec![Policy::FixedPriority, Policy::Edf]),
            allocations: m.allocations.unwrap_or_else(|| {
                vec![
                    Allocation::FirstFit,
                    Allocation::WorstFit,
                    Allocation::BestFit,
                    Allocation::Global,
                ]
            }),
            utilizations: m
                .utilizations
                .unwrap_or(GridSpec {
                    start: Some(0.3),
                    stop: Some(0.7),
                    step: Some(0.1),
                    values: None,
                })
                .expand()?,
            methods: m.methods.unwrap_or_else(|| {
                vec![
                    DelayMethod::None,
                    DelayMethod::Eq4,
                    DelayMethod::Algorithm1,
                    DelayMethod::Algorithm1Capped,
                ]
            }),
            q_scale: m.q_scale.unwrap_or(0.8),
            delay_frac: m.delay_frac.unwrap_or(0.6),
            simulate: m.simulate.unwrap_or(true),
            sim_per_point: m.sim_per_point.unwrap_or(2),
            sim_horizon_factor: m.sim_horizon_factor.unwrap_or(3.0),
            taskset: m.taskset.unwrap_or_default(),
        };
        if params.sets_per_point == 0 {
            return Err(CampaignError::Spec("`sets_per_point` must be >= 1".into()));
        }
        if params.cores.is_empty() || params.cores.contains(&0) {
            return Err(CampaignError::Spec(
                "`cores` must be a non-empty list of core counts >= 1".into(),
            ));
        }
        if params.tasks_per_core == 0 {
            return Err(CampaignError::Spec("`tasks_per_core` must be >= 1".into()));
        }
        if params.policies.is_empty() {
            return Err(CampaignError::Spec("`policies` must be non-empty".into()));
        }
        if params.allocations.is_empty() {
            return Err(CampaignError::Spec(
                "`allocations` must be non-empty".into(),
            ));
        }
        if params.methods.is_empty() {
            return Err(CampaignError::Spec("`methods` must be non-empty".into()));
        }
        if !(params.q_scale > 0.0 && params.q_scale <= 1.0) {
            return Err(CampaignError::Spec(format!(
                "`q_scale` must be in (0, 1], got {}",
                params.q_scale
            )));
        }
        if !(params.delay_frac > 0.0 && params.delay_frac < 1.0) {
            return Err(CampaignError::Spec(format!(
                "`delay_frac` must be in (0, 1) to keep analyses convergent, got {}",
                params.delay_frac
            )));
        }
        for &u in &params.utilizations {
            if !(u > 0.0 && u < 1.0) {
                return Err(CampaignError::Spec(format!(
                    "per-core utilization grid value {u} outside (0, 1)"
                )));
            }
        }
        if !(params.sim_horizon_factor.is_finite() && params.sim_horizon_factor > 0.0) {
            return Err(CampaignError::Spec(format!(
                "`sim_horizon_factor` must be positive, got {}",
                params.sim_horizon_factor
            )));
        }
        Ok(params)
    }

    fn validate_cfg(&self) -> Result<CfgParams, CampaignError> {
        let c = self.cfg.clone().unwrap_or_default();
        let template = c.program.unwrap_or_default();
        let defaults = ProgramGenParams::default();
        let program = ProgramGenParams {
            max_sequence: template.max_sequence.unwrap_or(defaults.max_sequence),
            cost_range: template.cost_range.unwrap_or(defaults.cost_range),
            branch_probability: template
                .branch_probability
                .unwrap_or(defaults.branch_probability),
            loop_probability: template
                .loop_probability
                .unwrap_or(defaults.loop_probability),
            block_bytes: template.block_bytes.unwrap_or(defaults.block_bytes),
            accesses_per_block: template
                .accesses_per_block
                .unwrap_or(defaults.accesses_per_block),
            // Axis fields; replaced per grid point.
            ..defaults
        };
        let params = CfgParams {
            programs_per_point: c.programs_per_point.unwrap_or(8),
            tag: c.tag.unwrap_or_default(),
            depths: c.depths.unwrap_or_else(|| vec![2, 3]),
            loop_iterations: c.loop_iterations.unwrap_or_else(|| vec![4]),
            footprints: c.footprints.unwrap_or_else(|| vec![8]),
            q_scales: c
                .q_scales
                .unwrap_or(GridSpec {
                    start: None,
                    stop: None,
                    step: None,
                    values: Some(vec![0.25, 0.5]),
                })
                .expand()?,
            sets: c.sets.unwrap_or_else(|| vec![32]),
            associativity: c.associativity.unwrap_or_else(|| vec![1]),
            line_bytes: c.line_bytes.unwrap_or_else(|| vec![16]),
            reload_costs: c.reload_cost.unwrap_or_else(|| vec![10.0]),
            program,
        };
        if params.programs_per_point == 0 {
            return Err(CampaignError::Spec(
                "`programs_per_point` must be >= 1".into(),
            ));
        }
        if params.depths.is_empty() {
            return Err(CampaignError::Spec("`depths` must be non-empty".into()));
        }
        // Program size grows like fan^depth, where the per-level fan-out
        // is max_sequence for sequences but always 2 for branches; reject
        // grids whose estimated node count would hang or OOM the run
        // instead of failing here with a named cause.
        let fan = if params.program.branch_probability > 0.0 {
            params.program.max_sequence.max(2)
        } else {
            params.program.max_sequence
        };
        for &d in &params.depths {
            // Generation and compilation recurse once per nesting level, so
            // depth is also bounded on its own — a fan-out-1 spec must not
            // sneak past the node-count estimate into a stack overflow.
            if d > 64 {
                return Err(CampaignError::Spec(format!(
                    "`depths` value {d} exceeds the maximum nesting depth 64"
                )));
            }
            let nodes = (fan as f64).powi(d as i32);
            if nodes > 1e6 {
                return Err(CampaignError::Spec(format!(
                    "`depths` value {d} with region fan-out {fan} (max_sequence {}, \
                     branches 2-way) expands to ~{nodes:.0} statement nodes per \
                     program; keep fan^depth <= 1e6",
                    params.program.max_sequence
                )));
            }
        }
        if params.loop_iterations.is_empty() || params.loop_iterations.contains(&0) {
            return Err(CampaignError::Spec(
                "`loop_iterations` must be a non-empty list of bounds >= 1".into(),
            ));
        }
        if params.footprints.is_empty() {
            return Err(CampaignError::Spec("`footprints` must be non-empty".into()));
        }
        for &q in &params.q_scales {
            if !(q > 0.0 && q <= 1.0) {
                return Err(CampaignError::Spec(format!(
                    "`q_scales` value {q} outside (0, 1]"
                )));
            }
        }
        if params.sets.is_empty() || params.sets.contains(&0) {
            return Err(CampaignError::Spec(
                "`sets` must be a non-empty list of set counts >= 1".into(),
            ));
        }
        if params.associativity.is_empty() || params.associativity.contains(&0) {
            return Err(CampaignError::Spec(
                "`associativity` must be a non-empty list of way counts >= 1".into(),
            ));
        }
        if params.line_bytes.is_empty() || params.line_bytes.contains(&0) {
            return Err(CampaignError::Spec(
                "`line_bytes` must be a non-empty list of line sizes >= 1".into(),
            ));
        }
        // The generator spaces its data pool DATA_STRIDE bytes apart so
        // each footprint entry occupies its own cache line; a larger line
        // would silently alias pool entries and skew the footprint axis.
        if let Some(&line) = params
            .line_bytes
            .iter()
            .find(|&&l| l > fnpr_synth::DATA_STRIDE)
        {
            return Err(CampaignError::Spec(format!(
                "`line_bytes` value {line} exceeds the generator's data stride \
                 ({}); distinct footprint lines would alias onto one cache line",
                fnpr_synth::DATA_STRIDE
            )));
        }
        if params.reload_costs.is_empty()
            || params
                .reload_costs
                .iter()
                .any(|&b| !(b.is_finite() && b >= 0.0))
        {
            return Err(CampaignError::Spec(
                "`reload_cost` must be a non-empty list of finite costs >= 0".into(),
            ));
        }
        if params.program.max_sequence == 0 {
            return Err(CampaignError::Spec("`max_sequence` must be >= 1".into()));
        }
        let (lo, hi) = params.program.cost_range;
        if !(lo.is_finite() && hi.is_finite() && lo > 0.0 && hi > lo) {
            return Err(CampaignError::Spec(format!(
                "`cost_range` must satisfy 0 < lo < hi, got ({lo}, {hi})"
            )));
        }
        let (bp, lp) = (
            params.program.branch_probability,
            params.program.loop_probability,
        );
        if !(bp.is_finite() && lp.is_finite() && bp >= 0.0 && lp >= 0.0 && bp + lp <= 1.0) {
            return Err(CampaignError::Spec(format!(
                "`branch_probability` + `loop_probability` must stay within [0, 1], got {bp} + {lp}"
            )));
        }
        if params.program.block_bytes == 0 {
            return Err(CampaignError::Spec("`block_bytes` must be >= 1".into()));
        }
        let (alo, ahi) = params.program.accesses_per_block;
        if alo > ahi {
            return Err(CampaignError::Spec(format!(
                "`accesses_per_block` must satisfy lo <= hi, got ({alo}, {ahi})"
            )));
        }
        Ok(params)
    }

    fn validate_soundness(&self) -> Result<SoundnessParams, CampaignError> {
        let s = self.soundness.clone().unwrap_or_default();
        let params = SoundnessParams {
            trials: s.trials.unwrap_or(300),
            trials_per_shard: s.trials_per_shard.unwrap_or(1).max(1),
            simulate: s.simulate.unwrap_or(true),
            c_range: s.c_range.unwrap_or((50.0, 400.0)),
            segments: s.segments.unwrap_or((2, 12)),
            max_value_range: s.max_value_range.unwrap_or((1.0, 8.0)),
            q_slack_range: s.q_slack_range.unwrap_or((0.5, 10.0)),
        };
        if params.trials == 0 {
            return Err(CampaignError::Spec("`trials` must be >= 1".into()));
        }
        for (name, (lo, hi)) in [
            ("c_range", params.c_range),
            ("max_value_range", params.max_value_range),
            ("q_slack_range", params.q_slack_range),
        ] {
            if !(lo > 0.0 && hi > lo) {
                return Err(CampaignError::Spec(format!(
                    "`{name}` must satisfy 0 < lo < hi, got ({lo}, {hi})"
                )));
            }
        }
        if params.segments.0 < 1 || params.segments.1 <= params.segments.0 {
            return Err(CampaignError::Spec(format!(
                "`segments` must satisfy 1 <= lo < hi, got {:?}",
                params.segments
            )));
        }
        Ok(params)
    }
}

impl Campaign {
    /// The workload discriminant (for reports and dispatch).
    #[must_use]
    pub fn workload_kind(&self) -> WorkloadKind {
        match self.workload {
            Workload::Acceptance(_) => WorkloadKind::Acceptance,
            Workload::Soundness(_) => WorkloadKind::Soundness,
            Workload::Multicore(_) => WorkloadKind::Multicore,
            Workload::Cfg(_) => WorkloadKind::Cfg,
        }
    }

    /// A stable structural hash of everything that determines results
    /// (not outputs or thread counts): the campaign id in reports.
    #[must_use]
    pub fn scenario_hash(&self) -> u64 {
        let h = ScenarioHasher::new(0x4341_4d50) // "CAMP"
            .str(&self.name)
            .word(self.seed);
        match &self.workload {
            Workload::Acceptance(a) => {
                let mut h = h
                    .word(1)
                    .word(a.sets_per_point as u64)
                    .word(a.max_attempts_factor as u64)
                    .f64(a.q_scale)
                    .f64(a.delay_frac)
                    .word(a.taskset.n as u64)
                    .f64(a.taskset.period_range.0)
                    .f64(a.taskset.period_range.1)
                    .f64(a.taskset.deadline_factor.0)
                    .f64(a.taskset.deadline_factor.1);
                for p in &a.policies {
                    h = h.word(policy_tag(*p));
                }
                for m in &a.methods {
                    h = h.word(method_tag(*m));
                }
                for &u in &a.utilizations {
                    h = h.f64(u);
                }
                h.finish()
            }
            Workload::Soundness(s) => h
                .word(2)
                .word(s.trials as u64)
                .word(u64::from(s.simulate))
                .f64(s.c_range.0)
                .f64(s.c_range.1)
                .word(s.segments.0)
                .word(s.segments.1)
                .f64(s.max_value_range.0)
                .f64(s.max_value_range.1)
                .f64(s.q_slack_range.0)
                .f64(s.q_slack_range.1)
                .finish(),
            Workload::Multicore(mc) => {
                let mut h = h
                    .word(3)
                    .word(mc.sets_per_point as u64)
                    .word(mc.max_attempts_factor as u64)
                    .word(mc.tasks_per_core as u64)
                    .f64(mc.q_scale)
                    .f64(mc.delay_frac)
                    .word(u64::from(mc.simulate))
                    .word(mc.sim_per_point as u64)
                    .f64(mc.sim_horizon_factor)
                    .f64(mc.taskset.period_range.0)
                    .f64(mc.taskset.period_range.1)
                    .f64(mc.taskset.deadline_factor.0)
                    .f64(mc.taskset.deadline_factor.1);
                // Each variable-length axis is preceded by its length so
                // e.g. cores=[2, 11] + policies=[edf] cannot alias
                // cores=[2] + policies=[fp, edf] (core counts are
                // user-chosen and can collide with the tag alphabets).
                h = h.word(mc.cores.len() as u64);
                for &m in &mc.cores {
                    h = h.word(m as u64);
                }
                h = h.word(mc.policies.len() as u64);
                for p in &mc.policies {
                    h = h.word(policy_tag(*p));
                }
                h = h.word(mc.allocations.len() as u64);
                for a in &mc.allocations {
                    h = h.word(allocation_tag(*a));
                }
                h = h.word(mc.methods.len() as u64);
                for m in &mc.methods {
                    h = h.word(method_tag(*m));
                }
                h = h.word(mc.utilizations.len() as u64);
                for &u in &mc.utilizations {
                    h = h.f64(u);
                }
                h.finish()
            }
            Workload::Cfg(c) => {
                let mut h = h
                    .word(4)
                    .word(c.programs_per_point as u64)
                    .str(&c.tag)
                    .word(c.program.max_sequence as u64)
                    .f64(c.program.cost_range.0)
                    .f64(c.program.cost_range.1)
                    .f64(c.program.branch_probability)
                    .f64(c.program.loop_probability)
                    .word(c.program.block_bytes)
                    .word(c.program.accesses_per_block.0 as u64)
                    .word(c.program.accesses_per_block.1 as u64);
                // Length-prefixed axes, same aliasing argument as multicore.
                h = h.word(c.depths.len() as u64);
                for &d in &c.depths {
                    h = h.word(d as u64);
                }
                h = h.word(c.loop_iterations.len() as u64);
                for &l in &c.loop_iterations {
                    h = h.word(l);
                }
                h = h.word(c.footprints.len() as u64);
                for &f in &c.footprints {
                    h = h.word(f);
                }
                h = h.word(c.q_scales.len() as u64);
                for &q in &c.q_scales {
                    h = h.f64(q);
                }
                h = h.word(c.sets.len() as u64);
                for &s in &c.sets {
                    h = h.word(s as u64);
                }
                h = h.word(c.associativity.len() as u64);
                for &a in &c.associativity {
                    h = h.word(a as u64);
                }
                h = h.word(c.line_bytes.len() as u64);
                for &l in &c.line_bytes {
                    h = h.word(l);
                }
                h = h.word(c.reload_costs.len() as u64);
                for &b in &c.reload_costs {
                    h = h.f64(b);
                }
                h.finish()
            }
        }
    }
}

/// The first `` `key` ``-quoted token of a validation message.
fn backquoted_key(msg: &str) -> Option<&str> {
    let start = msg.find('`')? + 1;
    let end = msg[start..].find('`')? + start;
    (start < end).then(|| &msg[start..end])
}

/// A stable tag per policy (used in hashes and RNG stream derivation —
/// the single source for the 11/13 alphabet).
#[must_use]
pub fn policy_tag(p: Policy) -> u64 {
    match p {
        Policy::FixedPriority => 11,
        Policy::Edf => 13,
    }
}

/// A stable tag per allocation strategy (used in hashes and RNG stream
/// derivation).
#[must_use]
pub fn allocation_tag(a: Allocation) -> u64 {
    match a {
        Allocation::FirstFit => 21,
        Allocation::WorstFit => 22,
        Allocation::BestFit => 23,
        Allocation::Global => 24,
    }
}

/// Human-readable CSV labels for allocation strategies.
#[must_use]
pub fn allocation_label(a: Allocation) -> &'static str {
    match a {
        Allocation::FirstFit => "first_fit",
        Allocation::WorstFit => "worst_fit",
        Allocation::BestFit => "best_fit",
        Allocation::Global => "global",
    }
}

/// A stable tag per delay method (used in hashes and RNG stream
/// derivation).
#[must_use]
pub fn method_tag(m: DelayMethod) -> u64 {
    match m {
        DelayMethod::None => 1,
        DelayMethod::Eq4 => 2,
        DelayMethod::Algorithm1 => 3,
        DelayMethod::Algorithm1Capped => 4,
    }
}

/// Human-readable CSV labels for methods, matching the original
/// `acceptance_ratio` binary's column names.
#[must_use]
pub fn method_label(m: DelayMethod) -> &'static str {
    match m {
        DelayMethod::None => "no_delay",
        DelayMethod::Eq4 => "eq4",
        DelayMethod::Algorithm1 => "algorithm1",
        DelayMethod::Algorithm1Capped => "algorithm1_capped",
    }
}

/// Human-readable CSV labels for policies.
#[must_use]
pub fn policy_label(p: Policy) -> &'static str {
    match p {
        Policy::FixedPriority => "fp",
        Policy::Edf => "edf",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_range_expansion_is_inclusive() {
        let grid = GridSpec {
            start: Some(0.3),
            stop: Some(0.9),
            step: Some(0.1),
            values: None,
        };
        let values = grid.expand().unwrap();
        assert_eq!(values.len(), 7);
        assert!((values[0] - 0.3).abs() < 1e-12);
        assert!((values[6] - 0.9).abs() < 1e-9);
    }

    #[test]
    fn grid_rejects_degenerate_ranges() {
        for (start, stop, step) in [
            (f64::NAN, 0.9, 0.1),
            (0.3, f64::NAN, 0.1),
            (0.3, 0.9, f64::NAN),
            (0.3, 0.9, 0.0),
            (0.3, 0.9, f64::INFINITY),
            (0.9, 0.3, 0.1),
        ] {
            let grid = GridSpec {
                start: Some(start),
                stop: Some(stop),
                step: Some(step),
                values: None,
            };
            assert!(
                grid.expand().is_err(),
                "accepted {start}..{stop} step {step}"
            );
        }
    }

    #[test]
    fn grid_explicit_values_win() {
        let grid = GridSpec {
            start: Some(0.0),
            stop: Some(1.0),
            step: Some(0.5),
            values: Some(vec![0.42]),
        };
        assert_eq!(grid.expand().unwrap(), vec![0.42]);
    }

    #[test]
    fn toml_spec_round_trip() {
        let text = r#"
name = "smoke"
seed = 7
workload = "acceptance"

[acceptance]
sets_per_point = 10
policies = ["fixed_priority", "edf"]
methods = ["none", "eq4", "algorithm1"]
utilizations = { values = [0.5, 0.6] }

[acceptance.taskset]
n = 4
utilization = 0.5
period_range = [10.0, 100.0]
deadline_factor = [1.0, 1.0]

[output]
csv = "out.csv"
json = "out.json"
"#;
        let spec = CampaignSpec::parse(text).unwrap();
        let campaign = spec.validate().unwrap();
        assert_eq!(campaign.name, "smoke");
        assert_eq!(campaign.seed, 7);
        let Workload::Acceptance(a) = &campaign.workload else {
            panic!("expected acceptance");
        };
        assert_eq!(a.sets_per_point, 10);
        assert_eq!(a.policies, vec![Policy::FixedPriority, Policy::Edf]);
        assert_eq!(a.methods.len(), 3);
        assert_eq!(a.utilizations, vec![0.5, 0.6]);
        assert_eq!(a.taskset.n, 4);
        assert_eq!(campaign.output.csv.as_deref(), Some("out.csv"));
    }

    #[test]
    fn json_spec_parses_too() {
        let spec = CampaignSpec::parse(r#"{"workload": "soundness", "soundness": {"trials": 5}}"#)
            .unwrap();
        let campaign = spec.validate().unwrap();
        let Workload::Soundness(s) = &campaign.workload else {
            panic!("expected soundness");
        };
        assert_eq!(s.trials, 5);
        assert!(s.simulate);
    }

    #[test]
    fn defaults_validate() {
        let campaign = CampaignSpec::default().validate().unwrap();
        assert_eq!(campaign.seed, 2012);
        let Workload::Acceptance(a) = &campaign.workload else {
            panic!("default workload is acceptance");
        };
        assert_eq!(a.sets_per_point, 200);
        assert_eq!(a.utilizations.len(), 7);
        assert_eq!(a.methods.len(), 4);
    }

    #[test]
    fn rejects_bad_specs() {
        let spec = CampaignSpec {
            acceptance: Some(AcceptanceSpec {
                delay_frac: Some(1.5),
                ..AcceptanceSpec::default()
            }),
            ..CampaignSpec::default()
        };
        assert!(spec.validate().is_err());

        let spec = CampaignSpec {
            workload: Some(WorkloadKind::Soundness),
            soundness: Some(SoundnessSpec {
                trials: Some(0),
                ..SoundnessSpec::default()
            }),
            ..CampaignSpec::default()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn multicore_spec_round_trip() {
        let text = r#"
name = "mc"
seed = 3
workload = "multicore"

[multicore]
sets_per_point = 12
cores = [2, 4]
tasks_per_core = 2
allocations = ["first_fit", "global"]
utilizations = { values = [0.4, 0.6] }
methods = ["none", "algorithm1"]
simulate = false
"#;
        let campaign = CampaignSpec::parse(text).unwrap().validate().unwrap();
        let Workload::Multicore(m) = &campaign.workload else {
            panic!("expected multicore");
        };
        assert_eq!(m.sets_per_point, 12);
        assert_eq!(m.cores, vec![2, 4]);
        assert_eq!(m.tasks_per_core, 2);
        assert_eq!(
            m.allocations,
            vec![Allocation::FirstFit, Allocation::Global]
        );
        assert_eq!(m.utilizations, vec![0.4, 0.6]);
        assert_eq!(m.methods.len(), 2);
        assert!(!m.simulate);
        assert_eq!(campaign.workload_kind(), WorkloadKind::Multicore);
    }

    #[test]
    fn multicore_defaults_validate() {
        let spec = CampaignSpec {
            workload: Some(WorkloadKind::Multicore),
            ..CampaignSpec::default()
        };
        let Workload::Multicore(m) = spec.validate().unwrap().workload else {
            panic!("expected multicore");
        };
        assert_eq!(m.cores, vec![2, 4]);
        assert_eq!(m.allocations.len(), 4);
        assert_eq!(m.methods.len(), 4);
        assert!(m.simulate);
    }

    #[test]
    fn workload_is_inferred_from_a_lone_table() {
        // `[soundness]` alone must not silently run an acceptance campaign.
        let spec = CampaignSpec::parse("[soundness]\ntrials = 5\n").unwrap();
        assert_eq!(
            spec.validate().unwrap().workload_kind(),
            WorkloadKind::Soundness
        );
        let spec = CampaignSpec::parse("[multicore]\nsets_per_point = 3\n").unwrap();
        assert_eq!(
            spec.validate().unwrap().workload_kind(),
            WorkloadKind::Multicore
        );
        let spec = CampaignSpec::parse("[cfg]\nprograms_per_point = 3\n").unwrap();
        assert_eq!(spec.validate().unwrap().workload_kind(), WorkloadKind::Cfg);
        // An explicit `workload` key always wins over the tables.
        let spec =
            CampaignSpec::parse("workload = \"acceptance\"\n[soundness]\ntrials = 5\n").unwrap();
        assert_eq!(
            spec.validate().unwrap().workload_kind(),
            WorkloadKind::Acceptance
        );
    }

    #[test]
    fn unknown_workload_names_the_valid_kinds() {
        let err = CampaignSpec::parse("workload = \"multicre\"\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("multicre"), "offending value absent: {msg}");
        for kind in ["acceptance", "soundness", "multicore", "cfg"] {
            assert!(msg.contains(kind), "valid kind {kind} absent: {msg}");
        }
        // And the toml line index points at the offending line.
        assert!(msg.contains("line 1"), "line annotation absent: {msg}");
    }

    #[test]
    fn multicore_rejects_bad_specs() {
        for text in [
            "workload = \"multicore\"\n[multicore]\ncores = []\n",
            "workload = \"multicore\"\n[multicore]\ncores = [0]\n",
            "workload = \"multicore\"\n[multicore]\ntasks_per_core = 0\n",
            "workload = \"multicore\"\n[multicore]\nutilizations = { values = [1.5] }\n",
            "workload = \"multicore\"\n[multicore]\nsim_horizon_factor = 0.0\n",
        ] {
            let spec = CampaignSpec::parse(text).unwrap();
            assert!(spec.validate().is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn cfg_spec_round_trip() {
        let text = r#"
name = "cfg"
seed = 3
workload = "cfg"

[cfg]
programs_per_point = 5
tag = "sweep A"
depths = [1, 2]
loop_iterations = [3, 6]
footprints = [0, 8]
q_scales = { values = [0.3, 0.6] }
sets = [16, 64]
associativity = [1, 2]
line_bytes = [16]
reload_cost = [5.0, 10.0]

[cfg.program]
max_sequence = 2
cost_range = [2.0, 12.0]
branch_probability = 0.4
loop_probability = 0.3
block_bytes = 32
accesses_per_block = [0, 2]
"#;
        let campaign = CampaignSpec::parse(text).unwrap().validate().unwrap();
        let Workload::Cfg(c) = &campaign.workload else {
            panic!("expected cfg");
        };
        assert_eq!(c.programs_per_point, 5);
        assert_eq!(c.tag, "sweep A");
        assert_eq!(c.depths, vec![1, 2]);
        assert_eq!(c.loop_iterations, vec![3, 6]);
        assert_eq!(c.footprints, vec![0, 8]);
        assert_eq!(c.q_scales, vec![0.3, 0.6]);
        assert_eq!(c.sets, vec![16, 64]);
        assert_eq!(c.associativity, vec![1, 2]);
        assert_eq!(c.line_bytes, vec![16]);
        assert_eq!(c.reload_costs, vec![5.0, 10.0]);
        assert_eq!(c.program.max_sequence, 2);
        assert_eq!(c.program.cost_range, (2.0, 12.0));
        assert_eq!(c.program.block_bytes, 32);
        assert_eq!(c.program.accesses_per_block, (0, 2));
        assert_eq!(campaign.workload_kind(), WorkloadKind::Cfg);
    }

    #[test]
    fn cfg_defaults_validate() {
        let spec = CampaignSpec {
            workload: Some(WorkloadKind::Cfg),
            ..CampaignSpec::default()
        };
        let Workload::Cfg(c) = spec.validate().unwrap().workload else {
            panic!("expected cfg");
        };
        assert_eq!(c.programs_per_point, 8);
        assert_eq!(c.depths, vec![2, 3]);
        assert_eq!(c.q_scales, vec![0.25, 0.5]);
        assert_eq!(c.sets, vec![32]);
        assert!(c.tag.is_empty());
    }

    #[test]
    fn cfg_rejects_bad_specs() {
        for text in [
            "workload = \"cfg\"\n[cfg]\nprograms_per_point = 0\n",
            "workload = \"cfg\"\n[cfg]\ndepths = []\n",
            "workload = \"cfg\"\n[cfg]\nloop_iterations = [0]\n",
            "workload = \"cfg\"\n[cfg]\nq_scales = { values = [1.5] }\n",
            "workload = \"cfg\"\n[cfg]\nsets = [0]\n",
            "workload = \"cfg\"\n[cfg]\nassociativity = []\n",
            "workload = \"cfg\"\n[cfg]\nline_bytes = [0]\n",
            "workload = \"cfg\"\n[cfg]\nline_bytes = [128]\n",
            "workload = \"cfg\"\n[cfg]\ndepths = [30]\n",
            // Branch fan-out (2-way) must count even when max_sequence = 1.
            "workload = \"cfg\"\n[cfg]\ndepths = [24]\n[cfg.program]\nmax_sequence = 1\nbranch_probability = 1.0\nloop_probability = 0.0\n",
            // Recursion depth is bounded even at fan-out 1 (node count 1).
            "workload = \"cfg\"\n[cfg]\ndepths = [500000]\n[cfg.program]\nmax_sequence = 1\nbranch_probability = 0.0\nloop_probability = 0.0\n",
            "workload = \"cfg\"\n[cfg]\nreload_cost = [-1.0]\n",
            "workload = \"cfg\"\n[cfg]\n[cfg.program]\ncost_range = [5.0, 2.0]\n",
            "workload = \"cfg\"\n[cfg]\n[cfg.program]\nbranch_probability = 0.8\nloop_probability = 0.4\n",
            "workload = \"cfg\"\n[cfg]\n[cfg.program]\naccesses_per_block = [3, 1]\n",
        ] {
            let spec = CampaignSpec::parse(text).unwrap();
            assert!(spec.validate().is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn cfg_hash_tracks_every_axis() {
        let base = "workload = \"cfg\"\n[cfg]\n";
        let hash = |body: &str| {
            CampaignSpec::parse(&format!("{base}{body}"))
                .unwrap()
                .validate()
                .unwrap()
                .scenario_hash()
        };
        let reference = hash("");
        for body in [
            "programs_per_point = 9\n",
            "tag = \"x\"\n",
            "depths = [2]\n",
            "loop_iterations = [5]\n",
            "footprints = [9]\n",
            "q_scales = { values = [0.5] }\n",
            "sets = [64]\n",
            "associativity = [2]\n",
            "line_bytes = [32]\n",
            "reload_cost = [2.0]\n",
        ] {
            assert_ne!(reference, hash(body), "axis change not hashed: {body}");
        }
        // Outputs stay out of the hash.
        assert_eq!(reference, hash("")); // stable
    }

    #[test]
    fn load_validated_points_semantic_errors_at_their_line() {
        let dir = std::env::temp_dir().join("fnpr_campaign_spec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_q_scale.toml");
        std::fs::write(
            &path,
            "workload = \"acceptance\"\n\n[acceptance]\nq_scale = 1.5\n",
        )
        .unwrap();
        let err = CampaignSpec::load_validated(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "line annotation absent: {msg}");
        assert!(msg.contains("q_scale"), "key absent: {msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_validated_prefers_the_active_workload_table() {
        // A valid q_scale in the *unused* acceptance table must not steal
        // the annotation from the offending multicore one.
        let dir = std::env::temp_dir().join("fnpr_campaign_spec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("two_tables.toml");
        std::fs::write(
            &path,
            "workload = \"multicore\"\n\n[acceptance]\nq_scale = 0.5\n\n[multicore]\nq_scale = 1.5\n",
        )
        .unwrap();
        let err = CampaignSpec::load_validated(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 7"), "wrong line: {msg}");
        assert!(msg.contains("`multicore.q_scale`"), "wrong key: {msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multicore_hash_axes_cannot_alias() {
        // cores=[2, 11] + policies=[edf] vs cores=[2] + policies=[fp, edf]:
        // without length separators both would feed the hasher ...2,11,13...
        let parse = |text: &str| {
            CampaignSpec::parse(text)
                .unwrap()
                .validate()
                .unwrap()
                .scenario_hash()
        };
        let a =
            parse("workload = \"multicore\"\n[multicore]\ncores = [2, 11]\npolicies = [\"edf\"]\n");
        let b = parse(
            "workload = \"multicore\"\n[multicore]\ncores = [2]\npolicies = [\"fixed_priority\", \"edf\"]\n",
        );
        assert_ne!(a, b);
    }

    #[test]
    fn backquoted_key_extraction() {
        assert_eq!(
            backquoted_key("`q_scale` must be in (0, 1]"),
            Some("q_scale")
        );
        assert_eq!(backquoted_key("no keys here"), None);
        assert_eq!(backquoted_key("empty `` quotes"), None);
    }

    #[test]
    fn store_spec_round_trips_and_validates() {
        let spec = CampaignSpec::parse(
            "workload = \"soundness\"\n[soundness]\ntrials = 3\n[store]\npath = \"results.log\"\n",
        )
        .unwrap();
        let campaign = spec.validate().unwrap();
        assert_eq!(campaign.store_path.as_deref(), Some("results.log"));
        // Absent [store] table: no persistence.
        let spec =
            CampaignSpec::parse("workload = \"soundness\"\n[soundness]\ntrials = 3\n").unwrap();
        assert_eq!(spec.validate().unwrap().store_path, None);
        // A [store] table without a usable path is a spec error, not a
        // silently disabled cache.
        for text in [
            "workload = \"soundness\"\n[soundness]\ntrials = 3\n[store]\n",
            "workload = \"soundness\"\n[soundness]\ntrials = 3\n[store]\npath = \"  \"\n",
        ] {
            let err = CampaignSpec::parse(text).unwrap().validate().unwrap_err();
            assert!(err.to_string().contains("path"), "bad message: {err}");
        }
    }

    #[test]
    fn telemetry_spec_round_trips_with_defaults() {
        let spec = CampaignSpec::parse(
            "workload = \"soundness\"\n[soundness]\ntrials = 3\n\
             [telemetry]\nmetrics = \"m.json\"\ntrace = \"t.json\"\n\
             ledger = \"LEDGER.jsonl\"\nprogress = false\n",
        )
        .unwrap();
        let campaign = spec.validate().unwrap();
        assert_eq!(campaign.telemetry.metrics.as_deref(), Some("m.json"));
        assert_eq!(campaign.telemetry.trace.as_deref(), Some("t.json"));
        assert_eq!(campaign.telemetry.ledger.as_deref(), Some("LEDGER.jsonl"));
        assert_eq!(campaign.telemetry.progress, Some(false));
        // Absent table: everything off/default.
        let spec =
            CampaignSpec::parse("workload = \"soundness\"\n[soundness]\ntrials = 3\n").unwrap();
        let campaign = spec.validate().unwrap();
        assert_eq!(campaign.telemetry.metrics, None);
        assert_eq!(campaign.telemetry.trace, None);
        assert_eq!(campaign.telemetry.ledger, None);
        assert_eq!(campaign.telemetry.progress, None);
    }

    #[test]
    fn telemetry_stays_out_of_the_scenario_hash() {
        // Observing a run cannot change what it computes: warm/cold,
        // traced/untraced runs must report the same scenario id.
        let base = CampaignSpec {
            seed: Some(5),
            ..CampaignSpec::default()
        };
        let mut with_telemetry = base.clone();
        with_telemetry.telemetry = Some(TelemetrySpec {
            metrics: Some("m.json".into()),
            trace: Some("t.json".into()),
            ledger: Some("LEDGER.jsonl".into()),
            progress: Some(false),
        });
        assert_eq!(
            base.validate().unwrap().scenario_hash(),
            with_telemetry.validate().unwrap().scenario_hash()
        );
    }

    #[test]
    fn store_path_stays_out_of_the_scenario_hash() {
        // Like the outputs: where results are cached cannot change what
        // they are — warm and cold runs must report the same scenario id.
        let base = CampaignSpec {
            seed: Some(5),
            ..CampaignSpec::default()
        };
        let mut with_store = base.clone();
        with_store.store = Some(StoreSpec {
            path: Some("x.log".into()),
        });
        assert_eq!(
            base.validate().unwrap().scenario_hash(),
            with_store.validate().unwrap().scenario_hash()
        );
    }

    #[test]
    fn executor_spec_round_trips_and_validates() {
        let spec = CampaignSpec::parse(
            "workload = \"soundness\"\n[soundness]\ntrials = 3\n\
             [executor]\nbackend = \"process\"\nworkers = 3\n",
        )
        .unwrap();
        let campaign = spec.validate().unwrap();
        assert_eq!(campaign.executor.backend.as_deref(), Some("process"));
        assert_eq!(campaign.executor.workers, Some(3));
        // Absent table: everything defaulted (local threads).
        let spec =
            CampaignSpec::parse("workload = \"soundness\"\n[soundness]\ntrials = 3\n").unwrap();
        let campaign = spec.validate().unwrap();
        assert_eq!(campaign.executor.backend, None);
        assert_eq!(campaign.executor.workers, None);
        // Unknown backends and zero workers are spec errors.
        let err = CampaignSpec::parse(
            "workload = \"soundness\"\n[soundness]\ntrials = 3\n[executor]\nbackend = \"mpi\"\n",
        )
        .unwrap()
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("backend"), "bad message: {err}");
        let err = CampaignSpec::parse(
            "workload = \"soundness\"\n[soundness]\ntrials = 3\n[executor]\nworkers = 0\n",
        )
        .unwrap()
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("workers"), "bad message: {err}");
    }

    #[test]
    fn executor_stays_out_of_the_scenario_hash() {
        // Placement cannot change results: every shard's streams are pure
        // functions of (seed, coords), so local and process runs of the
        // same spec must report the same scenario id.
        let base = CampaignSpec {
            seed: Some(5),
            ..CampaignSpec::default()
        };
        let mut with_executor = base.clone();
        with_executor.executor = Some(ExecutorSpec {
            backend: Some("process".into()),
            workers: Some(4),
            timeout_secs: Some(30.0),
            max_retries: Some(2),
        });
        assert_eq!(
            base.validate().unwrap().scenario_hash(),
            with_executor.validate().unwrap().scenario_hash()
        );
    }

    #[test]
    fn supervision_knobs_parse_and_validate() {
        let spec = CampaignSpec::parse(
            "workload = \"soundness\"\n[soundness]\ntrials = 3\n\
             [executor]\nbackend = \"process\"\ntimeout_secs = 2.5\nmax_retries = 3\n",
        )
        .unwrap();
        let campaign = spec.validate().unwrap();
        assert_eq!(campaign.executor.timeout_secs, Some(2.5));
        assert_eq!(campaign.executor.max_retries, Some(3));
        for bad in ["0.0", "-1.0", "nan", "inf"] {
            let err = CampaignSpec::parse(&format!(
                "workload = \"soundness\"\n[soundness]\ntrials = 3\n\
                 [executor]\ntimeout_secs = {bad}\n"
            ))
            .unwrap()
            .validate()
            .unwrap_err();
            assert!(
                err.to_string().contains("timeout_secs"),
                "bad message for timeout_secs = {bad}: {err}"
            );
        }
    }

    #[test]
    fn fault_table_parses_validates_and_round_trips() {
        let spec = CampaignSpec::parse(
            "workload = \"soundness\"\n[soundness]\ntrials = 3\n\
             [fault]\nseed = 7\ncrash = 0.25\nstall = 1.0\nstall_ms = 50\nkill_after = 4\n",
        )
        .unwrap();
        let campaign = spec.validate().unwrap();
        let fault = campaign.fault.as_ref().expect("fault table lost");
        assert_eq!(fault.seed, Some(7));
        assert_eq!(fault.crash, Some(0.25));
        assert_eq!(fault.stall_ms, Some(50));
        assert_eq!(fault.kill_after, Some(4));
        // The table survives the worker-job JSON round trip.
        let reparsed = CampaignSpec::parse(&serde_json::to_string(&spec)).unwrap();
        assert_eq!(
            reparsed.validate().unwrap().fault.as_ref().unwrap().crash,
            Some(0.25)
        );
        // Probabilities outside [0, 1] are spec errors.
        let err = CampaignSpec::parse(
            "workload = \"soundness\"\n[soundness]\ntrials = 3\n[fault]\ncrash = 1.5\n",
        )
        .unwrap()
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("crash"), "bad message: {err}");
    }

    #[test]
    fn fault_table_stays_out_of_the_scenario_hash() {
        // Every recovery path recomputes the same pure functions, so an
        // injected failure schedule cannot change what a campaign
        // computes — faulted and clean runs share a scenario id.
        let base = CampaignSpec {
            seed: Some(5),
            ..CampaignSpec::default()
        };
        let mut with_fault = base.clone();
        with_fault.fault = Some(crate::fault::FaultSpec {
            seed: Some(9),
            crash: Some(0.5),
            stall: Some(0.5),
            ..crate::fault::FaultSpec::default()
        });
        assert_eq!(
            base.validate().unwrap().scenario_hash(),
            with_fault.validate().unwrap().scenario_hash()
        );
    }

    #[test]
    fn spec_json_round_trip_preserves_the_scenario() {
        // The process backend ships the source spec to workers as JSON:
        // serialize → parse → validate must land on the same scenario.
        let spec = CampaignSpec::parse(
            "name = \"wire\"\nseed = 99\nworkload = \"multicore\"\n\
             [multicore]\nsets_per_point = 5\ncores = [2]\ntasks_per_core = 2\n\
             utilizations = { values = [0.4] }\n\
             [executor]\nbackend = \"process\"\nworkers = 2\n",
        )
        .unwrap();
        let json = serde_json::to_string(&spec);
        let reparsed = CampaignSpec::parse(&json).unwrap();
        let a = spec.validate().unwrap();
        let b = reparsed.validate().unwrap();
        assert_eq!(a.scenario_hash(), b.scenario_hash());
        assert_eq!(a.name, b.name);
        assert_eq!(b.executor.backend.as_deref(), Some("process"));
    }

    #[test]
    fn scenario_hash_tracks_inputs_not_outputs() {
        let base = CampaignSpec {
            seed: Some(1),
            ..CampaignSpec::default()
        };
        let a = base.validate().unwrap().scenario_hash();
        let mut with_output = base.clone();
        with_output.output = Some(OutputSpec {
            csv: Some("x.csv".into()),
            json: None,
        });
        assert_eq!(a, with_output.validate().unwrap().scenario_hash());
        let mut other_seed = base;
        other_seed.seed = Some(2);
        assert_ne!(a, other_seed.validate().unwrap().scenario_hash());
    }
}
