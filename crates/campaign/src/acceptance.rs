//! The acceptance-ratio workload: how many random task sets pass the
//! floating-NPR schedulability test under each WCET-inflation method,
//! swept over a (policy × utilization) grid.
//!
//! This is the engine-backed generalization of the one-off
//! `acceptance_ratio` binary. Every task set's RNG stream is derived from
//! `(campaign seed, utilization, instance, attempt)` — deliberately *not*
//! from the policy — so the fixed-priority and EDF rows of the grid analyse
//! the *same* base task sets, and the [`Memo`] layer computes each base set
//! once per process.

use fnpr_sched::{
    edf_schedulable_with_delay, fp_schedulable_with_delay, inflate_wcets, DelayMethod, TaskSet,
};
use fnpr_synth::{random_taskset, with_npr_and_curves, Policy, TaskSetParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backend::Executor;
use crate::error::CampaignError;
use crate::exec::stream_seed;
use crate::memo::{Memo, ScenarioHasher};
use crate::report::AcceptancePoint;
use crate::spec::{method_tag, policy_label, policy_tag, AcceptanceParams};
use crate::store::{ResultStore, StoreTable};

/// Domain tags for RNG stream / memo key derivation.
const TAG_TASKSET: u64 = 0x5441_534b; // "TASK"
const TAG_EQUIP: u64 = 0x4551_5550; // "EQUP"
const TAG_POINT: u64 = 0x4143_5054; // "ACPT"

/// Shared state across shards of one `run` call.
pub struct AcceptanceEngine {
    /// Base task sets keyed by their full generation coordinates.
    pub taskset_memo: Memo<Option<TaskSet>>,
}

impl AcceptanceEngine {
    /// A fresh engine with empty memo tables.
    #[must_use]
    pub fn new() -> Self {
        Self {
            taskset_memo: Memo::named("taskset"),
        }
    }
}

impl Default for AcceptanceEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs the full grid on `executor`. Point order (and therefore report
/// order) is policies-major, utilizations-minor, matching the original
/// binary's sweep.
///
/// # Errors
///
/// Propagates the first shard failure.
pub fn run(
    params: &AcceptanceParams,
    campaign_seed: u64,
    executor: &Executor,
    engine: &AcceptanceEngine,
    store: Option<&ResultStore>,
) -> Result<Vec<AcceptancePoint>, CampaignError> {
    let grid = grid(params);
    executor.run(grid.len(), &|i| {
        compute_grid_point(params, campaign_seed, grid[i], engine, store)
    })
}

/// The grid in report order, shard index = position. Both the coordinator
/// and worker subprocesses rebuild this from the same validated params, so
/// shard indices mean the same coordinates everywhere.
fn grid(params: &AcceptanceParams) -> Vec<(Policy, f64)> {
    params
        .policies
        .iter()
        .flat_map(|&p| params.utilizations.iter().map(move |&u| (p, u)))
        .collect()
}

/// Computes one shard by index — the worker-subprocess entry point
/// ([`crate::backend::run_worker`]).
pub(crate) fn compute_shard(
    params: &AcceptanceParams,
    campaign_seed: u64,
    shard: usize,
    engine: &AcceptanceEngine,
    store: Option<&ResultStore>,
) -> Result<AcceptancePoint, CampaignError> {
    let grid = grid(params);
    let &coords = grid.get(shard).ok_or_else(|| {
        CampaignError::Spec(format!(
            "shard {shard} out of range (acceptance grid has {} points)",
            grid.len()
        ))
    })?;
    compute_grid_point(params, campaign_seed, coords, engine, store)
}

/// One grid point through the store's counted read-through path.
fn compute_grid_point(
    params: &AcceptanceParams,
    campaign_seed: u64,
    (policy, utilization): (Policy, f64),
    engine: &AcceptanceEngine,
    store: Option<&ResultStore>,
) -> Result<AcceptancePoint, CampaignError> {
    let compute = || run_point(params, campaign_seed, policy, utilization, engine);
    match store {
        Some(store) => store.get_or_compute(
            StoreTable::AcceptancePoints,
            point_key(params, campaign_seed, policy, utilization),
            compute,
        ),
        None => compute(),
    }
}

/// Content address of one finished grid point: campaign seed, every
/// parameter the point's result depends on, and the point coordinates —
/// deliberately **not** the `policies`/`utilizations` axis lists, so grid
/// *extensions* (more utilizations, an added policy) restore the points
/// they share with previous runs. The `methods` list stays in (it shapes
/// the accepted/ratio vectors), length-prefixed like every variable-length
/// hash section.
fn point_key(
    params: &AcceptanceParams,
    campaign_seed: u64,
    policy: Policy,
    utilization: f64,
) -> u128 {
    let mut h = ScenarioHasher::new(TAG_POINT)
        .word(campaign_seed)
        .word(params.sets_per_point as u64)
        .word(params.max_attempts_factor as u64)
        .f64(params.q_scale)
        .f64(params.delay_frac)
        .word(params.taskset.n as u64)
        .f64(params.taskset.period_range.0)
        .f64(params.taskset.period_range.1)
        .f64(params.taskset.deadline_factor.0)
        .f64(params.taskset.deadline_factor.1)
        .word(params.methods.len() as u64);
    for &m in &params.methods {
        h = h.word(method_tag(m));
    }
    h.word(policy_tag(policy)).f64(utilization).finish128()
}

/// Runs one grid point: `sets_per_point` instances, each with its own
/// resampling budget, accumulated in instance order.
fn run_point(
    params: &AcceptanceParams,
    campaign_seed: u64,
    policy: Policy,
    utilization: f64,
    engine: &AcceptanceEngine,
) -> Result<AcceptancePoint, CampaignError> {
    let mut accepted = vec![0usize; params.methods.len()];
    let mut generated = 0usize;
    let mut attempts = 0usize;
    let mut gap_sum = 0.0;
    let mut gap_count = 0usize;
    let mut gap_max: f64 = 0.0;

    for instance in 0..params.sets_per_point {
        let Some(tasks) = generate_instance(
            params,
            campaign_seed,
            policy,
            utilization,
            instance,
            engine,
            &mut attempts,
        ) else {
            continue;
        };
        generated += 1;
        for (k, &method) in params.methods.iter().enumerate() {
            let ok = match policy {
                Policy::FixedPriority => fp_schedulable_with_delay(&tasks, method).unwrap_or(false),
                Policy::Edf => edf_schedulable_with_delay(&tasks, method).unwrap_or(false),
            };
            if ok {
                accepted[k] += 1;
            }
        }
        if let Some(gap) = pessimism_gap(&tasks) {
            gap_sum += gap;
            gap_count += 1;
            gap_max = gap_max.max(gap);
        }
    }

    let ratios = accepted
        .iter()
        .map(|&a| {
            if generated == 0 {
                0.0
            } else {
                a as f64 / generated as f64
            }
        })
        .collect();
    Ok(AcceptancePoint {
        policy: policy_label(policy).to_string(),
        utilization,
        generated,
        attempts,
        accepted,
        ratios,
        pessimism_gap_mean: if gap_count == 0 {
            0.0
        } else {
            gap_sum / gap_count as f64
        },
        pessimism_gap_max: gap_max,
        pessimism_gap_count: gap_count,
    })
}

/// Draws one feasible, curve-equipped task set, resampling up to the
/// attempt budget. Returns `None` when the budget runs out (common at high
/// utilization — exactly the effect the acceptance ratio measures around).
fn generate_instance(
    params: &AcceptanceParams,
    campaign_seed: u64,
    policy: Policy,
    utilization: f64,
    instance: usize,
    engine: &AcceptanceEngine,
    attempts: &mut usize,
) -> Option<TaskSet> {
    let ts_params = TaskSetParams {
        utilization,
        ..params.taskset
    };
    for attempt in 0..params.max_attempts_factor {
        *attempts += 1;
        let key = taskset_key(campaign_seed, &ts_params, instance, attempt);
        let base = engine.taskset_memo.get_or_insert_with(key, || {
            // The RNG stream seed is the key's low word — exactly the
            // pre-widening 64-bit hash, so generation streams (and with
            // them every aggregate) are unchanged by the 128-bit keys.
            let mut rng = StdRng::seed_from_u64(key as u64);
            random_taskset(&mut rng, &ts_params).ok()
        });
        let Some(base) = base else { continue };
        // Curve equipment *does* depend on the policy (the admissible `Qi`
        // bounds differ), so it gets its own stream including the policy.
        let mut equip_rng = StdRng::seed_from_u64(stream_seed(
            TAG_EQUIP,
            campaign_seed,
            &[
                utilization.to_bits(),
                instance as u64,
                attempt as u64,
                policy_tag(policy),
            ],
        ));
        if let Ok(Some(tasks)) = with_npr_and_curves(
            &mut equip_rng,
            &base,
            policy,
            params.q_scale,
            params.delay_frac,
        ) {
            return Some(tasks);
        }
    }
    None
}

/// Memo key (its low word doubling as the RNG seed) for a base task set: a
/// pure function of campaign seed + generation parameters + instance
/// coordinates. Policy is deliberately absent so FP and EDF share base
/// sets.
fn taskset_key(
    campaign_seed: u64,
    params: &TaskSetParams,
    instance: usize,
    attempt: usize,
) -> u128 {
    ScenarioHasher::new(TAG_TASKSET)
        .word(campaign_seed)
        .word(params.n as u64)
        .f64(params.utilization)
        .f64(params.period_range.0)
        .f64(params.period_range.1)
        .f64(params.deadline_factor.0)
        .f64(params.deadline_factor.1)
        .word(instance as u64)
        .word(attempt as u64)
        .finish128()
}

/// Eq. 4 total inflation overhead ÷ Algorithm 1 total inflation overhead
/// for one equipped task set — the per-set pessimism gap the paper's
/// Figure 5 narrative is about. `None` when either diverges or Algorithm 1
/// finds no measurable overhead.
fn pessimism_gap(tasks: &TaskSet) -> Option<f64> {
    let alg1 = inflate_wcets(tasks, DelayMethod::Algorithm1)
        .ok()?
        .total_overhead(tasks)?;
    let eq4 = inflate_wcets(tasks, DelayMethod::Eq4)
        .ok()?
        .total_overhead(tasks)?;
    (alg1 > 1e-12).then(|| eq4 / alg1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, Workload};
    use std::num::NonZeroUsize;

    fn local(threads: usize) -> Executor {
        Executor::local(NonZeroUsize::new(threads).unwrap())
    }

    fn small_params() -> AcceptanceParams {
        let spec = CampaignSpec::parse(
            r#"
workload = "acceptance"
[acceptance]
sets_per_point = 6
max_attempts_factor = 20
utilizations = { values = [0.5] }
"#,
        )
        .unwrap();
        match spec.validate().unwrap().workload {
            Workload::Acceptance(a) => a,
            _ => unreachable!(),
        }
    }

    #[test]
    fn points_cover_the_grid_in_order() {
        let params = small_params();
        let engine = AcceptanceEngine::new();
        let points = run(&params, 7, &local(2), &engine, None).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].policy, "fp");
        assert_eq!(points[1].policy, "edf");
        for p in &points {
            assert!(p.generated > 0, "no sets generated at U=0.5");
            assert_eq!(p.accepted.len(), 4);
            assert!(p.attempts >= p.generated);
        }
    }

    #[test]
    fn policies_share_base_task_sets_via_memo() {
        let params = small_params();
        let engine = AcceptanceEngine::new();
        let _ = run(&params, 7, &local(1), &engine, None).unwrap();
        let stats = engine.taskset_memo.stats();
        assert!(
            stats.hits > 0,
            "EDF grid points should reuse FP base sets (hits {}, misses {})",
            stats.hits,
            stats.misses
        );
    }

    #[test]
    fn dominance_holds_on_the_small_grid() {
        let params = small_params();
        let engine = AcceptanceEngine::new();
        let points = run(&params, 7, &local(2), &engine, None).unwrap();
        for p in &points {
            // accepted = [none, eq4, alg1, capped]
            assert!(p.accepted[1] <= p.accepted[2], "Eq.4 beat Algorithm 1");
            assert!(p.accepted[2] <= p.accepted[0], "Algorithm 1 beat no-delay");
            assert!(
                p.accepted[2] <= p.accepted[3],
                "Algorithm 1 beat its capped variant"
            );
            assert!(p.pessimism_gap_max >= p.pessimism_gap_mean);
        }
    }
}
