//! The soundness-sweep workload: Theorem 1 and the Figure 2 phenomenon at
//! scale, over random step curves, with optional discrete-event simulator
//! validation — the engine-backed generalization of the one-off
//! `soundness_sweep` binary.
//!
//! Violations are *recorded* (and surfaced in the campaign summary) rather
//! than panicking mid-sweep, so a single bad trial cannot hide how many
//! others also failed.

use fnpr_core::{algorithm1, eq4_bound_for_curve, exact_worst_case, naive_bound, DelayCurve};
use fnpr_sim::{check_against_algorithm1, simulate, Scenario, SimConfig};
use fnpr_synth::random_step_curve;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;

use crate::error::CampaignError;
use crate::exec::{parallel_map, stream_seed};
use crate::memo::{curve_hash, Memo, ScenarioHasher};
use crate::report::{SoundnessRow, SoundnessShard};
use crate::spec::SoundnessParams;

const TAG_TRIAL: u64 = 0x5452_4941; // "TRIA"
const TAG_BOUNDS: u64 = 0x424e_4453; // "BNDS"

/// The four analytical bounds of one `(curve, Q)` scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsQuad {
    /// The unsound naive selection.
    pub naive: f64,
    /// The exact adversary.
    pub exact: f64,
    /// Algorithm 1.
    pub algorithm1: f64,
    /// The Eq. 4 state of the art.
    pub eq4: f64,
}

/// Shared state across shards of one `run` call.
pub struct SoundnessEngine {
    /// `(curve, Q) → bounds`, computed once per distinct scenario.
    pub bounds_memo: Memo<Option<BoundsQuad>>,
}

impl SoundnessEngine {
    /// A fresh engine with empty memo tables.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bounds_memo: Memo::new(),
        }
    }
}

impl Default for SoundnessEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs `params.trials` trials, sharded `trials_per_shard` at a time.
///
/// # Errors
///
/// Propagates the first analysis failure (curve generation and bound
/// computations cannot legitimately fail on the generated inputs).
pub fn run(
    params: &SoundnessParams,
    campaign_seed: u64,
    threads: NonZeroUsize,
    engine: &SoundnessEngine,
) -> Result<Vec<SoundnessShard>, CampaignError> {
    let shard_count = params.trials.div_ceil(params.trials_per_shard);
    parallel_map(shard_count, threads, |shard| {
        run_shard(params, campaign_seed, shard, engine)
    })
}

fn run_shard(
    params: &SoundnessParams,
    campaign_seed: u64,
    shard: usize,
    engine: &SoundnessEngine,
) -> Result<SoundnessShard, CampaignError> {
    let first_trial = shard * params.trials_per_shard;
    let last_trial = (first_trial + params.trials_per_shard).min(params.trials);
    let mut out = SoundnessShard {
        first_trial,
        rows: Vec::with_capacity(last_trial - first_trial),
        naive_unsound: 0,
        theorem1_violations: 0,
        eq4_violations: 0,
        sim_violations: 0,
        ratio_sum: 0.0,
        ratio_max: 0.0,
        ratio_count: 0,
    };
    for trial in first_trial..last_trial {
        run_trial(params, campaign_seed, trial, engine, &mut out)?;
    }
    Ok(out)
}

fn run_trial(
    params: &SoundnessParams,
    campaign_seed: u64,
    trial: usize,
    engine: &SoundnessEngine,
    out: &mut SoundnessShard,
) -> Result<(), CampaignError> {
    // One stream per trial, a pure function of (seed, trial) — never of the
    // shard size or the thread that runs it.
    let mut rng = StdRng::seed_from_u64(stream_seed(TAG_TRIAL, campaign_seed, &[trial as u64]));
    let c = rng.gen_range(params.c_range.0..params.c_range.1);
    let segments = rng.gen_range(params.segments.0..params.segments.1) as usize;
    let max_value = rng.gen_range(params.max_value_range.0..params.max_value_range.1);
    let curve = random_step_curve(&mut rng, c, segments, max_value)
        .map_err(|e| CampaignError::Analysis(format!("trial {trial}: bad curve: {e:?}")))?;
    let q = curve.max_value() + rng.gen_range(params.q_slack_range.0..params.q_slack_range.1);

    let key = ScenarioHasher::new(TAG_BOUNDS)
        .word(curve_hash(&curve))
        .f64(q)
        .finish();
    let bounds = engine
        .bounds_memo
        .get_or_insert_with(key, || compute_bounds(&curve, q))
        .ok_or_else(|| {
            CampaignError::Analysis(format!(
                "trial {trial}: bound computation failed (q {q}, curve max {})",
                curve.max_value()
            ))
        })?;

    let sim_max = if params.simulate {
        let scenario = Scenario::random_interference(
            c,
            q,
            &curve,
            rng.gen_range(0.1..2.0),
            1.0,
            q * 2.0,
            c * 4.0,
            &mut rng,
        );
        let result = simulate(&scenario, &SimConfig::floating_npr_fp(1e9));
        let check = check_against_algorithm1(&result, 1, &curve, q)
            .map_err(|e| CampaignError::Analysis(format!("trial {trial}: {e:?}")))?;
        if !check.holds {
            out.sim_violations += 1;
        }
        Some(check.observed_max)
    } else {
        None
    };

    if bounds.naive < bounds.exact - 1e-9 {
        out.naive_unsound += 1;
    }
    if bounds.exact > bounds.algorithm1 + 1e-6 {
        out.theorem1_violations += 1;
    }
    if bounds.algorithm1 > bounds.eq4 + 1e-6 {
        out.eq4_violations += 1;
    }
    if bounds.exact > 1e-9 {
        let ratio = bounds.algorithm1 / bounds.exact;
        out.ratio_sum += ratio;
        out.ratio_max = out.ratio_max.max(ratio);
        out.ratio_count += 1;
    }
    out.rows.push(SoundnessRow {
        trial,
        q,
        naive: bounds.naive,
        exact: bounds.exact,
        algorithm1: bounds.algorithm1,
        eq4: bounds.eq4,
        sim_max,
    });
    Ok(())
}

/// Computes all four bounds; `None` on any divergence or analysis error
/// (cannot happen for `q > max_value`, which the generator guarantees).
fn compute_bounds(curve: &DelayCurve, q: f64) -> Option<BoundsQuad> {
    Some(BoundsQuad {
        naive: naive_bound(curve, q).ok()?.total_delay,
        exact: exact_worst_case(curve, q).ok()??.total_delay,
        algorithm1: algorithm1(curve, q).ok()?.total_delay()?,
        eq4: eq4_bound_for_curve(curve, q).ok()?.total_delay()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, Workload, WorkloadKind};

    fn small_params(trials: usize, simulate: bool) -> SoundnessParams {
        let spec = CampaignSpec {
            workload: Some(WorkloadKind::Soundness),
            soundness: Some(crate::spec::SoundnessSpec {
                trials: Some(trials),
                simulate: Some(simulate),
                ..Default::default()
            }),
            ..CampaignSpec::default()
        };
        match spec.validate().unwrap().workload {
            Workload::Soundness(s) => s,
            _ => unreachable!(),
        }
    }

    #[test]
    fn ordering_and_rows_over_a_small_sweep() {
        let params = small_params(24, true);
        let engine = SoundnessEngine::new();
        let shards = run(&params, 2012, NonZeroUsize::new(4).unwrap(), &engine).unwrap();
        assert_eq!(shards.len(), 24);
        let mut naive_unsound = 0;
        for shard in &shards {
            assert_eq!(shard.theorem1_violations, 0, "Theorem 1 violated");
            assert_eq!(shard.eq4_violations, 0, "Eq. 4 dominance violated");
            assert_eq!(shard.sim_violations, 0, "simulation exceeded the bound");
            naive_unsound += shard.naive_unsound;
            for row in &shard.rows {
                assert!(row.exact <= row.algorithm1 + 1e-6);
                assert!(row.algorithm1 <= row.eq4 + 1e-6);
                assert!(row.sim_max.unwrap() <= row.algorithm1 + 1e-6);
            }
        }
        assert!(
            naive_unsound > 0,
            "sweep too small to show Figure 2 unsoundness"
        );
    }

    #[test]
    fn trial_results_independent_of_shard_size() {
        let engine_a = SoundnessEngine::new();
        let mut params = small_params(10, false);
        let a = run(&params, 5, NonZeroUsize::new(1).unwrap(), &engine_a).unwrap();
        params.trials_per_shard = 5;
        let engine_b = SoundnessEngine::new();
        let b = run(&params, 5, NonZeroUsize::new(3).unwrap(), &engine_b).unwrap();
        let rows_a: Vec<_> = a.iter().flat_map(|s| s.rows.clone()).collect();
        let rows_b: Vec<_> = b.iter().flat_map(|s| s.rows.clone()).collect();
        assert_eq!(rows_a, rows_b);
    }
}
