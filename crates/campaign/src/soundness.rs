//! The soundness-sweep workload: Theorem 1 and the Figure 2 phenomenon at
//! scale, over random step curves, with optional discrete-event simulator
//! validation — the engine-backed generalization of the one-off
//! `soundness_sweep` binary.
//!
//! Violations are *recorded* (and surfaced in the campaign summary) rather
//! than panicking mid-sweep, so a single bad trial cannot hide how many
//! others also failed.

use fnpr_core::{algorithm1, eq4_bound_for_curve, exact_worst_case, naive_bound, DelayCurve};
use fnpr_sim::{check_against_algorithm1, simulate, Scenario, SimConfig};
use fnpr_synth::random_step_curve;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::backend::Executor;
use crate::error::CampaignError;
use crate::exec::stream_seed;
use crate::memo::{Memo, ScenarioHasher};
use crate::report::{SoundnessRow, SoundnessShard};
use crate::spec::SoundnessParams;
use crate::store::{bounds_key, BoundsEntry, ResultStore, StoreTable};

const TAG_TRIAL: u64 = 0x5452_4941; // "TRIA"
const TAG_SHARD: u64 = 0x534e_5348; // "SNSH"

/// The four analytical bounds of one `(curve, Q)` scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsQuad {
    /// The unsound naive selection.
    pub naive: f64,
    /// The exact adversary.
    pub exact: f64,
    /// Algorithm 1.
    pub algorithm1: f64,
    /// The Eq. 4 state of the art.
    pub eq4: f64,
}

/// Shared state across shards of one `run` call.
pub struct SoundnessEngine {
    /// `(curve, Q) → bounds`, computed once per distinct scenario.
    pub bounds_memo: Memo<Option<BoundsQuad>>,
}

impl SoundnessEngine {
    /// A fresh engine with empty memo tables.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bounds_memo: Memo::named("bounds"),
        }
    }
}

impl Default for SoundnessEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs `params.trials` trials, sharded `trials_per_shard` at a time.
///
/// # Errors
///
/// Propagates the first analysis failure (curve generation and bound
/// computations cannot legitimately fail on the generated inputs).
pub fn run(
    params: &SoundnessParams,
    campaign_seed: u64,
    executor: &Executor,
    engine: &SoundnessEngine,
    store: Option<&ResultStore>,
) -> Result<Vec<SoundnessShard>, CampaignError> {
    let shard_count = params.trials.div_ceil(params.trials_per_shard);
    executor.run(shard_count, &|shard| {
        compute_shard(params, campaign_seed, shard, engine, store)
    })
}

/// Computes one shard by index through the store's counted read-through
/// path — also the worker-subprocess entry point
/// ([`crate::backend::run_worker`]); the shard range is pure index math,
/// so coordinator and workers agree on it by construction.
pub(crate) fn compute_shard(
    params: &SoundnessParams,
    campaign_seed: u64,
    shard: usize,
    engine: &SoundnessEngine,
    store: Option<&ResultStore>,
) -> Result<SoundnessShard, CampaignError> {
    let compute = || run_shard(params, campaign_seed, shard, engine, store);
    match store {
        Some(s) => s.get_or_compute(
            StoreTable::SoundnessShards,
            shard_key(params, campaign_seed, shard),
            compute,
        ),
        None => compute(),
    }
}

/// Content address of one finished shard: campaign seed, every per-trial
/// generation parameter, and the shard's `[first, last)` trial range —
/// deliberately **not** the total trial count, so extending `trials`
/// restores every complete shard of the shorter run (trial streams are
/// pure functions of the trial index). A formerly-final *partial* shard
/// has a different `last_trial` and recomputes, which is exactly right.
fn shard_key(params: &SoundnessParams, campaign_seed: u64, shard: usize) -> u128 {
    let first_trial = shard * params.trials_per_shard;
    let last_trial = (first_trial + params.trials_per_shard).min(params.trials);
    ScenarioHasher::new(TAG_SHARD)
        .word(campaign_seed)
        .word(u64::from(params.simulate))
        .f64(params.c_range.0)
        .f64(params.c_range.1)
        .word(params.segments.0)
        .word(params.segments.1)
        .f64(params.max_value_range.0)
        .f64(params.max_value_range.1)
        .f64(params.q_slack_range.0)
        .f64(params.q_slack_range.1)
        .word(first_trial as u64)
        .word(last_trial as u64)
        .finish128()
}

fn run_shard(
    params: &SoundnessParams,
    campaign_seed: u64,
    shard: usize,
    engine: &SoundnessEngine,
    store: Option<&ResultStore>,
) -> Result<SoundnessShard, CampaignError> {
    let first_trial = shard * params.trials_per_shard;
    let last_trial = (first_trial + params.trials_per_shard).min(params.trials);
    let mut out = SoundnessShard {
        first_trial,
        rows: Vec::with_capacity(last_trial - first_trial),
        naive_unsound: 0,
        theorem1_violations: 0,
        eq4_violations: 0,
        sim_violations: 0,
        ratio_sum: 0.0,
        ratio_max: 0.0,
        ratio_count: 0,
    };
    for trial in first_trial..last_trial {
        run_trial(params, campaign_seed, trial, engine, store, &mut out)?;
    }
    Ok(out)
}

fn run_trial(
    params: &SoundnessParams,
    campaign_seed: u64,
    trial: usize,
    engine: &SoundnessEngine,
    store: Option<&ResultStore>,
    out: &mut SoundnessShard,
) -> Result<(), CampaignError> {
    // One stream per trial, a pure function of (seed, trial) — never of the
    // shard size or the thread that runs it.
    let mut rng = StdRng::seed_from_u64(stream_seed(TAG_TRIAL, campaign_seed, &[trial as u64]));
    let c = rng.gen_range(params.c_range.0..params.c_range.1);
    let segments = rng.gen_range(params.segments.0..params.segments.1) as usize;
    let max_value = rng.gen_range(params.max_value_range.0..params.max_value_range.1);
    let curve = random_step_curve(&mut rng, c, segments, max_value)
        .map_err(|e| CampaignError::Analysis(format!("trial {trial}: bad curve: {e:?}")))?;
    let q = curve.max_value() + rng.gen_range(params.q_slack_range.0..params.q_slack_range.1);

    let key = bounds_key(&curve, q);
    let bounds = engine
        .bounds_memo
        .get_or_insert_with(key, || compute_bounds(&curve, q, store, key))
        .ok_or_else(|| {
            CampaignError::Analysis(format!(
                "trial {trial}: bound computation failed (q {q}, curve max {})",
                curve.max_value()
            ))
        })?;

    let sim_max = if params.simulate {
        let scenario = Scenario::random_interference(
            c,
            q,
            &curve,
            rng.gen_range(0.1..2.0),
            1.0,
            q * 2.0,
            c * 4.0,
            &mut rng,
        );
        let result = simulate(&scenario, &SimConfig::floating_npr_fp(1e9));
        let check = check_against_algorithm1(&result, 1, &curve, q)
            .map_err(|e| CampaignError::Analysis(format!("trial {trial}: {e:?}")))?;
        if !check.holds {
            out.sim_violations += 1;
        }
        Some(check.observed_max)
    } else {
        None
    };

    if bounds.naive < bounds.exact - 1e-9 {
        out.naive_unsound += 1;
    }
    if bounds.exact > bounds.algorithm1 + 1e-6 {
        out.theorem1_violations += 1;
    }
    if bounds.algorithm1 > bounds.eq4 + 1e-6 {
        out.eq4_violations += 1;
    }
    if bounds.exact > 1e-9 {
        let ratio = bounds.algorithm1 / bounds.exact;
        out.ratio_sum += ratio;
        out.ratio_max = out.ratio_max.max(ratio);
        out.ratio_count += 1;
    }
    out.rows.push(SoundnessRow {
        trial,
        q,
        naive: bounds.naive,
        exact: bounds.exact,
        algorithm1: bounds.algorithm1,
        eq4: bounds.eq4,
        sim_max,
    });
    Ok(())
}

/// Computes all four bounds; `None` on any divergence or analysis error
/// (cannot happen for `q > max_value`, which the generator guarantees).
///
/// Consults the store's **shared** bounds table first (ROADMAP follow-up
/// (b): one `(curve, Q)` table for the `[cfg]` and soundness workloads). A
/// complete entry restores the whole quad; a partial `[cfg]`-written entry
/// (Algorithm 1 / Eq. 4 only) seeds those two halves — the computations
/// are the most expensive of the four and deterministic, so the restored
/// totals are the exact values a recompute would produce — and the
/// completed quad is written back, upgrading the entry in place.
fn compute_bounds(
    curve: &DelayCurve,
    q: f64,
    store: Option<&ResultStore>,
    key: u128,
) -> Option<BoundsQuad> {
    let prior: Option<BoundsEntry> = store.and_then(|s| s.get(StoreTable::Bounds, key));
    if let Some(entry) = prior {
        if entry.is_complete() {
            if let Some(store) = store {
                store.count(StoreTable::Bounds, true);
            }
            return Some(BoundsQuad {
                naive: entry.naive?,
                exact: entry.exact?,
                algorithm1: entry.alg1?,
                eq4: entry.eq4?,
            });
        }
    }
    let (alg1, eq4) = match prior {
        // A written entry is authoritative for its alg1/eq4 fields (`None`
        // there means the bound diverged — the same `None` a recompute
        // would produce below).
        Some(entry) => (entry.alg1, entry.eq4),
        None => (
            algorithm1(curve, q).ok()?.total_delay(),
            eq4_bound_for_curve(curve, q).ok()?.total_delay(),
        ),
    };
    let quad = BoundsQuad {
        naive: naive_bound(curve, q).ok()?.total_delay,
        exact: exact_worst_case(curve, q).ok()??.total_delay,
        algorithm1: alg1?,
        eq4: eq4?,
    };
    if let Some(store) = store {
        store.count(StoreTable::Bounds, false);
        store.put(
            StoreTable::Bounds,
            key,
            &BoundsEntry {
                alg1: Some(quad.algorithm1),
                eq4: Some(quad.eq4),
                naive: Some(quad.naive),
                exact: Some(quad.exact),
            },
        );
    }
    Some(quad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, Workload, WorkloadKind};
    use std::num::NonZeroUsize;

    fn local(threads: usize) -> Executor {
        Executor::local(NonZeroUsize::new(threads).unwrap())
    }

    fn small_params(trials: usize, simulate: bool) -> SoundnessParams {
        let spec = CampaignSpec {
            workload: Some(WorkloadKind::Soundness),
            soundness: Some(crate::spec::SoundnessSpec {
                trials: Some(trials),
                simulate: Some(simulate),
                ..Default::default()
            }),
            ..CampaignSpec::default()
        };
        match spec.validate().unwrap().workload {
            Workload::Soundness(s) => s,
            _ => unreachable!(),
        }
    }

    #[test]
    fn ordering_and_rows_over_a_small_sweep() {
        let params = small_params(24, true);
        let engine = SoundnessEngine::new();
        let shards = run(&params, 2012, &local(4), &engine, None).unwrap();
        assert_eq!(shards.len(), 24);
        let mut naive_unsound = 0;
        for shard in &shards {
            assert_eq!(shard.theorem1_violations, 0, "Theorem 1 violated");
            assert_eq!(shard.eq4_violations, 0, "Eq. 4 dominance violated");
            assert_eq!(shard.sim_violations, 0, "simulation exceeded the bound");
            naive_unsound += shard.naive_unsound;
            for row in &shard.rows {
                assert!(row.exact <= row.algorithm1 + 1e-6);
                assert!(row.algorithm1 <= row.eq4 + 1e-6);
                assert!(row.sim_max.unwrap() <= row.algorithm1 + 1e-6);
            }
        }
        assert!(
            naive_unsound > 0,
            "sweep too small to show Figure 2 unsoundness"
        );
    }

    #[test]
    fn partial_bounds_entries_seed_and_upgrade_in_place() {
        // The cross-workload path: a `[cfg]` campaign wrote a *partial*
        // BoundsEntry (alg1/eq4 only) for a (curve, Q) this soundness run
        // now needs. compute_bounds must treat the written halves as
        // authoritative (they are: same deterministic functions, same
        // inputs — sentinel values here make the reuse observable),
        // compute only naive/exact, and write back the completed entry.
        let dir = crate::testutil::scratch_dir("soundness_bounds");
        let store = crate::store::ResultStore::open(&dir.join("bounds.log")).unwrap();

        let curve = DelayCurve::from_breakpoints([(0.0, 2.0), (30.0, 0.5)], 90.0).unwrap();
        let q = 9.0;
        let key = bounds_key(&curve, q);
        let reference = compute_bounds(&curve, q, None, key).unwrap();

        // Distinguishable sentinels prove the entry halves are served
        // rather than recomputed.
        let sentinel = BoundsEntry {
            alg1: Some(reference.algorithm1 + 0.125),
            eq4: Some(reference.eq4 + 0.25),
            naive: None,
            exact: None,
        };
        store.put(StoreTable::Bounds, key, &sentinel);
        let quad = compute_bounds(&curve, q, Some(&store), key).unwrap();
        assert_eq!(quad.algorithm1, sentinel.alg1.unwrap(), "alg1 recomputed");
        assert_eq!(quad.eq4, sentinel.eq4.unwrap(), "eq4 recomputed");
        assert_eq!(quad.naive, reference.naive);
        assert_eq!(quad.exact, reference.exact);
        // The entry was upgraded in place to a complete quad...
        let upgraded: BoundsEntry = store.get(StoreTable::Bounds, key).unwrap();
        assert!(upgraded.is_complete());
        assert_eq!(upgraded.alg1, sentinel.alg1);
        assert_eq!(upgraded.naive, Some(reference.naive));
        // ...which a second lookup restores whole (no further computation).
        let restored = compute_bounds(&curve, q, Some(&store), key).unwrap();
        assert_eq!(restored, quad);

        // A divergent half in a written entry propagates as a failed quad,
        // exactly like a divergent recompute would.
        let divergent_key = key ^ 1;
        store.put(
            StoreTable::Bounds,
            divergent_key,
            &BoundsEntry {
                alg1: None,
                eq4: Some(1.0),
                naive: None,
                exact: None,
            },
        );
        assert_eq!(compute_bounds(&curve, q, Some(&store), divergent_key), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trial_results_independent_of_shard_size() {
        let engine_a = SoundnessEngine::new();
        let mut params = small_params(10, false);
        let a = run(&params, 5, &local(1), &engine_a, None).unwrap();
        params.trials_per_shard = 5;
        let engine_b = SoundnessEngine::new();
        let b = run(&params, 5, &local(3), &engine_b, None).unwrap();
        let rows_a: Vec<_> = a.iter().flat_map(|s| s.rows.clone()).collect();
        let rows_b: Vec<_> = b.iter().flat_map(|s| s.rows.clone()).collect();
        assert_eq!(rows_a, rows_b);
    }
}
