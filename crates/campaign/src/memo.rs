//! Scenario-hash memoization.
//!
//! Campaign grids repeat work by construction: the same base task set is
//! analysed under both fixed-priority and EDF policies, re-runs of an
//! overlapping spec revisit identical `(curve, Q)` pairs, and duplicated
//! grid points are common in hand-written sweeps. The [`Memo`] table keys
//! cached results by a structural hash of the scenario inputs so each is
//! computed exactly once per process.
//!
//! Memoization never affects results — a hit returns exactly the value a
//! recomputation would produce (all analyses are deterministic functions of
//! their inputs) — so the sharded executor stays bit-identical at any
//! thread count even though hit/miss *counts* are scheduling-dependent.
//!
//! Keys are **128-bit** structural hashes ([`ScenarioHasher::finish128`]).
//! The table used to key by the bare 64-bit finish, which meant two
//! distinct scenarios colliding in 64 bits silently shared one cached
//! result — survivable odds within a process, but fatal once the same keys
//! address the persistent [`crate::store`] across runs and machines. Shard
//! selection still uses the low word (value-compatible with the historical
//! 64-bit hash by construction).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards. Power of two; small because the
/// working set per campaign is modest — the point is collision avoidance
/// between worker threads, not a concurrent-map benchmark.
const SHARDS: usize = 16;

/// The observability side channel of a named memo: per-table and aggregate
/// hit/miss counters in the global [`fnpr_obs`] registry. Write-only — the
/// deterministic aggregates never read these.
#[derive(Clone, Copy)]
struct MemoObs {
    hit: fnpr_obs::Counter,
    miss: fnpr_obs::Counter,
    all_hit: fnpr_obs::Counter,
    all_miss: fnpr_obs::Counter,
}

/// A sharded, thread-safe memo table from 128-bit scenario hashes to
/// results.
pub struct Memo<V> {
    shards: Vec<Mutex<HashMap<u128, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    obs: Option<MemoObs>,
}

impl<V: Clone> Memo<V> {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            obs: None,
        }
    }

    /// An empty table that additionally mirrors its hit/miss counts into
    /// the global telemetry registry, under `campaign.memo.<table>.hit` /
    /// `.miss` plus the cross-table aggregates `campaign.memo.hit` /
    /// `campaign.memo.miss`. Purely a side channel: the [`Self::stats`]
    /// counters and all campaign outputs are unaffected.
    #[must_use]
    pub fn named(table: &str) -> Self {
        let mut memo = Self::new();
        memo.obs = Some(MemoObs {
            hit: fnpr_obs::counter(&format!("campaign.memo.{table}.hit")),
            miss: fnpr_obs::counter(&format!("campaign.memo.{table}.miss")),
            all_hit: fnpr_obs::counter("campaign.memo.hit"),
            all_miss: fnpr_obs::counter("campaign.memo.miss"),
        });
        memo
    }

    /// Returns the cached value for `key`, or computes, stores and returns
    /// it. `compute` may run more than once across racing threads; all
    /// computed values for a key are identical by construction, so either
    /// insertion wins harmlessly.
    pub fn get_or_insert_with(&self, key: u128, compute: impl FnOnce() -> V) -> V {
        // Shard by the low word alone: it is the historical 64-bit hash, so
        // shard occupancy is unchanged by the key widening.
        let shard = &self.shards[(key as u64 as usize) % SHARDS];
        if let Some(v) = shard.lock().expect("memo shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = self.obs {
                obs.hit.incr();
                obs.all_hit.incr();
            }
            return v.clone();
        }
        // Compute outside the lock: analyses can be orders of magnitude
        // slower than a map insert, and holding a shard would serialize
        // unrelated keys.
        let value = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = self.obs {
            obs.miss.incr();
            obs.all_miss.incr();
        }
        shard
            .lock()
            .expect("memo shard poisoned")
            .entry(key)
            .or_insert_with(|| value.clone());
        value
    }

    /// Hit/miss counters since construction. Informational only — these are
    /// scheduling-dependent and deliberately excluded from deterministic
    /// campaign aggregates.
    #[must_use]
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<V: Clone> Default for Memo<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Counters reported on stderr after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl std::ops::Add for MemoStats {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
        }
    }
}

/// The streaming structural hasher for scenario keys — the *same*
/// implementation `fnpr-core` uses for `DelayCurve::structural_hash`,
/// re-exported under the campaign's historical name so there is exactly
/// one definition of the mixing scheme in the workspace (a drift between
/// two copies would silently split the memo key spaces).
pub use fnpr_core::StructuralHasher as ScenarioHasher;

/// Hashes a delay curve structurally (all breakpoints and values).
///
/// Since the hash moved into `fnpr-core` this is a thin alias for
/// [`fnpr_core::DelayCurve::structural_hash`], which is computed **once**
/// at curve construction and cached — memo lookups no longer re-hash every
/// segment on every grid point. The value (and its mixing scheme) is
/// unchanged, so memo keys stay comparable within a process either way.
#[must_use]
pub fn curve_hash(curve: &fnpr_core::DelayCurve) -> u64 {
    curve.structural_hash()
}

/// The 128-bit curve hash ([`fnpr_core::DelayCurve::structural_hash128`],
/// cached at construction like the 64-bit value): what memo and store keys
/// use. Its low word is exactly [`curve_hash`].
#[must_use]
pub fn curve_hash128(curve: &fnpr_core::DelayCurve) -> u128 {
    curve.structural_hash128()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fnpr_core::DelayCurve;

    #[test]
    fn memo_caches_and_counts() {
        let memo: Memo<f64> = Memo::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v = memo.get_or_insert_with(42, || {
                calls += 1;
                7.5
            });
            assert_eq!(v, 7.5);
        }
        assert_eq!(calls, 1);
        assert_eq!(memo.stats(), MemoStats { hits: 2, misses: 1 });
    }

    #[test]
    fn named_memo_mirrors_counts_into_the_obs_registry() {
        // Delta assertions on a uniquely named table keep this robust
        // against other tests sharing the process-global registry.
        fnpr_obs::set_enabled(true);
        let hit = fnpr_obs::counter("campaign.memo.test_memo_mirror.hit");
        let miss = fnpr_obs::counter("campaign.memo.test_memo_mirror.miss");
        let (h0, m0) = (hit.value(), miss.value());
        let memo: Memo<u8> = Memo::named("test_memo_mirror");
        for _ in 0..3 {
            memo.get_or_insert_with(9, || 4);
        }
        assert_eq!(memo.stats(), MemoStats { hits: 2, misses: 1 });
        assert_eq!(hit.value() - h0, 2);
        assert_eq!(miss.value() - m0, 1);
    }

    #[test]
    fn colliding_64_bit_keys_no_longer_alias() {
        // Regression for the bare-u64 key scheme: two distinct scenarios
        // whose hashes agree in the low 64 bits (same shard, same legacy
        // key) must keep separate entries now that keys are 128-bit.
        let memo: Memo<u32> = Memo::new();
        let low = 0xdead_beef_0123_4567u64;
        let a = u128::from(low); // high word 0
        let b = (1u128 << 64) | u128::from(low); // same low word, high 1
        assert_eq!(a as u64, b as u64, "keys must share the 64-bit shard key");
        let va = memo.get_or_insert_with(a, || 1);
        let vb = memo.get_or_insert_with(b, || 2);
        assert_eq!((va, vb), (1, 2), "64-bit-colliding scenarios aliased");
        // And both entries stay independently retrievable.
        assert_eq!(memo.get_or_insert_with(a, || 99), 1);
        assert_eq!(memo.get_or_insert_with(b, || 99), 2);
        assert_eq!(memo.stats(), MemoStats { hits: 2, misses: 2 });
    }

    #[test]
    fn curve_hash128_low_word_is_curve_hash() {
        let curve = DelayCurve::from_breakpoints([(0.0, 8.0), (40.0, 1.0)], 100.0).unwrap();
        assert_eq!(curve_hash128(&curve) as u64, curve_hash(&curve));
        // The high word actually distinguishes (not zero-padded).
        assert_ne!(curve_hash128(&curve) >> 64, 0);
    }

    #[test]
    fn hasher_separates_domains_and_values() {
        let a = ScenarioHasher::new(1).f64(0.5).finish();
        let b = ScenarioHasher::new(2).f64(0.5).finish();
        let c = ScenarioHasher::new(1).f64(0.25).finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, ScenarioHasher::new(1).f64(0.5).finish());
    }

    #[test]
    fn zero_normalization() {
        assert_eq!(
            ScenarioHasher::new(0).f64(0.0).finish(),
            ScenarioHasher::new(0).f64(-0.0).finish()
        );
    }

    #[test]
    fn nan_bit_patterns_hash_identically() {
        let canonical = ScenarioHasher::new(0).f64(f64::NAN).finish();
        for bits in [
            0x7ff8_0000_0000_0000u64, // quiet NaN
            0x7ff8_0000_0000_0001,    // payload variant
            0x7ff0_0000_0000_0001,    // signalling NaN
            0xfff8_0000_0000_0000,    // negative quiet NaN
            0xfff0_dead_beef_0001,    // negative signalling with payload
        ] {
            let x = f64::from_bits(bits);
            assert!(x.is_nan());
            assert_eq!(
                ScenarioHasher::new(0).f64(x).finish(),
                canonical,
                "NaN bits {bits:#x} hashed differently"
            );
        }
        // And NaN stays distinct from ordinary values and infinities.
        assert_ne!(canonical, ScenarioHasher::new(0).f64(0.0).finish());
        assert_ne!(
            canonical,
            ScenarioHasher::new(0).f64(f64::INFINITY).finish()
        );
    }

    #[test]
    fn curve_hash_distinguishes_shapes() {
        let a = DelayCurve::from_breakpoints([(0.0, 8.0), (40.0, 1.0)], 100.0).unwrap();
        let b = DelayCurve::from_breakpoints([(0.0, 8.0), (40.0, 2.0)], 100.0).unwrap();
        let a2 = DelayCurve::from_breakpoints([(0.0, 8.0), (40.0, 1.0)], 100.0).unwrap();
        assert_ne!(curve_hash(&a), curve_hash(&b));
        assert_eq!(curve_hash(&a), curve_hash(&a2));
    }

    #[test]
    fn cached_curve_hash_matches_the_legacy_segment_walk() {
        // `curve_hash` used to re-hash every segment per call via
        // ScenarioHasher; the cached fnpr-core hash must produce the exact
        // same value so memo keys stay stable across the refactor.
        let curves = [
            DelayCurve::from_breakpoints([(0.0, 8.0), (40.0, 1.0)], 100.0).unwrap(),
            DelayCurve::constant(0.0, 7.5).unwrap(),
            DelayCurve::from_breakpoints([(0.0, 1.5), (2.0, 0.0), (60.0, 9.25)], 64.0).unwrap(),
        ];
        for curve in &curves {
            let mut h = ScenarioHasher::new(0x43_55_52_56); // "CURV"
            for seg in curve.segments() {
                h = h.f64(seg.start).f64(seg.end).f64(seg.value);
            }
            let legacy = h.f64(curve.domain_end()).finish();
            assert_eq!(curve_hash(curve), legacy);
        }
    }
}
