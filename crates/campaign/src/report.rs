//! Result pipeline: per-shard aggregates, the campaign summary, and CSV /
//! JSON rendering.
//!
//! Everything here is a plain named-field struct so the shim serde derive
//! produces real impls; the JSON aggregate is `serde_json::to_string_pretty`
//! of [`CampaignReport`]. All floating-point aggregates are folded in shard
//! order, keeping output byte-identical across thread counts.

use serde::{Deserialize, Serialize};

use crate::spec::WorkloadKind;

/// One (policy × utilization) grid point of an acceptance campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceptancePoint {
    /// Policy label (`fp` / `edf`).
    pub policy: String,
    /// Total utilization of the point.
    pub utilization: f64,
    /// Task sets successfully generated (equipped and feasible).
    pub generated: usize,
    /// Generation attempts spent (includes resampling).
    pub attempts: usize,
    /// Accepted-set counts, aligned with the campaign's method list.
    pub accepted: Vec<usize>,
    /// Acceptance ratios (`accepted / generated`), same alignment.
    pub ratios: Vec<f64>,
    /// Mean Eq.4 overhead ÷ Algorithm 1 overhead over the
    /// `pessimism_gap_count` sets with measurable overhead (≥ 1 when the
    /// paper's dominance claim holds; 0 when no set qualified).
    pub pessimism_gap_mean: f64,
    /// Worst observed Eq.4 ÷ Algorithm 1 overhead ratio.
    pub pessimism_gap_max: f64,
    /// Sets contributing to `pessimism_gap_mean` (the campaign-level mean
    /// weights each point by this, not by `generated`).
    pub pessimism_gap_count: usize,
}

/// One (m × policy × allocation × utilization) grid point of a multicore
/// campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticorePoint {
    /// Core count.
    pub m: usize,
    /// Policy label (`fp` / `edf`).
    pub policy: String,
    /// Allocation label (`first_fit` / `worst_fit` / `best_fit` /
    /// `global`).
    pub allocation: String,
    /// *Per-core* utilization of the point (total target is `m ×` this).
    pub utilization: f64,
    /// Task sets successfully generated.
    pub generated: usize,
    /// Generation attempts spent (includes resampling).
    pub attempts: usize,
    /// Accepted-set counts, aligned with the campaign's method list.
    pub accepted: Vec<usize>,
    /// Acceptance ratios (`accepted / generated`), same alignment.
    pub ratios: Vec<f64>,
    /// Per-task Theorem 1 checks run by the m-core simulator.
    pub sim_checks: usize,
    /// Checks where the observed cumulative delay exceeded the Algorithm 1
    /// bound — expected 0.
    pub sim_violations: usize,
    /// Jobs simulated (denominator of `migrations_mean`).
    pub sim_jobs: usize,
    /// Total migrations observed across simulated jobs.
    pub sim_migrations: u64,
    /// Mean migrations per simulated job (0 when nothing was simulated;
    /// structurally 0 for partitioned allocations).
    pub migrations_mean: f64,
}

/// One trial row of a soundness campaign (granularity follows
/// `trials_per_shard`; by default one row per trial).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoundnessRow {
    /// Trial index within the campaign.
    pub trial: usize,
    /// Region length analysed.
    pub q: f64,
    /// The unsound naive bound (paper Figure 2).
    pub naive: f64,
    /// The exact adversary's worst case.
    pub exact: f64,
    /// Algorithm 1's bound.
    pub algorithm1: f64,
    /// The Eq. 4 state-of-the-art bound.
    pub eq4: f64,
    /// Worst simulated delay (absent when simulation is off).
    pub sim_max: Option<f64>,
}

/// One shard of a soundness campaign: its rows plus streaming counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoundnessShard {
    /// First trial index of the shard.
    pub first_trial: usize,
    /// Per-trial results.
    pub rows: Vec<SoundnessRow>,
    /// Trials where the naive bound fell below the exact worst case
    /// (evidence of Figure 2's unsoundness).
    pub naive_unsound: usize,
    /// Trials violating Theorem 1 (`exact > algorithm1`) — expected 0.
    pub theorem1_violations: usize,
    /// Trials violating Eq. 4 dominance (`algorithm1 > eq4`) — expected 0.
    pub eq4_violations: usize,
    /// Trials where simulation exceeded Algorithm 1's bound — expected 0.
    pub sim_violations: usize,
    /// Sum of `algorithm1 / exact` tightness ratios (over `ratio_count`).
    pub ratio_sum: f64,
    /// Worst tightness ratio.
    pub ratio_max: f64,
    /// Trials contributing to `ratio_sum`.
    pub ratio_count: usize,
}

/// Cross-workload campaign totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Generated task sets (acceptance) or trials (soundness).
    pub instances: usize,
    /// Points/trials violating the paper's dominance ordering — 0 when the
    /// reproduction holds.
    pub dominance_violations: usize,
    /// Simulation runs exceeding the analytical bound — 0 when sound.
    pub sim_violations: usize,
    /// Trials where the naive bound was optimistic (soundness only).
    pub naive_unsound: usize,
    /// Mean tightness/pessimism ratio (workload-specific; see point docs).
    pub pessimism_mean: f64,
    /// Worst tightness/pessimism ratio.
    pub pessimism_max: f64,
}

/// The full campaign result: everything the CSV/JSON exports contain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub name: String,
    /// Which workload ran.
    pub workload: WorkloadKind,
    /// Master seed.
    pub seed: u64,
    /// Stable scenario hash (hex) — two reports with equal hashes ran
    /// identical scenarios.
    pub scenario: String,
    /// Method column labels (acceptance/multicore; empty for soundness).
    pub methods: Vec<String>,
    /// Acceptance grid points (empty for other workloads).
    pub acceptance: Vec<AcceptancePoint>,
    /// Soundness shards (empty for other workloads).
    pub soundness: Vec<SoundnessShard>,
    /// Multicore grid points (empty for other workloads).
    pub multicore: Vec<MulticorePoint>,
    /// Totals.
    pub summary: Summary,
}

impl CampaignReport {
    /// Renders the campaign-canonical CSV (header + one row per grid point
    /// or trial).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        match self.workload {
            WorkloadKind::Acceptance => {
                out.push_str("policy,utilization,generated,attempts");
                for m in &self.methods {
                    out.push(',');
                    out.push_str(m);
                }
                out.push_str(",pessimism_gap_mean,pessimism_gap_max\n");
                for p in &self.acceptance {
                    out.push_str(&format!(
                        "{},{:.4},{},{}",
                        p.policy, p.utilization, p.generated, p.attempts
                    ));
                    for r in &p.ratios {
                        out.push_str(&format!(",{r:.4}"));
                    }
                    out.push_str(&format!(
                        ",{:.4},{:.4}\n",
                        p.pessimism_gap_mean, p.pessimism_gap_max
                    ));
                }
            }
            WorkloadKind::Soundness => {
                out.push_str("trial,q,naive,exact,algorithm1,eq4,sim_max\n");
                for shard in &self.soundness {
                    for row in &shard.rows {
                        let sim = row.sim_max.map_or(String::new(), |s| format!("{s:.3}"));
                        out.push_str(&format!(
                            "{},{:.3},{:.3},{:.3},{:.3},{:.3},{sim}\n",
                            row.trial, row.q, row.naive, row.exact, row.algorithm1, row.eq4
                        ));
                    }
                }
            }
            WorkloadKind::Multicore => {
                out.push_str("m,policy,allocation,utilization,generated,attempts");
                for m in &self.methods {
                    out.push(',');
                    out.push_str(m);
                }
                out.push_str(",sim_checks,sim_violations,migrations_mean\n");
                for p in &self.multicore {
                    out.push_str(&format!(
                        "{},{},{},{:.4},{},{}",
                        p.m, p.policy, p.allocation, p.utilization, p.generated, p.attempts
                    ));
                    for r in &p.ratios {
                        out.push_str(&format!(",{r:.4}"));
                    }
                    out.push_str(&format!(
                        ",{},{},{:.4}\n",
                        p.sim_checks, p.sim_violations, p.migrations_mean
                    ));
                }
            }
        }
        out
    }

    /// Renders the JSON aggregate.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self);
        s.push('\n');
        s
    }
}

/// Builds the cross-workload summary from shard aggregates, folding floats
/// in shard order (deterministic at any thread count).
#[must_use]
pub fn summarize(
    acceptance: &[AcceptancePoint],
    soundness: &[SoundnessShard],
    multicore: &[MulticorePoint],
    method_labels: &[String],
) -> Summary {
    let mut summary = Summary {
        instances: 0,
        dominance_violations: 0,
        sim_violations: 0,
        naive_unsound: 0,
        pessimism_mean: 0.0,
        pessimism_max: 0.0,
    };
    // Methods in ascending acceptance power: a tighter delay bound can only
    // admit more task sets, and `no_delay` admits the most of all. Each
    // adjacent pair of *present* chain methods must be non-decreasing in
    // accepted count; anything else is a dominance violation.
    const POWER_CHAIN: [&str; 4] = ["eq4", "algorithm1", "algorithm1_capped", "no_delay"];
    let chain: Vec<usize> = POWER_CHAIN
        .iter()
        .filter_map(|name| method_labels.iter().position(|l| l == name))
        .collect();
    let mut gap_sum = 0.0;
    let mut gap_weight = 0usize;
    for p in acceptance {
        summary.instances += p.generated;
        for pair in chain.windows(2) {
            if p.accepted[pair[1]] < p.accepted[pair[0]] {
                summary.dominance_violations += 1;
            }
        }
        if p.pessimism_gap_count > 0 {
            gap_sum += p.pessimism_gap_mean * p.pessimism_gap_count as f64;
            gap_weight += p.pessimism_gap_count;
        }
        summary.pessimism_max = summary.pessimism_max.max(p.pessimism_gap_max);
    }
    for p in multicore {
        summary.instances += p.generated;
        for pair in chain.windows(2) {
            if p.accepted[pair[1]] < p.accepted[pair[0]] {
                summary.dominance_violations += 1;
            }
        }
        summary.sim_violations += p.sim_violations;
    }
    let mut ratio_sum = 0.0;
    let mut ratio_count = 0usize;
    for s in soundness {
        summary.instances += s.rows.len();
        summary.dominance_violations += s.theorem1_violations + s.eq4_violations;
        summary.sim_violations += s.sim_violations;
        summary.naive_unsound += s.naive_unsound;
        ratio_sum += s.ratio_sum;
        ratio_count += s.ratio_count;
        summary.pessimism_max = summary.pessimism_max.max(s.ratio_max);
    }
    if gap_weight > 0 {
        summary.pessimism_mean = gap_sum / gap_weight as f64;
    } else if ratio_count > 0 {
        summary.pessimism_mean = ratio_sum / ratio_count as f64;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_acceptance_report() -> CampaignReport {
        let points = vec![AcceptancePoint {
            policy: "fp".into(),
            utilization: 0.5,
            generated: 10,
            attempts: 12,
            accepted: vec![10, 6, 8, 8],
            ratios: vec![1.0, 0.6, 0.8, 0.8],
            pessimism_gap_mean: 1.5,
            pessimism_gap_max: 2.0,
            pessimism_gap_count: 9,
        }];
        let methods: Vec<String> = ["no_delay", "eq4", "algorithm1", "algorithm1_capped"]
            .map(String::from)
            .to_vec();
        let summary = summarize(&points, &[], &[], &methods);
        CampaignReport {
            name: "t".into(),
            workload: WorkloadKind::Acceptance,
            seed: 1,
            scenario: "abcd".into(),
            methods,
            acceptance: points,
            soundness: vec![],
            multicore: vec![],
            summary,
        }
    }

    #[test]
    fn acceptance_csv_shape() {
        let csv = sample_acceptance_report().to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "policy,utilization,generated,attempts,no_delay,eq4,algorithm1,algorithm1_capped,pessimism_gap_mean,pessimism_gap_max"
        );
        assert_eq!(
            lines.next().unwrap(),
            "fp,0.5000,10,12,1.0000,0.6000,0.8000,0.8000,1.5000,2.0000"
        );
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn json_round_trips() {
        let report = sample_acceptance_report();
        let parsed: CampaignReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn summary_flags_dominance_violation() {
        let mut report = sample_acceptance_report();
        // Algorithm 1 accepting FEWER sets than Eq. 4 is a violation.
        report.acceptance[0].accepted = vec![10, 8, 6, 6];
        let summary = summarize(&report.acceptance, &[], &[], &report.methods);
        assert_eq!(summary.dominance_violations, 1);
        // An inflated method beating no-delay is also flagged.
        report.acceptance[0].accepted = vec![5, 6, 6, 6];
        let summary = summarize(&report.acceptance, &[], &[], &report.methods);
        assert!(summary.dominance_violations >= 1);
        // The canonical ordering is clean.
        report.acceptance[0].accepted = vec![10, 6, 8, 8];
        let summary = summarize(&report.acceptance, &[], &[], &report.methods);
        assert_eq!(summary.dominance_violations, 0);
    }

    #[test]
    fn soundness_summary_accumulates() {
        let shards = vec![
            SoundnessShard {
                first_trial: 0,
                rows: vec![SoundnessRow {
                    trial: 0,
                    q: 10.0,
                    naive: 1.0,
                    exact: 2.0,
                    algorithm1: 2.0,
                    eq4: 3.0,
                    sim_max: Some(1.5),
                }],
                naive_unsound: 1,
                theorem1_violations: 0,
                eq4_violations: 0,
                sim_violations: 0,
                ratio_sum: 1.0,
                ratio_max: 1.0,
                ratio_count: 1,
            },
            SoundnessShard {
                first_trial: 1,
                rows: vec![],
                naive_unsound: 2,
                theorem1_violations: 1,
                eq4_violations: 0,
                sim_violations: 1,
                ratio_sum: 2.2,
                ratio_max: 1.2,
                ratio_count: 2,
            },
        ];
        let summary = summarize(&[], &shards, &[], &[]);
        assert_eq!(summary.instances, 1);
        assert_eq!(summary.naive_unsound, 3);
        assert_eq!(summary.dominance_violations, 1);
        assert_eq!(summary.sim_violations, 1);
        assert!((summary.pessimism_mean - (3.2 / 3.0)).abs() < 1e-12);
        assert!((summary.pessimism_max - 1.2).abs() < 1e-12);
    }
}
