//! Result pipeline: per-shard aggregates, the campaign summary, and CSV /
//! JSON rendering.
//!
//! Everything here is a plain named-field struct so the shim serde derive
//! produces real impls; the JSON aggregate is `serde_json::to_string_pretty`
//! of [`CampaignReport`]. All floating-point aggregates are folded in shard
//! order, keeping output byte-identical across thread counts.

use serde::{Deserialize, Serialize};

use crate::spec::WorkloadKind;

/// One (policy × utilization) grid point of an acceptance campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceptancePoint {
    /// Policy label (`fp` / `edf`).
    pub policy: String,
    /// Total utilization of the point.
    pub utilization: f64,
    /// Task sets successfully generated (equipped and feasible).
    pub generated: usize,
    /// Generation attempts spent (includes resampling).
    pub attempts: usize,
    /// Accepted-set counts, aligned with the campaign's method list.
    pub accepted: Vec<usize>,
    /// Acceptance ratios (`accepted / generated`), same alignment.
    pub ratios: Vec<f64>,
    /// Mean Eq.4 overhead ÷ Algorithm 1 overhead over the
    /// `pessimism_gap_count` sets with measurable overhead (≥ 1 when the
    /// paper's dominance claim holds; 0 when no set qualified).
    pub pessimism_gap_mean: f64,
    /// Worst observed Eq.4 ÷ Algorithm 1 overhead ratio.
    pub pessimism_gap_max: f64,
    /// Sets contributing to `pessimism_gap_mean` (the campaign-level mean
    /// weights each point by this, not by `generated`).
    pub pessimism_gap_count: usize,
}

/// One (m × policy × allocation × utilization) grid point of a multicore
/// campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticorePoint {
    /// Core count.
    pub m: usize,
    /// Policy label (`fp` / `edf`).
    pub policy: String,
    /// Allocation label (`first_fit` / `worst_fit` / `best_fit` /
    /// `global`).
    pub allocation: String,
    /// *Per-core* utilization of the point (total target is `m ×` this).
    pub utilization: f64,
    /// Task sets successfully generated.
    pub generated: usize,
    /// Generation attempts spent (includes resampling).
    pub attempts: usize,
    /// Accepted-set counts, aligned with the campaign's method list.
    pub accepted: Vec<usize>,
    /// Acceptance ratios (`accepted / generated`), same alignment.
    pub ratios: Vec<f64>,
    /// Per-task Theorem 1 checks run by the m-core simulator.
    pub sim_checks: usize,
    /// Checks where the observed cumulative delay exceeded the Algorithm 1
    /// bound — expected 0.
    pub sim_violations: usize,
    /// Jobs simulated (denominator of `migrations_mean`).
    pub sim_jobs: usize,
    /// Total migrations observed across simulated jobs.
    pub sim_migrations: u64,
    /// Mean migrations per simulated job (0 when nothing was simulated;
    /// structurally 0 for partitioned allocations).
    pub migrations_mean: f64,
}

/// One grid point of a `[cfg]` campaign: generated structured programs of
/// one shape, analysed through the full Section IV pipeline under one cache
/// geometry, bounded against one `Qi` choice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CfgPoint {
    /// Human-readable shape tag (spec `tag` prefix + `d<depth>_l<loop>_f<footprint>`).
    pub shape: String,
    /// Maximum region nesting depth of the generated programs.
    pub depth: usize,
    /// Maximum loop iteration bound drawn.
    pub loop_iterations: u64,
    /// Distinct data lines in the access pool.
    pub footprint: u64,
    /// Cache sets.
    pub sets: usize,
    /// Cache ways per set.
    pub associativity: usize,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Block reload time (CRPD cost per evicted useful line).
    pub reload_cost: f64,
    /// `Qi` as a fraction of each program's WCET.
    pub q_scale: f64,
    /// Programs generated and analysed at this point.
    pub programs: usize,
    /// Mean basic-block count per program.
    pub blocks_mean: f64,
    /// Mean WCET of the reduced graphs.
    pub wcet_mean: f64,
    /// Mean peak of the derived delay curves `fi`.
    pub curve_max_mean: f64,
    /// Programs whose Algorithm 1 bound converged at this `Qi`.
    pub alg1_converged: usize,
    /// Programs whose Eq. 4 bound converged at this `Qi`.
    pub eq4_converged: usize,
    /// Mean Algorithm 1 cumulative delay over converged programs.
    pub delay_mean: f64,
    /// Mean Eq.4 ÷ Algorithm 1 delay ratio over `pessimism_count`
    /// programs (>= 1 when the paper's dominance claim holds).
    pub pessimism_mean: f64,
    /// Worst observed Eq.4 ÷ Algorithm 1 ratio.
    pub pessimism_max: f64,
    /// Programs contributing to `pessimism_mean` (both bounds converged
    /// with measurable Algorithm 1 delay).
    pub pessimism_count: usize,
    /// Programs violating the dominance ordering (Algorithm 1 above Eq. 4,
    /// or diverging where Eq. 4 converged) — expected 0.
    pub dominance_violations: usize,
}

/// One trial row of a soundness campaign (granularity follows
/// `trials_per_shard`; by default one row per trial).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoundnessRow {
    /// Trial index within the campaign.
    pub trial: usize,
    /// Region length analysed.
    pub q: f64,
    /// The unsound naive bound (paper Figure 2).
    pub naive: f64,
    /// The exact adversary's worst case.
    pub exact: f64,
    /// Algorithm 1's bound.
    pub algorithm1: f64,
    /// The Eq. 4 state-of-the-art bound.
    pub eq4: f64,
    /// Worst simulated delay (absent when simulation is off).
    pub sim_max: Option<f64>,
}

/// One shard of a soundness campaign: its rows plus streaming counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoundnessShard {
    /// First trial index of the shard.
    pub first_trial: usize,
    /// Per-trial results.
    pub rows: Vec<SoundnessRow>,
    /// Trials where the naive bound fell below the exact worst case
    /// (evidence of Figure 2's unsoundness).
    pub naive_unsound: usize,
    /// Trials violating Theorem 1 (`exact > algorithm1`) — expected 0.
    pub theorem1_violations: usize,
    /// Trials violating Eq. 4 dominance (`algorithm1 > eq4`) — expected 0.
    pub eq4_violations: usize,
    /// Trials where simulation exceeded Algorithm 1's bound — expected 0.
    pub sim_violations: usize,
    /// Sum of `algorithm1 / exact` tightness ratios (over `ratio_count`).
    pub ratio_sum: f64,
    /// Worst tightness ratio.
    pub ratio_max: f64,
    /// Trials contributing to `ratio_sum`.
    pub ratio_count: usize,
}

/// Per-run counters of the persistent result store ([`crate::store`]):
/// how many grid points/shards were restored from disk vs computed, the
/// shared `(curve, Q)` bounds table's hit split, and the load-time health
/// counts. **Deliberately not part of [`CampaignReport`]**: a warm re-run
/// must emit byte-identical CSV/JSON to a cold one, and these counters are
/// exactly what differs between the two — they render on stderr via
/// [`std::fmt::Display`] instead (`grep`-able; CI asserts a warm smoke run
/// reports `0 points computed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Grid points / shards served from the store.
    pub points_restored: u64,
    /// Grid points / shards computed (and persisted) this run.
    pub points_computed: u64,
    /// Shared `(curve, Q)` bound entries served from the store.
    pub bounds_restored: u64,
    /// Shared `(curve, Q)` bound entries computed this run.
    pub bounds_computed: u64,
    /// Corrupt/truncated/unknown-version lines skipped at load, plus
    /// undecodable payloads hit at lookup time.
    pub invalid_entries: u64,
    /// Well-formed lines from a different analysis fingerprint (never
    /// served; recomputed; reclaimed by `store gc`).
    pub stale_entries: u64,
    /// Failed or refused writes (I/O errors, non-round-trippable values).
    pub write_errors: u64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Hit rates via the one shared percentage helper (`fnpr_obs`), so
        // this line and the live progress meter can never disagree on
        // rounding. CI greps pin the `N points restored, M points
        // computed` prefix — keep it stable.
        write!(
            f,
            "{} points restored, {} points computed ({:.1}% restored); \
             {} bounds restored, {} bounds computed ({:.1}% restored); \
             {} invalid, {} stale entries, {} write errors",
            self.points_restored,
            self.points_computed,
            fnpr_obs::percent(
                self.points_restored,
                self.points_restored + self.points_computed
            ),
            self.bounds_restored,
            self.bounds_computed,
            fnpr_obs::percent(
                self.bounds_restored,
                self.bounds_restored + self.bounds_computed
            ),
            self.invalid_entries,
            self.stale_entries,
            self.write_errors,
        )
    }
}

/// Cross-workload campaign totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Generated task sets (acceptance) or trials (soundness).
    pub instances: usize,
    /// Points/trials violating the paper's dominance ordering — 0 when the
    /// reproduction holds.
    pub dominance_violations: usize,
    /// Simulation runs exceeding the analytical bound — 0 when sound.
    pub sim_violations: usize,
    /// Trials where the naive bound was optimistic (soundness only).
    pub naive_unsound: usize,
    /// Mean tightness/pessimism ratio (workload-specific; see point docs).
    pub pessimism_mean: f64,
    /// Worst tightness/pessimism ratio.
    pub pessimism_max: f64,
}

/// The full campaign result: everything the CSV/JSON exports contain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name from the spec.
    pub name: String,
    /// Which workload ran.
    pub workload: WorkloadKind,
    /// Master seed.
    pub seed: u64,
    /// Stable scenario hash (hex) — two reports with equal hashes ran
    /// identical scenarios.
    pub scenario: String,
    /// Method column labels (acceptance/multicore; empty for soundness).
    pub methods: Vec<String>,
    /// Acceptance grid points (empty for other workloads).
    pub acceptance: Vec<AcceptancePoint>,
    /// Soundness shards (empty for other workloads).
    pub soundness: Vec<SoundnessShard>,
    /// Multicore grid points (empty for other workloads).
    pub multicore: Vec<MulticorePoint>,
    /// CFG-workload grid points (empty for other workloads).
    pub cfg: Vec<CfgPoint>,
    /// Totals.
    pub summary: Summary,
}

/// Quotes one CSV field per RFC 4180: fields containing a comma, double
/// quote, CR or LF are wrapped in double quotes with embedded quotes
/// doubled; everything else passes through unchanged. String fields in
/// reports (policy/allocation labels, user-chosen shape tags) must go
/// through this — an unquoted comma in a tag would shift every later
/// column of its row.
#[must_use]
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Formats a float aggregate for CSV at the given precision. Non-finite
/// values render as the *empty field* — the CSV twin of the JSON export's
/// `null` (the shim serializes NaN/Inf as `null`), so the two renderings of
/// one report can never disagree about which aggregates were undefined.
#[must_use]
pub fn csv_f64(x: f64, precision: usize) -> String {
    if x.is_finite() {
        format!("{x:.precision$}")
    } else {
        String::new()
    }
}

impl CampaignReport {
    /// Renders the campaign-canonical CSV (header + one row per grid point
    /// or trial). String fields are RFC-4180 quoted; non-finite float
    /// aggregates render as empty fields (JSON renders them as `null`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        match self.workload {
            WorkloadKind::Acceptance => {
                out.push_str("policy,utilization,generated,attempts");
                for m in &self.methods {
                    out.push(',');
                    out.push_str(&csv_field(m));
                }
                out.push_str(",pessimism_gap_mean,pessimism_gap_max\n");
                for p in &self.acceptance {
                    out.push_str(&format!(
                        "{},{},{},{}",
                        csv_field(&p.policy),
                        csv_f64(p.utilization, 4),
                        p.generated,
                        p.attempts
                    ));
                    for &r in &p.ratios {
                        out.push(',');
                        out.push_str(&csv_f64(r, 4));
                    }
                    out.push_str(&format!(
                        ",{},{}\n",
                        csv_f64(p.pessimism_gap_mean, 4),
                        csv_f64(p.pessimism_gap_max, 4)
                    ));
                }
            }
            WorkloadKind::Soundness => {
                out.push_str("trial,q,naive,exact,algorithm1,eq4,sim_max\n");
                for shard in &self.soundness {
                    for row in &shard.rows {
                        let sim = row.sim_max.map_or(String::new(), |s| csv_f64(s, 3));
                        out.push_str(&format!(
                            "{},{},{},{},{},{},{sim}\n",
                            row.trial,
                            csv_f64(row.q, 3),
                            csv_f64(row.naive, 3),
                            csv_f64(row.exact, 3),
                            csv_f64(row.algorithm1, 3),
                            csv_f64(row.eq4, 3)
                        ));
                    }
                }
            }
            WorkloadKind::Multicore => {
                out.push_str("m,policy,allocation,utilization,generated,attempts");
                for m in &self.methods {
                    out.push(',');
                    out.push_str(&csv_field(m));
                }
                out.push_str(",sim_checks,sim_violations,migrations_mean\n");
                for p in &self.multicore {
                    out.push_str(&format!(
                        "{},{},{},{},{},{}",
                        p.m,
                        csv_field(&p.policy),
                        csv_field(&p.allocation),
                        csv_f64(p.utilization, 4),
                        p.generated,
                        p.attempts
                    ));
                    for &r in &p.ratios {
                        out.push(',');
                        out.push_str(&csv_f64(r, 4));
                    }
                    out.push_str(&format!(
                        ",{},{},{}\n",
                        p.sim_checks,
                        p.sim_violations,
                        csv_f64(p.migrations_mean, 4)
                    ));
                }
            }
            WorkloadKind::Cfg => {
                out.push_str(
                    "shape,depth,loop_iterations,footprint,sets,associativity,line_bytes,\
                     reload_cost,q_scale,programs,blocks_mean,wcet_mean,curve_max_mean,\
                     alg1_converged,eq4_converged,delay_mean,pessimism_mean,pessimism_max,\
                     dominance_violations\n",
                );
                for p in &self.cfg {
                    out.push_str(&format!(
                        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                        csv_field(&p.shape),
                        p.depth,
                        p.loop_iterations,
                        p.footprint,
                        p.sets,
                        p.associativity,
                        p.line_bytes,
                        csv_f64(p.reload_cost, 2),
                        csv_f64(p.q_scale, 4),
                        p.programs,
                        csv_f64(p.blocks_mean, 2),
                        csv_f64(p.wcet_mean, 2),
                        csv_f64(p.curve_max_mean, 2),
                        p.alg1_converged,
                        p.eq4_converged,
                        csv_f64(p.delay_mean, 3),
                        csv_f64(p.pessimism_mean, 4),
                        csv_f64(p.pessimism_max, 4),
                        p.dominance_violations
                    ));
                }
            }
        }
        out
    }

    /// Renders the JSON aggregate.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self);
        s.push('\n');
        s
    }
}

/// Builds the cross-workload summary from shard aggregates, folding floats
/// in shard order (deterministic at any thread count).
#[must_use]
pub fn summarize(
    acceptance: &[AcceptancePoint],
    soundness: &[SoundnessShard],
    multicore: &[MulticorePoint],
    cfg: &[CfgPoint],
    method_labels: &[String],
) -> Summary {
    let mut summary = Summary {
        instances: 0,
        dominance_violations: 0,
        sim_violations: 0,
        naive_unsound: 0,
        pessimism_mean: 0.0,
        pessimism_max: 0.0,
    };
    // Methods in ascending acceptance power: a tighter delay bound can only
    // admit more task sets, and `no_delay` admits the most of all. Each
    // adjacent pair of *present* chain methods must be non-decreasing in
    // accepted count; anything else is a dominance violation.
    const POWER_CHAIN: [&str; 4] = ["eq4", "algorithm1", "algorithm1_capped", "no_delay"];
    let chain: Vec<usize> = POWER_CHAIN
        .iter()
        .filter_map(|name| method_labels.iter().position(|l| l == name))
        .collect();
    let mut gap_sum = 0.0;
    let mut gap_weight = 0usize;
    for p in acceptance {
        summary.instances += p.generated;
        for pair in chain.windows(2) {
            if p.accepted[pair[1]] < p.accepted[pair[0]] {
                summary.dominance_violations += 1;
            }
        }
        if p.pessimism_gap_count > 0 {
            gap_sum += p.pessimism_gap_mean * p.pessimism_gap_count as f64;
            gap_weight += p.pessimism_gap_count;
        }
        summary.pessimism_max = summary.pessimism_max.max(p.pessimism_gap_max);
    }
    for p in multicore {
        summary.instances += p.generated;
        for pair in chain.windows(2) {
            if p.accepted[pair[1]] < p.accepted[pair[0]] {
                summary.dominance_violations += 1;
            }
        }
        summary.sim_violations += p.sim_violations;
    }
    for p in cfg {
        summary.instances += p.programs;
        summary.dominance_violations += p.dominance_violations;
        if p.pessimism_count > 0 {
            gap_sum += p.pessimism_mean * p.pessimism_count as f64;
            gap_weight += p.pessimism_count;
        }
        summary.pessimism_max = summary.pessimism_max.max(p.pessimism_max);
    }
    let mut ratio_sum = 0.0;
    let mut ratio_count = 0usize;
    for s in soundness {
        summary.instances += s.rows.len();
        summary.dominance_violations += s.theorem1_violations + s.eq4_violations;
        summary.sim_violations += s.sim_violations;
        summary.naive_unsound += s.naive_unsound;
        ratio_sum += s.ratio_sum;
        ratio_count += s.ratio_count;
        summary.pessimism_max = summary.pessimism_max.max(s.ratio_max);
    }
    if gap_weight > 0 {
        summary.pessimism_mean = gap_sum / gap_weight as f64;
    } else if ratio_count > 0 {
        summary.pessimism_mean = ratio_sum / ratio_count as f64;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_acceptance_report() -> CampaignReport {
        let points = vec![AcceptancePoint {
            policy: "fp".into(),
            utilization: 0.5,
            generated: 10,
            attempts: 12,
            accepted: vec![10, 6, 8, 8],
            ratios: vec![1.0, 0.6, 0.8, 0.8],
            pessimism_gap_mean: 1.5,
            pessimism_gap_max: 2.0,
            pessimism_gap_count: 9,
        }];
        let methods: Vec<String> = ["no_delay", "eq4", "algorithm1", "algorithm1_capped"]
            .map(String::from)
            .to_vec();
        let summary = summarize(&points, &[], &[], &[], &methods);
        CampaignReport {
            name: "t".into(),
            workload: WorkloadKind::Acceptance,
            seed: 1,
            scenario: "abcd".into(),
            methods,
            acceptance: points,
            soundness: vec![],
            multicore: vec![],
            cfg: vec![],
            summary,
        }
    }

    #[test]
    fn store_stats_display_pins_the_stderr_format() {
        // The CI smoke job greps for "8 points computed" (cold run) and
        // "8 points restored, 0 points computed" (warm run) — the exact
        // rendering of this line is load-bearing.
        let cold = StoreStats {
            points_restored: 0,
            points_computed: 8,
            bounds_restored: 0,
            bounds_computed: 16,
            invalid_entries: 0,
            stale_entries: 0,
            write_errors: 0,
        };
        let line = cold.to_string();
        assert!(
            line.contains("8 points computed"),
            "cold grep broke: {line}"
        );
        assert_eq!(
            line,
            "0 points restored, 8 points computed (0.0% restored); \
             0 bounds restored, 16 bounds computed (0.0% restored); \
             0 invalid, 0 stale entries, 0 write errors"
        );

        let warm = StoreStats {
            points_restored: 8,
            points_computed: 0,
            bounds_restored: 12,
            bounds_computed: 4,
            invalid_entries: 1,
            stale_entries: 2,
            write_errors: 3,
        };
        let line = warm.to_string();
        assert!(
            line.contains("8 points restored, 0 points computed"),
            "warm grep broke: {line}"
        );
        assert_eq!(
            line,
            "8 points restored, 0 points computed (100.0% restored); \
             12 bounds restored, 4 bounds computed (75.0% restored); \
             1 invalid, 2 stale entries, 3 write errors"
        );
    }

    #[test]
    fn acceptance_csv_shape() {
        let csv = sample_acceptance_report().to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "policy,utilization,generated,attempts,no_delay,eq4,algorithm1,algorithm1_capped,pessimism_gap_mean,pessimism_gap_max"
        );
        assert_eq!(
            lines.next().unwrap(),
            "fp,0.5000,10,12,1.0000,0.6000,0.8000,0.8000,1.5000,2.0000"
        );
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn json_round_trips() {
        let report = sample_acceptance_report();
        let parsed: CampaignReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    fn sample_cfg_point() -> CfgPoint {
        CfgPoint {
            shape: "d2_l4_f8".into(),
            depth: 2,
            loop_iterations: 4,
            footprint: 8,
            sets: 16,
            associativity: 1,
            line_bytes: 16,
            reload_cost: 10.0,
            q_scale: 0.5,
            programs: 6,
            blocks_mean: 7.5,
            wcet_mean: 52.0,
            curve_max_mean: 18.0,
            alg1_converged: 6,
            eq4_converged: 5,
            delay_mean: 30.0,
            pessimism_mean: 1.4,
            pessimism_max: 2.0,
            pessimism_count: 5,
            dominance_violations: 0,
        }
    }

    fn sample_cfg_report() -> CampaignReport {
        let points = vec![sample_cfg_point()];
        let summary = summarize(&[], &[], &[], &points, &[]);
        CampaignReport {
            name: "c".into(),
            workload: WorkloadKind::Cfg,
            seed: 1,
            scenario: "abcd".into(),
            methods: vec![],
            acceptance: vec![],
            soundness: vec![],
            multicore: vec![],
            cfg: points,
            summary,
        }
    }

    #[test]
    fn cfg_csv_shape_and_summary() {
        let report = sample_cfg_report();
        let csv = report.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "shape,depth,loop_iterations,footprint,sets,associativity,line_bytes,reload_cost,\
             q_scale,programs,blocks_mean,wcet_mean,curve_max_mean,alg1_converged,eq4_converged,\
             delay_mean,pessimism_mean,pessimism_max,dominance_violations"
        );
        assert_eq!(
            lines.next().unwrap(),
            "d2_l4_f8,2,4,8,16,1,16,10.00,0.5000,6,7.50,52.00,18.00,6,5,30.000,1.4000,2.0000,0"
        );
        assert_eq!(lines.next(), None);
        assert_eq!(report.summary.instances, 6);
        assert_eq!(report.summary.dominance_violations, 0);
        assert!((report.summary.pessimism_mean - 1.4).abs() < 1e-12);
        assert_eq!(report.summary.pessimism_max, 2.0);
        // JSON round-trips the cfg points too.
        let parsed: CampaignReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(&parsed, &report);
    }

    #[test]
    fn cfg_summary_counts_dominance_violations() {
        let mut point = sample_cfg_point();
        point.dominance_violations = 2;
        let summary = summarize(&[], &[], &[], &[point], &[]);
        assert_eq!(summary.dominance_violations, 2);
    }

    #[test]
    fn csv_quotes_string_fields_per_rfc4180() {
        // A user-chosen tag containing commas, quotes and a newline must
        // not shift columns or break rows.
        let mut report = sample_cfg_report();
        report.cfg[0].shape = "sweep \"A\", 2nd\ntry:d2_l4_f8".into();
        let csv = report.to_csv();
        let header_cols = csv.lines().next().unwrap().split(',').count();
        // The row survives as one logical record: quoted field intact.
        let body = csv.split_once('\n').unwrap().1;
        assert!(
            body.starts_with("\"sweep \"\"A\"\", 2nd\ntry:d2_l4_f8\","),
            "bad quoting: {body}"
        );
        // Stripping the quoted field (it ends at the last `",`) leaves
        // exactly the remaining columns.
        let rest = body.rsplit("\",").next().unwrap();
        assert_eq!(rest.trim_end().split(',').count(), header_cols - 1);

        // Plain fields stay unquoted.
        assert_eq!(csv_field("first_fit"), "first_fit");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");

        // The multicore arm quotes its labels through the same helper.
        let mc = MulticorePoint {
            m: 2,
            policy: "fp,custom".into(),
            allocation: "first_fit".into(),
            utilization: 0.4,
            generated: 1,
            attempts: 1,
            accepted: vec![1],
            ratios: vec![1.0],
            sim_checks: 0,
            sim_violations: 0,
            sim_jobs: 0,
            sim_migrations: 0,
            migrations_mean: 0.0,
        };
        let report = CampaignReport {
            name: "m".into(),
            workload: WorkloadKind::Multicore,
            seed: 1,
            scenario: "abcd".into(),
            methods: vec!["no_delay".into()],
            acceptance: vec![],
            soundness: vec![],
            multicore: vec![mc],
            cfg: vec![],
            summary: summarize(&[], &[], &[], &[], &[]),
        };
        let row = report.to_csv().lines().nth(1).unwrap().to_string();
        assert!(row.starts_with("2,\"fp,custom\",first_fit,"), "row: {row}");
    }

    #[test]
    fn non_finite_aggregates_encode_as_empty_csv_and_json_null() {
        let mut report = sample_acceptance_report();
        report.acceptance[0].pessimism_gap_mean = f64::NAN;
        report.acceptance[0].pessimism_gap_max = f64::INFINITY;
        report.summary.pessimism_mean = f64::NAN;
        // CSV: the NaN/Inf columns are empty fields, not "NaN"/"inf".
        let csv = report.to_csv();
        let row = csv.lines().nth(1).unwrap();
        assert!(row.ends_with(",,"), "non-finite fields not empty: {row}");
        assert!(!csv.contains("NaN") && !csv.contains("inf"), "{csv}");
        // JSON: the same aggregates are null (shim behaviour), so the two
        // exports agree about which values were undefined.
        let json = report.to_json();
        assert!(
            json.contains("\"pessimism_gap_mean\": null"),
            "JSON kept a non-finite literal: {json}"
        );
        assert!(json.contains("\"pessimism_gap_max\": null"));
        // Column count stays intact for downstream CSV parsers.
        let header_cols = csv.lines().next().unwrap().split(',').count();
        assert_eq!(row.split(',').count(), header_cols);
    }

    #[test]
    fn summary_flags_dominance_violation() {
        let mut report = sample_acceptance_report();
        // Algorithm 1 accepting FEWER sets than Eq. 4 is a violation.
        report.acceptance[0].accepted = vec![10, 8, 6, 6];
        let summary = summarize(&report.acceptance, &[], &[], &[], &report.methods);
        assert_eq!(summary.dominance_violations, 1);
        // An inflated method beating no-delay is also flagged.
        report.acceptance[0].accepted = vec![5, 6, 6, 6];
        let summary = summarize(&report.acceptance, &[], &[], &[], &report.methods);
        assert!(summary.dominance_violations >= 1);
        // The canonical ordering is clean.
        report.acceptance[0].accepted = vec![10, 6, 8, 8];
        let summary = summarize(&report.acceptance, &[], &[], &[], &report.methods);
        assert_eq!(summary.dominance_violations, 0);
    }

    #[test]
    fn soundness_summary_accumulates() {
        let shards = vec![
            SoundnessShard {
                first_trial: 0,
                rows: vec![SoundnessRow {
                    trial: 0,
                    q: 10.0,
                    naive: 1.0,
                    exact: 2.0,
                    algorithm1: 2.0,
                    eq4: 3.0,
                    sim_max: Some(1.5),
                }],
                naive_unsound: 1,
                theorem1_violations: 0,
                eq4_violations: 0,
                sim_violations: 0,
                ratio_sum: 1.0,
                ratio_max: 1.0,
                ratio_count: 1,
            },
            SoundnessShard {
                first_trial: 1,
                rows: vec![],
                naive_unsound: 2,
                theorem1_violations: 1,
                eq4_violations: 0,
                sim_violations: 1,
                ratio_sum: 2.2,
                ratio_max: 1.2,
                ratio_count: 2,
            },
        ];
        let summary = summarize(&[], &shards, &[], &[], &[]);
        assert_eq!(summary.instances, 1);
        assert_eq!(summary.naive_unsound, 3);
        assert_eq!(summary.dominance_violations, 1);
        assert_eq!(summary.sim_violations, 1);
        assert!((summary.pessimism_mean - (3.2 / 3.0)).abs() < 1e-12);
        assert!((summary.pessimism_max - 1.2).abs() < 1e-12);
    }
}
