//! Regression watch over the run ledger.
//!
//! The `fnpr-campaign history` subcommand is a thin shell around this
//! module: read a ledger (see [`fnpr_obs::ledger`]), group runs by
//! scenario hash, compare each scenario's **latest** run against the
//! **trailing median** of the runs before it, and render the result as a
//! terminal trend table or a self-contained HTML dashboard. Under
//! `--check` a detected regression exits nonzero — the CI gate for
//! campaign performance, the way `BENCH_FAIL_ON_REGRESSION` gates the
//! microbenches.
//!
//! A *regression* is either throughput (points/sec) falling more than the
//! allowed fraction below the trailing median, or tail latency (p99)
//! rising more than that fraction above it. Hit rates are displayed as
//! trend context but not gated: a cold store legitimately collapses the
//! restore rate without the binary getting slower.

use fnpr_obs::{LedgerView, RunRecord};

/// Tuning for [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryOptions {
    /// Allowed fractional change before a run counts as regressed
    /// (0.2 = 20% slower throughput or 20% higher p99).
    pub max_regression: f64,
    /// How many runs preceding the latest feed the trailing median
    /// (fewer are used when the ledger is shorter).
    pub window: usize,
}

impl Default for HistoryOptions {
    fn default() -> Self {
        Self {
            max_regression: 0.20,
            window: 8,
        }
    }
}

/// Why a scenario's latest run counts as regressed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regression {
    /// Throughput drop vs the trailing median, as a percentage (present
    /// when it exceeded the allowance).
    pub throughput_drop_pct: Option<f64>,
    /// p99 rise vs the trailing median, as a percentage (present when it
    /// exceeded the allowance).
    pub p99_rise_pct: Option<f64>,
}

/// One scenario's run history plus the latest-vs-baseline verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioTrend {
    /// The scenario hash (hex) the runs share.
    pub scenario: String,
    /// Campaign name of the latest run (names may drift; the hash is the
    /// identity).
    pub name: String,
    /// Workload kind of the latest run.
    pub workload: String,
    /// Every run of this scenario, oldest first (ledger order).
    pub runs: Vec<RunRecord>,
    /// Trailing-median throughput baseline (`None` with fewer than 2
    /// runs — nothing to compare against).
    pub baseline_points_per_sec: Option<f64>,
    /// Trailing-median p99 baseline.
    pub baseline_p99_us: Option<f64>,
    /// The verdict, when the latest run regressed.
    pub regression: Option<Regression>,
}

/// Groups ledger records by scenario hash (first-seen order) and compares
/// each scenario's latest run against the trailing median of up to
/// [`HistoryOptions::window`] runs before it.
#[must_use]
pub fn analyze(view: &LedgerView, options: &HistoryOptions) -> Vec<ScenarioTrend> {
    let mut order: Vec<&str> = Vec::new();
    for record in &view.records {
        if !order.contains(&record.scenario.as_str()) {
            order.push(&record.scenario);
        }
    }
    order
        .into_iter()
        .map(|scenario| {
            let runs: Vec<RunRecord> = view
                .records
                .iter()
                .filter(|r| r.scenario == scenario)
                .cloned()
                .collect();
            trend_for(scenario, runs, options)
        })
        .collect()
}

fn trend_for(scenario: &str, runs: Vec<RunRecord>, options: &HistoryOptions) -> ScenarioTrend {
    let latest = runs.last().expect("a trend group is never empty");
    let prior = &runs[..runs.len() - 1];
    let window = &prior[prior.len().saturating_sub(options.window.max(1))..];
    let baseline_pps = median(window.iter().map(|r| r.points_per_sec));
    let baseline_p99 = median(window.iter().map(|r| r.p99_us));
    let mut regression = Regression {
        throughput_drop_pct: None,
        p99_rise_pct: None,
    };
    if let Some(base) = baseline_pps {
        if base > 0.0 && latest.points_per_sec < base * (1.0 - options.max_regression) {
            regression.throughput_drop_pct = Some((1.0 - latest.points_per_sec / base) * 100.0);
        }
    }
    if let Some(base) = baseline_p99 {
        if base > 0.0 && latest.p99_us > base * (1.0 + options.max_regression) {
            regression.p99_rise_pct = Some((latest.p99_us / base - 1.0) * 100.0);
        }
    }
    let regressed = regression.throughput_drop_pct.is_some() || regression.p99_rise_pct.is_some();
    ScenarioTrend {
        scenario: scenario.to_string(),
        name: latest.name.clone(),
        workload: latest.workload.clone(),
        baseline_points_per_sec: baseline_pps,
        baseline_p99_us: baseline_p99,
        regression: regressed.then_some(regression),
        runs,
    }
}

/// Median of a float series; `None` when empty. Non-finite values are
/// dropped first (a ledger row can legally carry 0-division artifacts
/// from a pathological run; they must not poison the baseline).
fn median(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut values: Vec<f64> = values.filter(|v| v.is_finite()).collect();
    if values.is_empty() {
        return None;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    Some(if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    })
}

/// Whether any scenario's latest run regressed (the `--check` verdict).
#[must_use]
pub fn any_regression(trends: &[ScenarioTrend]) -> bool {
    trends.iter().any(|t| t.regression.is_some())
}

/// The hit-rate pair a run's memo counters imply.
fn memo_rate(run: &RunRecord) -> f64 {
    fnpr_obs::percent(run.memo_hits, run.memo_hits + run.memo_misses)
}

fn restore_rate(run: &RunRecord) -> f64 {
    fnpr_obs::percent(
        run.points_restored,
        run.points_restored + run.points_computed,
    )
}

/// Renders the terminal trend tables: one block per scenario, one row per
/// run, and a latest-vs-baseline verdict line.
#[must_use]
pub fn render_table(trends: &[ScenarioTrend], options: &HistoryOptions) -> String {
    let mut out = String::new();
    for trend in trends {
        out.push_str(&format!(
            "scenario {} — {:?} ({}), {} run{}\n",
            trend.scenario,
            trend.name,
            trend.workload,
            trend.runs.len(),
            if trend.runs.len() == 1 { "" } else { "s" },
        ));
        out.push_str(
            "  run   points  threads   points/s      p50_us      p99_us   memo%  restored%\n",
        );
        for (i, run) in trend.runs.iter().enumerate() {
            out.push_str(&format!(
                "  {:>3}  {:>7}  {:>7}  {:>9.1}  {:>10.1}  {:>10.1}  {:>5.1}%  {:>8.1}%\n",
                i + 1,
                run.grid_points,
                run.threads,
                run.points_per_sec,
                run.p50_us,
                run.p99_us,
                memo_rate(run),
                restore_rate(run),
            ));
        }
        match (trend.baseline_points_per_sec, trend.runs.last()) {
            (Some(base_pps), Some(latest)) => {
                let base_p99 = trend.baseline_p99_us.unwrap_or(0.0);
                let pps_delta = if base_pps > 0.0 {
                    (latest.points_per_sec / base_pps - 1.0) * 100.0
                } else {
                    0.0
                };
                let p99_delta = if base_p99 > 0.0 {
                    (latest.p99_us / base_p99 - 1.0) * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  latest vs trailing median: points/s {pps_delta:+.1}%, p99 {p99_delta:+.1}% \
                     (allowed \u{b1}{:.1}%)",
                    options.max_regression * 100.0,
                ));
                match &trend.regression {
                    Some(r) => {
                        out.push_str(" — REGRESSION");
                        if let Some(drop) = r.throughput_drop_pct {
                            out.push_str(&format!(" [throughput -{drop:.1}%]"));
                        }
                        if let Some(rise) = r.p99_rise_pct {
                            out.push_str(&format!(" [p99 +{rise:.1}%]"));
                        }
                        out.push('\n');
                    }
                    None => out.push_str(" — ok\n"),
                }
            }
            _ => out.push_str("  single run — no baseline yet\n"),
        }
        out.push('\n');
    }
    if trends.is_empty() {
        out.push_str("ledger holds no valid run records\n");
    }
    out
}

/// Renders the self-contained HTML dashboard: per-scenario run tables with
/// inline SVG sparklines for throughput and p99 (no external assets, no
/// scripts — the file works from `file://` and CI artifact viewers).
#[must_use]
pub fn render_html(trends: &[ScenarioTrend], options: &HistoryOptions) -> String {
    let mut out = String::new();
    out.push_str(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>fnpr-campaign run history</title>\n<style>\n\
         body{font:14px/1.45 system-ui,sans-serif;margin:2rem;color:#222}\n\
         table{border-collapse:collapse;margin:0.5rem 0 1rem}\n\
         th,td{padding:0.2rem 0.7rem;text-align:right;border-bottom:1px solid #ddd}\n\
         th{background:#f5f5f5}\n\
         .ok{color:#1a7f37}.bad{color:#b42318;font-weight:600}\n\
         .spark{vertical-align:middle;margin-right:1rem}\n\
         code{background:#f5f5f5;padding:0 0.25rem}\n\
         </style></head><body>\n<h1>fnpr-campaign run history</h1>\n",
    );
    out.push_str(&format!(
        "<p>{} scenario{}, regression allowance \u{b1}{:.1}%.</p>\n",
        trends.len(),
        if trends.len() == 1 { "" } else { "s" },
        options.max_regression * 100.0,
    ));
    for trend in trends {
        out.push_str(&format!(
            "<h2><code>{}</code> — {} ({})</h2>\n",
            html_escape(&trend.scenario),
            html_escape(&trend.name),
            html_escape(&trend.workload),
        ));
        let verdict = match &trend.regression {
            Some(r) => {
                let mut parts = Vec::new();
                if let Some(drop) = r.throughput_drop_pct {
                    parts.push(format!("throughput &minus;{drop:.1}%"));
                }
                if let Some(rise) = r.p99_rise_pct {
                    parts.push(format!("p99 +{rise:.1}%"));
                }
                format!(
                    "<p class=\"bad\">REGRESSION vs trailing median: {}</p>\n",
                    parts.join(", ")
                )
            }
            None if trend.runs.len() > 1 => {
                "<p class=\"ok\">latest run within allowance</p>\n".to_string()
            }
            None => "<p>single run — no baseline yet</p>\n".to_string(),
        };
        out.push_str(&verdict);
        let pps: Vec<f64> = trend.runs.iter().map(|r| r.points_per_sec).collect();
        let p99: Vec<f64> = trend.runs.iter().map(|r| r.p99_us).collect();
        out.push_str("<p>");
        out.push_str(&sparkline("points/s", &pps));
        out.push_str(&sparkline("p99 µs", &p99));
        out.push_str("</p>\n");
        out.push_str(
            "<table><tr><th>run</th><th>points</th><th>threads</th><th>points/s</th>\
             <th>p50 µs</th><th>p90 µs</th><th>p99 µs</th><th>memo hit</th>\
             <th>restored</th><th>wall s</th></tr>\n",
        );
        for (i, run) in trend.runs.iter().enumerate() {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.1}</td><td>{:.1}</td>\
                 <td>{:.1}</td><td>{:.1}</td><td>{:.1}%</td><td>{:.1}%</td><td>{:.3}</td></tr>\n",
                i + 1,
                run.grid_points,
                run.threads,
                run.points_per_sec,
                run.p50_us,
                run.p90_us,
                run.p99_us,
                memo_rate(run),
                restore_rate(run),
                run.wall_seconds,
            ));
        }
        out.push_str("</table>\n");
    }
    if trends.is_empty() {
        out.push_str("<p>ledger holds no valid run records</p>\n");
    }
    out.push_str("</body></html>\n");
    out
}

/// A labelled inline-SVG sparkline over `values` (min-max scaled into a
/// fixed 160x40 box; a single point renders as a dot).
fn sparkline(label: &str, values: &[f64]) -> String {
    const W: f64 = 160.0;
    const H: f64 = 40.0;
    const PAD: f64 = 3.0;
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let x = |i: usize| {
        if finite.len() == 1 {
            W / 2.0
        } else {
            PAD + i as f64 / (finite.len() - 1) as f64 * (W - 2.0 * PAD)
        }
    };
    let y = |v: f64| H - PAD - (v - lo) / span * (H - 2.0 * PAD);
    let points: Vec<String> = finite
        .iter()
        .enumerate()
        .map(|(i, &v)| format!("{:.1},{:.1}", x(i), y(v)))
        .collect();
    let last = finite.len() - 1;
    format!(
        "<svg class=\"spark\" width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\" \
         role=\"img\" aria-label=\"{label}\">\
         <title>{label}: {lo:.1}..{hi:.1}</title>\
         <polyline fill=\"none\" stroke=\"#0969da\" stroke-width=\"1.5\" points=\"{}\"/>\
         <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\" fill=\"#0969da\"/>\
         </svg><small>{label}</small>",
        points.join(" "),
        x(last),
        y(finite[last]),
    )
}

/// Minimal HTML text escaping for the ledger-sourced strings.
fn html_escape(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '&' => "&amp;".to_string(),
            '<' => "&lt;".to_string(),
            '>' => "&gt;".to_string(),
            '"' => "&quot;".to_string(),
            c => c.to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(scenario: &str, points_per_sec: f64, p99_us: f64) -> RunRecord {
        RunRecord {
            schema: fnpr_obs::LEDGER_SCHEMA_VERSION,
            unix_seconds: 1_700_000_000,
            name: "trend-test".to_string(),
            scenario: scenario.to_string(),
            workload: "acceptance".to_string(),
            grid_points: 8,
            threads: 2,
            wall_seconds: 8.0 / points_per_sec.max(1e-9),
            points_per_sec,
            memo_hits: 4,
            memo_misses: 4,
            points_restored: 8,
            points_computed: 0,
            bounds_restored: 0,
            bounds_computed: 0,
            recovered_shards: 0,
            p50_us: p99_us / 4.0,
            p90_us: p99_us / 2.0,
            p99_us,
            max_us: (p99_us * 1.5) as u64,
        }
    }

    fn view(records: Vec<RunRecord>) -> LedgerView {
        LedgerView {
            records,
            invalid: 0,
            stale: 0,
        }
    }

    #[test]
    fn steady_history_passes() {
        let v = view(vec![
            run("aaaa", 100.0, 900.0),
            run("aaaa", 104.0, 880.0),
            run("aaaa", 98.0, 910.0),
            run("aaaa", 101.0, 905.0),
        ]);
        let trends = analyze(&v, &HistoryOptions::default());
        assert_eq!(trends.len(), 1);
        assert!(trends[0].regression.is_none());
        assert!(!any_regression(&trends));
    }

    #[test]
    fn degraded_final_row_is_a_throughput_regression() {
        // The synthetic-regression fixture of the acceptance criteria:
        // a healthy history whose final run collapses to half throughput.
        let v = view(vec![
            run("aaaa", 100.0, 900.0),
            run("aaaa", 102.0, 890.0),
            run("aaaa", 99.0, 905.0),
            run("aaaa", 50.0, 902.0),
        ]);
        let trends = analyze(&v, &HistoryOptions::default());
        let regression = trends[0].regression.expect("must detect the collapse");
        let drop = regression.throughput_drop_pct.expect("throughput side");
        assert!((drop - 50.0).abs() < 1.0, "drop = {drop}");
        assert!(regression.p99_rise_pct.is_none());
        assert!(any_regression(&trends));
    }

    #[test]
    fn tail_blowup_is_a_p99_regression() {
        let v = view(vec![
            run("aaaa", 100.0, 900.0),
            run("aaaa", 101.0, 910.0),
            run("aaaa", 100.5, 2000.0),
        ]);
        let trends = analyze(&v, &HistoryOptions::default());
        let regression = trends[0].regression.expect("must detect the tail");
        assert!(regression.p99_rise_pct.is_some());
        assert!(regression.throughput_drop_pct.is_none());
    }

    #[test]
    fn allowance_is_respected() {
        // 15% drop passes a 20% gate and fails a 10% one.
        let v = view(vec![run("aaaa", 100.0, 900.0), run("aaaa", 85.0, 900.0)]);
        let lenient = analyze(
            &v,
            &HistoryOptions {
                max_regression: 0.20,
                ..HistoryOptions::default()
            },
        );
        assert!(lenient[0].regression.is_none());
        let strict = analyze(
            &v,
            &HistoryOptions {
                max_regression: 0.10,
                ..HistoryOptions::default()
            },
        );
        assert!(strict[0].regression.is_some());
    }

    #[test]
    fn scenarios_group_independently_in_first_seen_order() {
        let v = view(vec![
            run("bbbb", 10.0, 900.0),
            run("aaaa", 100.0, 900.0),
            run("bbbb", 11.0, 890.0),
            run("aaaa", 20.0, 900.0), // aaaa collapses, bbbb is fine
        ]);
        let trends = analyze(&v, &HistoryOptions::default());
        assert_eq!(trends.len(), 2);
        assert_eq!(trends[0].scenario, "bbbb");
        assert!(trends[0].regression.is_none());
        assert_eq!(trends[1].scenario, "aaaa");
        assert!(trends[1].regression.is_some());
    }

    #[test]
    fn single_run_has_no_baseline_and_never_regresses() {
        let trends = analyze(
            &view(vec![run("aaaa", 1.0, 1.0)]),
            &HistoryOptions::default(),
        );
        assert_eq!(trends[0].baseline_points_per_sec, None);
        assert!(trends[0].regression.is_none());
        assert!(render_table(&trends, &HistoryOptions::default()).contains("no baseline"));
    }

    #[test]
    fn window_bounds_the_baseline() {
        // Ancient fast runs age out of a window of 2: the baseline is the
        // median of the two slow predecessors, so the latest passes.
        let v = view(vec![
            run("aaaa", 1000.0, 900.0),
            run("aaaa", 1000.0, 900.0),
            run("aaaa", 50.0, 900.0),
            run("aaaa", 52.0, 900.0),
            run("aaaa", 51.0, 900.0),
        ]);
        let options = HistoryOptions {
            window: 2,
            ..HistoryOptions::default()
        };
        assert!(analyze(&v, &options)[0].regression.is_none());
        // The full window still sees the fast era and flags it.
        assert!(analyze(&v, &HistoryOptions::default())[0]
            .regression
            .is_some());
    }

    #[test]
    fn median_handles_even_odd_and_nonfinite() {
        assert_eq!(median([1.0, 3.0, 2.0].into_iter()), Some(2.0));
        assert_eq!(median([1.0, 2.0, 3.0, 4.0].into_iter()), Some(2.5));
        assert_eq!(median([f64::NAN, 5.0].into_iter()), Some(5.0));
        assert_eq!(median(std::iter::empty()), None);
        assert_eq!(median([f64::NAN].into_iter()), None);
    }

    #[test]
    fn table_flags_regressions_and_lists_every_run() {
        let v = view(vec![
            run("aaaa", 100.0, 900.0),
            run("aaaa", 100.0, 900.0),
            run("aaaa", 10.0, 900.0),
        ]);
        let trends = analyze(&v, &HistoryOptions::default());
        let table = render_table(&trends, &HistoryOptions::default());
        assert!(table.contains("scenario aaaa"), "{table}");
        assert!(table.contains("REGRESSION"), "{table}");
        assert!(table.contains("3 runs"), "{table}");
        // All three run rows present.
        assert_eq!(table.lines().filter(|l| l.contains("  8  ")).count(), 3);
    }

    #[test]
    fn empty_ledger_renders_gracefully() {
        let trends = analyze(&view(Vec::new()), &HistoryOptions::default());
        assert!(trends.is_empty());
        assert!(render_table(&trends, &HistoryOptions::default()).contains("no valid run"));
        assert!(render_html(&trends, &HistoryOptions::default()).contains("no valid run"));
    }

    #[test]
    fn html_is_self_contained_with_sparklines() {
        let v = view(vec![
            run("aaaa", 100.0, 900.0),
            run("aaaa", 90.0, 950.0),
            run("aaaa", 95.0, 940.0),
        ]);
        let trends = analyze(&v, &HistoryOptions::default());
        let html = render_html(&trends, &HistoryOptions::default());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"), "no sparkline");
        assert!(html.contains("<polyline"), "no polyline");
        // Self-contained: no external fetches, no scripts.
        assert!(!html.contains("http://"), "external reference");
        assert!(!html.contains("https://"), "external reference");
        assert!(!html.contains("<script"), "script tag");
    }

    #[test]
    fn html_escapes_ledger_sourced_strings() {
        let mut r = run("aaaa", 100.0, 900.0);
        r.name = "<img src=x onerror=alert(1)>".to_string();
        let trends = analyze(&view(vec![r]), &HistoryOptions::default());
        let html = render_html(&trends, &HistoryOptions::default());
        assert!(!html.contains("<img"), "unescaped name:\n{html}");
        assert!(html.contains("&lt;img"));
    }

    #[test]
    fn sparkline_survives_flat_and_single_series() {
        assert!(sparkline("x", &[5.0, 5.0, 5.0]).contains("<svg"));
        assert!(sparkline("x", &[5.0]).contains("<circle"));
        assert_eq!(sparkline("x", &[]), "");
        assert!(sparkline("x", &[f64::NAN]).is_empty());
    }
}
